// Command neonsim regenerates the tables and figures of "Disengaged
// Scheduling for Fair, Protected Access to Fast Computational
// Accelerators" (ASPLOS 2014) on the simulated GPU stack.
//
// Usage:
//
//	neonsim -list
//	neonsim -exp fig6            # one experiment, paper-scale windows
//	neonsim -exp all -quick      # everything, reduced windows
//	neonsim -exp fig9 -seed 7    # different deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick = flag.Bool("quick", false, "use reduced measurement windows")
		list  = flag.Bool("list", false, "list experiments and exit")
		seed  = flag.Int64("seed", 1, "deterministic simulation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Desc)
		}
		return
	}

	opts := exp.Full()
	if *quick {
		opts = exp.Quick()
	}
	opts.Seed = *seed

	run := func(e exp.Experiment) {
		start := time.Now()
		table := e.Run(opts)
		fmt.Println(table.String())
		fmt.Printf("  [%s regenerated in %.1fs wall time]\n\n", e.ID, time.Since(start).Seconds())
	}

	if *which == "all" {
		for _, e := range exp.Registry() {
			run(e)
		}
		return
	}
	e, ok := exp.ByID(*which)
	if !ok {
		fmt.Fprintf(os.Stderr, "neonsim: unknown experiment %q (try -list)\n", *which)
		os.Exit(2)
	}
	run(e)
}
