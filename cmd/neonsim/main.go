// Command neonsim regenerates the tables and figures of "Disengaged
// Scheduling for Fair, Protected Access to Fast Computational
// Accelerators" (ASPLOS 2014) on the simulated GPU stack.
//
// Usage:
//
//	neonsim -list
//	neonsim -exp fig6                  # one experiment, paper-scale windows
//	neonsim -exp all -quick            # everything, reduced windows
//	neonsim -exp fig9 -seed 7          # different deterministic seed
//	neonsim -exp all -parallel 4       # bound the scenario worker pool
//	neonsim -exp all -json BENCH.json  # machine-readable timings
//	neonsim -exp serve -load 0.8,1.0,1.2  # custom load-factor sweep
//	neonsim -exp hetero -classes k20,consumer  # custom fleet class mix
//	neonsim -exp tiers -weights 8,2,1     # custom premium:standard:best-effort contract
//	neonsim -exp tiers -tiers premium,premium,standard  # custom admission tiers per role
//	neonsim -exp tiers -policy maxmin     # drive the fleet through an allocation policy
//	neonsim -exp scale -deep              # append the 10^6-tenant ledger and 10^5-tenant storm rows
//
// Scenarios within each experiment run on a worker pool (-parallel,
// default NumCPU); the emitted tables are byte-identical at any width.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/exp"
	"repro/internal/policy"
	"repro/internal/workload"
)

// benchRecord is one experiment's machine-readable timing, for tracking
// the performance trajectory across PRs (BENCH_*.json).
type benchRecord struct {
	Experiment string `json:"experiment"`
	// WallSeconds is elapsed wall-clock for the whole experiment.
	WallSeconds float64 `json:"wall_seconds"`
	// Scenarios is the number of jobs the harness executed.
	Scenarios int `json:"scenarios"`
	// ScenarioSeconds is the summed per-job wall time; divided by
	// WallSeconds it approximates the achieved parallel speedup.
	ScenarioSeconds float64 `json:"scenario_seconds"`
	// Throughput is scenarios per wall-clock second.
	Throughput float64 `json:"scenarios_per_second"`
	Rows       int     `json:"rows"`
	Parallel   int     `json:"parallel"`
	Quick      bool    `json:"quick"`
	Seed       int64   `json:"seed"`
}

// parseClasses turns the -classes flag into a device-class mix; the
// empty string keeps each experiment's default. Every name must be a
// known cost.Class.
func parseClasses(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if _, err := cost.ClassByName(name); err != nil {
			return nil, fmt.Errorf("bad -classes value %q: %v", name, err)
		}
		out = append(out, name)
	}
	return out, nil
}

// parseWeights turns the -weights flag into the tiers experiment's
// premium/standard/best-effort contract; the empty string keeps the
// default ratio sweep. Exactly three positive factors are required.
func parseWeights(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -weights value %q (want positive factors like 4,1,1)", part)
		}
		out = append(out, v)
	}
	if len(out) != 3 {
		return nil, fmt.Errorf("-weights needs exactly 3 values (premium,standard,best-effort), got %d", len(out))
	}
	return out, nil
}

// parseTiers turns the -tiers flag into the tiers experiment's per-role
// admission tiers; the empty string keeps each role's namesake tier.
func parseTiers(s string) ([]workload.Tier, error) {
	if s == "" {
		return nil, nil
	}
	var out []workload.Tier
	for _, part := range strings.Split(s, ",") {
		tier, err := workload.ParseTier(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -tiers value %q: %v", part, err)
		}
		out = append(out, tier)
	}
	if len(out) != 3 {
		return nil, fmt.Errorf("-tiers needs exactly 3 values (one per premium,standard,best-effort role), got %d", len(out))
	}
	return out, nil
}

// parseTenants turns the -tenants flag into the scale experiment's
// tenant-count sweep; the empty string keeps the default 10^2..10^5.
func parseTenants(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -tenants value %q (want positive counts like 100,10000)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseLoads turns the -load flag into a load-factor sweep; the empty
// string keeps the experiment's default.
func parseLoads(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -load value %q (want positive load factors like 0.8,1.0,1.2)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		which    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick    = flag.Bool("quick", false, "use reduced measurement windows")
		list     = flag.Bool("list", false, "list experiments and exit")
		seed     = flag.Int64("seed", 1, "deterministic simulation seed")
		parallel = flag.Int("parallel", runtime.NumCPU(), "scenario worker pool width (1 = serial)")
		jsonOut  = flag.String("json", "", "write per-experiment wall-clock and throughput JSON to this file")
		loads    = flag.String("load", "", "comma-separated load factors for the serve and tiers experiments (defaults 0.6,0.9,1.1,1.4 / 1.2,1.8)")
		classes  = flag.String("classes", "", "comma-separated device classes (k20,consumer,nextgen) for the hetero and serve fleets")
		weights  = flag.String("weights", "", "premium,standard,best-effort fair-share weights for the tiers experiment (e.g. 4,1,1)")
		tiers    = flag.String("tiers", "", "admission tiers for the tiers experiment's three roles (e.g. premium,standard,best-effort)")
		tenants  = flag.String("tenants", "", "comma-separated tenant counts for the scale experiment (default 100,1000,10000,100000)")
		polName  = flag.String("policy", "", "allocation policy driving the tiers experiment's fleets (static, maxmin, hier[:org=w,...], cost); empty runs no allocator")
		deep     = flag.Bool("deep", false, "append the scale experiment's deep rows (10^6-tenant ledger, 10^5-tenant full-stack storm; minutes, not seconds)")
	)
	flag.Parse()

	if *quick && *deep {
		fmt.Fprintf(os.Stderr, "neonsim: -deep and -quick are mutually exclusive; the deep scale rows exist precisely to run past the quick windows\n")
		os.Exit(2)
	}
	if _, err := policy.Parse(*polName); err != nil {
		fmt.Fprintf(os.Stderr, "neonsim: bad -policy value: %v\n", err)
		os.Exit(2)
	}

	loadSweep, err := parseLoads(*loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neonsim: %v\n", err)
		os.Exit(2)
	}
	classMix, err := parseClasses(*classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neonsim: %v\n", err)
		os.Exit(2)
	}
	weightVec, err := parseWeights(*weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neonsim: %v\n", err)
		os.Exit(2)
	}
	tierVec, err := parseTiers(*tiers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neonsim: %v\n", err)
		os.Exit(2)
	}
	tenantSweep, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neonsim: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Desc)
		}
		return
	}

	opts := exp.Full()
	if *quick {
		opts = exp.Quick()
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.Loads = loadSweep
	opts.Classes = classMix
	opts.Weights = weightVec
	opts.Tiers = tierVec
	opts.Tenants = tenantSweep
	opts.Policy = *polName
	opts.DeepScale = *deep

	var records []benchRecord
	run := func(e exp.Experiment) {
		exp.ResetStats()
		start := time.Now()
		table := e.Run(opts)
		wall := time.Since(start)
		jobs, jobWall := exp.Stats()
		fmt.Println(table.String())
		fmt.Printf("  [%s: %d scenarios on %d workers in %.1fs wall time]\n\n",
			e.ID, jobs, opts.Workers(), wall.Seconds())
		records = append(records, benchRecord{
			Experiment:      e.ID,
			WallSeconds:     wall.Seconds(),
			Scenarios:       jobs,
			ScenarioSeconds: jobWall.Seconds(),
			Throughput:      float64(jobs) / wall.Seconds(),
			Rows:            len(table.Rows),
			Parallel:        opts.Workers(),
			Quick:           *quick,
			Seed:            *seed,
		})
	}

	if *which == "all" {
		for _, e := range exp.Registry() {
			run(e)
		}
	} else {
		e, ok := exp.ByID(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "neonsim: unknown experiment %q (try -list)\n", *which)
			os.Exit(2)
		}
		run(e)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "neonsim: encoding bench records: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "neonsim: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("  [bench records written to %s]\n", *jsonOut)
	}
}
