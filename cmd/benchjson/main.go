// Command benchjson records and checks the repository's benchmark
// trajectory (PERFORMANCE.md).
//
// `benchjson run` executes `go test -bench` and renders the output as
// one trajectory point: a JSON object carrying both the raw benchmark
// lines (benchstat-consumable verbatim) and parsed per-benchmark
// statistics (median/min/max ns/op, B/op, allocs/op, custom metrics).
// The committed BENCH_*.json files are produced this way; `-baseline`
// embeds a previously recorded point as the "before" section so a perf
// PR carries its own before/after evidence.
//
// `benchjson check` compares two results — each either a BENCH_*.json
// file or raw `go test -bench` text — and fails (exit 1) when any
// gated benchmark's median regresses by more than the threshold. CI
// uses it twice: an allocs/op check against the committed trajectory
// point (allocation counts are machine-independent), and an ns/op
// check of HEAD against the baseline commit re-run on the same runner
// (wall-clock is only comparable within one machine; see
// PERFORMANCE.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one trajectory point: the schema of BENCH_*.json.
type Result struct {
	Schema      string  `json:"schema"` // "neonsim-bench/v1"
	GeneratedAt string  `json:"generated_at,omitempty"`
	GoVersion   string  `json:"go_version,omitempty"`
	Bench       string  `json:"bench"`     // -bench regex the point was recorded with
	Benchtime   string  `json:"benchtime"` // -benchtime per run
	Count       int     `json:"count"`     // -count runs per benchmark
	Benchmarks  []Bench `json:"benchmarks"`
	// Raw holds the benchmark output lines verbatim (including the
	// goos/goarch/pkg/cpu header), so `jq -r '.raw[]' point.json`
	// reconstructs a file benchstat accepts.
	Raw []string `json:"raw"`
	// Before optionally embeds the pre-change point of a perf PR.
	Before *Result `json:"before,omitempty"`
}

// Bench is the parsed statistics of one benchmark across its -count runs.
type Bench struct {
	Name        string             `json:"name"` // GOMAXPROCS suffix stripped
	Runs        int                `json:"runs"`
	NsPerOp     Stat               `json:"ns_per_op"`
	BytesPerOp  *Stat              `json:"bytes_per_op,omitempty"`
	AllocsPerOp *Stat              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // medians of custom units
}

// Stat summarizes one unit's samples across runs.
type Stat struct {
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchjson run   [-bench regex] [-benchtime d] [-count n] [-pkg path] [-baseline point.json]
  benchjson check -old <point.json|bench.txt> -new <point.json|bench.txt|-> [-gate regex] [-threshold 0.15] [-unit ns/op]`)
	os.Exit(2)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", ".", "benchmarks to run (go test -bench regex)")
	benchtime := fs.String("benchtime", "0.3s", "time per benchmark run")
	count := fs.Int("count", 3, "runs per benchmark")
	pkg := fs.String("pkg", ".", "package holding the bench suite")
	baseline := fs.String("baseline", "", "embed this prior point as the before section")
	fs.Parse(args)

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fatalf("go test -bench: %v", err)
	}
	res := parse(string(out))
	res.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	res.GoVersion = runtime.Version()
	res.Bench, res.Benchtime, res.Count = *bench, *benchtime, *count
	if *baseline != "" {
		before, err := loadPoint(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		res.Before = before
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatalf("encode: %v", err)
	}
}

func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline: BENCH_*.json or raw bench text")
	newPath := fs.String("new", "", "candidate: BENCH_*.json, raw bench text, or - for stdin")
	gate := fs.String("gate", "BenchmarkSimEngine$|BenchmarkRequestPath$", "benchmarks the threshold applies to")
	threshold := fs.Float64("threshold", 0.15, "max allowed fractional regression of the median")
	unit := fs.String("unit", "ns/op", "unit to compare (ns/op or allocs/op)")
	fs.Parse(args)
	if *oldPath == "" || *newPath == "" {
		usage()
	}
	oldRes, err := loadPoint(*oldPath)
	if err != nil {
		fatalf("old: %v", err)
	}
	newRes, err := loadPoint(*newPath)
	if err != nil {
		fatalf("new: %v", err)
	}
	re, err := regexp.Compile(*gate)
	if err != nil {
		fatalf("gate: %v", err)
	}
	failed := false
	checked := 0
	for _, nb := range newRes.Benchmarks {
		if !re.MatchString(nb.Name) {
			continue
		}
		ob := findBench(oldRes, nb.Name)
		if ob == nil {
			fmt.Printf("SKIP %s: not in baseline\n", nb.Name)
			continue
		}
		oldV, okOld := statFor(ob, *unit)
		newV, okNew := statFor(&nb, *unit)
		if !okOld || !okNew {
			fmt.Printf("SKIP %s: no %s samples\n", nb.Name, *unit)
			continue
		}
		checked++
		// A zero baseline (e.g. 0 allocs/op) gates absolutely: any
		// nonzero candidate is a regression.
		ok := newV <= oldV*(1+*threshold)
		if oldV == 0 {
			ok = newV == 0
		}
		delta := "n/a"
		if oldV != 0 {
			delta = fmt.Sprintf("%+.1f%%", (newV/oldV-1)*100)
		}
		verdict := "ok  "
		if !ok {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %s %.6g -> %.6g (%s, threshold %.0f%%)\n",
			verdict, nb.Name, *unit, oldV, newV, delta, *threshold*100)
	}
	if checked == 0 {
		fatalf("gate %q matched no benchmark present in both results", *gate)
	}
	if failed {
		os.Exit(1)
	}
}

func findBench(r *Result, name string) *Bench {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

func statFor(b *Bench, unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return b.NsPerOp.Median, b.Runs > 0
	case "allocs/op":
		if b.AllocsPerOp == nil {
			return 0, false
		}
		return b.AllocsPerOp.Median, true
	case "B/op":
		if b.BytesPerOp == nil {
			return 0, false
		}
		return b.BytesPerOp.Median, true
	default:
		v, ok := b.Metrics[unit]
		return v, ok
	}
}

// loadPoint reads a result from a BENCH_*.json trajectory point or,
// when the file does not parse as one, from raw `go test -bench` text.
// "-" reads raw text from stdin.
func loadPoint(path string) (*Result, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = readAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if r.Schema != "neonsim-bench/v1" {
			return nil, fmt.Errorf("%s: unknown schema %q", path, r.Schema)
		}
		return &r, nil
	}
	r := parse(string(data))
	return r, nil
}

func readAll(f *os.File) ([]byte, error) {
	var buf []byte
	tmp := make([]byte, 64<<10)
	for {
		n, err := f.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			if err.Error() == "EOF" {
				return buf, nil
			}
			return buf, err
		}
	}
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
var maxprocs = regexp.MustCompile(`-\d+$`)

// parse turns `go test -bench` output into a Result. Every line is kept
// verbatim in Raw; Benchmark lines additionally feed the per-name
// sample sets from which medians are computed.
func parse(out string) *Result {
	res := &Result{Schema: "neonsim-bench/v1"}
	type samples struct {
		order   int
		byUnit  map[string][]float64
		metrics map[string][]float64
	}
	byName := map[string]*samples{}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t") {
			continue
		}
		res.Raw = append(res.Raw, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := maxprocs.ReplaceAllString(m[1], "")
		s := byName[name]
		if s == nil {
			s = &samples{order: len(byName), byUnit: map[string][]float64{}, metrics: map[string][]float64{}}
			byName[name] = s
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op", "B/op", "allocs/op":
				s.byUnit[unit] = append(s.byUnit[unit], v)
			default:
				s.metrics[unit] = append(s.metrics[unit], v)
			}
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return byName[names[i]].order < byName[names[j]].order })
	for _, n := range names {
		s := byName[n]
		b := Bench{Name: n, Runs: len(s.byUnit["ns/op"]), NsPerOp: summarize(s.byUnit["ns/op"])}
		if v, ok := s.byUnit["B/op"]; ok {
			st := summarize(v)
			b.BytesPerOp = &st
		}
		if v, ok := s.byUnit["allocs/op"]; ok {
			st := summarize(v)
			b.AllocsPerOp = &st
		}
		for unit, v := range s.metrics {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = summarize(v).Median
		}
		res.Benchmarks = append(res.Benchmarks, b)
	}
	return res
}

func summarize(v []float64) Stat {
	if len(v) == 0 {
		return Stat{}
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	st := Stat{Min: s[0], Max: s[len(s)-1]}
	mid := len(s) / 2
	if len(s)%2 == 1 {
		st.Median = s[mid]
	} else {
		st.Median = (s[mid-1] + s[mid]) / 2
	}
	return st
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
