// Adversarial: what happens when applications misbehave. Demonstrates
// the three attacks from the paper and the OS-level defenses:
//
//  1. an infinite-loop kernel (device occupation) — killed via the
//     request run limit;
//
//  2. greedy batching (hogging a work-conserving device with huge
//     requests) — neutralized by fair scheduling;
//
//  3. channel exhaustion (Section 6.3) — blocked by the allocation
//     policy.
//
//     go run ./examples/adversarial
package main

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/neon"
	"repro/internal/workload"
)

func main() {
	infiniteKernel()
	greedyBatcher()
	channelHog()
}

func infiniteKernel() {
	fmt.Println("-- Attack 1: infinite-loop kernel --")
	for _, sched := range []exp.Sched{exp.Direct, exp.DFQ} {
		opts := exp.Quick()
		opts.RunLimit = 50 * time.Millisecond
		dct, _ := workload.ByName("DCT")
		rig := exp.NewRig(sched, opts, dct)
		attacker := workload.LaunchInfiniteKernel(rig.Kernel, 3)
		rig.Engine.RunFor(500 * time.Millisecond)
		victim := rig.Apps[0]
		fmt.Printf("  %-26s attacker alive=%-5v victim rounds=%d\n",
			sched.Label(), attacker.Task.Alive, victim.Rounds)
	}
	fmt.Println("  direct access: the device is gone forever; DFQ kills the task at the run limit.")
	fmt.Println()
}

func greedyBatcher() {
	fmt.Println("-- Attack 2: greedy batching (10ms requests vs 66us requests) --")
	dct, _ := workload.ByName("DCT")
	greedy := workload.GreedyBatcher(10 * time.Millisecond)
	opts := exp.Quick()
	alone := exp.MeasureAlone(opts, dct, greedy)
	for _, sched := range []exp.Sched{exp.Direct, exp.DFQ} {
		res := exp.RunMix(sched, opts, alone, dct, greedy)
		victim, batcher := res.Rig.Apps[0].Task.BusyTime(), res.Rig.Apps[1].Task.BusyTime()
		total := float64(victim + batcher)
		fmt.Printf("  %-26s device share: victim=%2.0f%% batcher=%2.0f%%  (victim slowdown %.1fx)\n",
			sched.Label(), 100*float64(victim)/total, 100*float64(batcher)/total, res.Slowdowns[0])
	}
	fmt.Println("  fair queueing restores the victim's *share*; bounding its latency under")
	fmt.Println("  multi-millisecond requests additionally needs hardware preemption (Section 6.2).")
	fmt.Println()
}

func channelHog() {
	fmt.Println("-- Attack 3: channel exhaustion (Section 6.3) --")
	for _, withPolicy := range []bool{false, true} {
		rig := exp.NewRig(exp.Direct, exp.Quick())
		if withPolicy {
			rig.Kernel.Policy = &neon.ChannelPolicy{MaxChannelsPerTask: 4, MaxTasks: 24}
		}
		_, res, _ := workload.LaunchChannelHog(rig.Kernel, 100)
		rig.Engine.RunFor(50 * time.Millisecond)
		dct, _ := workload.ByName("DCT")
		victim := workload.Launch(rig.Kernel, dct, nil)
		rig.Engine.RunFor(50 * time.Millisecond)
		policy := "no policy"
		if withPolicy {
			policy = "C=4 channels/task"
		}
		fmt.Printf("  %-18s hog grabbed %2d contexts; victim can open GPU: %v\n",
			policy, res.ContextsCreated, victim.SetupError() == nil)
	}
}
