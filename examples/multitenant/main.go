// Multitenant: four applications share one GPU under each scheduling
// policy — the paper's Figure 8 scenario as a library example. Prints
// per-task slowdowns and overall efficiency per policy.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	opts := exp.Quick()

	thr := workload.Throttle(425*time.Microsecond, 0)
	bs, _ := workload.ByName("BinarySearch")
	dct, _ := workload.ByName("DCT")
	fft, _ := workload.ByName("FFT")
	specs := []workload.Spec{thr, bs, dct, fft}

	fmt.Println("Four concurrent applications: Throttle(425us), BinarySearch, DCT, FFT")
	fmt.Println("(fair outcome with four tasks is a ~4x slowdown each)")
	fmt.Println()

	alone := exp.MeasureAlone(opts, specs...)
	for _, sched := range []exp.Sched{exp.Direct, exp.TS, exp.DTS, exp.DFQ} {
		res := exp.RunMix(sched, opts, alone, specs...)
		fmt.Printf("%-26s", sched.Label())
		for i, s := range specs {
			fmt.Printf("  %s=%.2fx", s.Name, res.Slowdowns[i])
		}
		fmt.Printf("  efficiency=%.2f\n", res.Efficiency)
	}
}
