// Nonsaturating: the work-conservation story (paper Section 5.4). A
// Throttle that sleeps 80% of every cycle shares the GPU with a
// saturating DCT. Timeslice schedulers waste the sleeper's slices; the
// work-conserving Disengaged Fair Queueing gives the idle time to DCT.
//
//	go run ./examples/nonsaturating
package main

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	opts := exp.Quick()
	dct, _ := workload.ByName("DCT")

	fmt.Println("DCT vs Throttle(425us) as the Throttle's off-period grows:")
	fmt.Println()
	fmt.Printf("%-8s  %-26s  %-10s  %-10s  %s\n", "off", "scheduler", "DCT", "Throttle", "efficiency")
	for _, ratio := range []float64{0, 0.5, 0.8} {
		thr := workload.Throttle(425*time.Microsecond, ratio)
		alone := exp.MeasureAlone(opts, dct, thr)
		for _, sched := range []exp.Sched{exp.TS, exp.DTS, exp.DFQ} {
			res := exp.RunMix(sched, opts, alone, dct, thr)
			fmt.Printf("%-8s  %-26s  %-10s  %-10s  %.2f\n",
				fmt.Sprintf("%.0f%%", ratio*100), sched.Label(),
				fmt.Sprintf("%.2fx", res.Slowdowns[0]),
				fmt.Sprintf("%.2fx", res.Slowdowns[1]),
				res.Efficiency)
		}
		fmt.Println()
	}
	fmt.Println("Note how DCT stays pinned near 2x under both timeslice variants no")
	fmt.Println("matter how idle its co-runner is, while under Disengaged Fair")
	fmt.Println("Queueing it reclaims the unused cycles (and the Throttle, which is")
	fmt.Println("not saturating anyway, barely suffers).")
}
