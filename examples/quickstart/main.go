// Quickstart: build the simulated stack by hand — engine, GPU, NEON
// kernel, a scheduler — run two competing applications, and print what
// each one experienced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// 1. A deterministic discrete-event engine in virtual time.
	eng := sim.NewEngine()

	// 2. The accelerator: a Kepler-class GPU with 48 contexts, a
	//    round-robin engine, and per-channel reference counters.
	dev := gpu.New(eng, gpu.DefaultConfig())

	// 3. The OS side: the NEON kernel module with the paper's Disengaged
	//    Fair Queueing scheduler attached.
	sched := core.NewDisengagedFairQueueing(core.DefaultDFQConfig())
	kernel := neon.NewKernel(dev, sched)
	kernel.RequestRunLimit = time.Second

	// 4. Two applications: a small-request compute benchmark and a
	//    greedy microbenchmark issuing 850us requests back to back.
	dct, _ := workload.ByName("DCT")
	throttle := workload.Throttle(850*time.Microsecond, 0)
	appA := workload.Launch(kernel, dct, sim.NewRNG(1))
	appB := workload.Launch(kernel, throttle, sim.NewRNG(2))

	// 5. Run one simulated second.
	eng.RunFor(time.Second)

	fmt.Println("After 1s of simulated time under Disengaged Fair Queueing:")
	for _, app := range []*workload.App{appA, appB} {
		fmt.Printf("  %-10s rounds=%6d  avg round=%8s  device time=%8s\n",
			app.Spec.Name, app.Rounds, app.AvgRound(), app.Task.BusyTime())
	}
	fmt.Printf("  engagement cycles: %d, denials issued: %d, faults taken: %d\n",
		sched.Cycles, sched.Denials, kernel.TotalFaults)
	fmt.Println()
	fmt.Println("Despite the 13x request-size difference, both tasks receive a")
	fmt.Println("comparable share of device time — and almost every request was")
	fmt.Println("submitted at direct-access speed (compare faults to rounds).")
}
