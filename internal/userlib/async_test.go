package userlib

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// TestSubmitAsyncZeroHandoff: the callback path completes a request with
// the continuation firing in engine context — no process ever waits —
// and the doorbell reaches the device a DirectWrite after staging,
// exactly when a blocking store's sleep would have delivered it.
func TestSubmitAsyncZeroHandoff(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	var c *Client
	task.Go("main", func(p *sim.Proc) { c, _ = Open(p, k, task, "t", gpu.Compute) })
	e.RunFor(time.Millisecond)
	if c == nil {
		t.Fatal("Open never finished")
	}

	var done *gpu.Request
	var doneAt sim.Time
	start := e.Now()
	r, ok := c.SubmitAsync(e, gpu.Compute, 40*time.Microsecond, func(r *gpu.Request) {
		done = r
		doneAt = e.Now()
	})
	if !ok || r == nil {
		t.Fatal("SubmitAsync refused on a direct-mapped channel")
	}
	e.RunFor(time.Millisecond)
	if done != r {
		t.Fatal("continuation never fired")
	}
	want := start.Add(k.Costs().DirectWrite + k.Costs().ContextSwitch + 40*time.Microsecond)
	if doneAt != want {
		t.Fatalf("completed at %v, want %v (doorbell + context switch + execution)", doneAt, want)
	}
	if c.Outstanding() != 0 {
		t.Error("async request entered the outstanding set")
	}
}

// TestSubmitAsyncRefusesEngagedChannel: with the channel register
// engaged (non-present page), the async fast path must refuse without
// staging anything, and the blocking fallback must charge the fault
// trap and block the submitting process through the fault path — the
// interposition engaged schedulers depend on.
func TestSubmitAsyncRefusesEngagedChannel(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		c.SubmitSync(p, gpu.Compute, 10*time.Microsecond) // absorb first context switch
		reg := c.Channel(gpu.Compute).Reg
		reg.SetPresent(false)

		faultsBefore, writesBefore := reg.Faults, reg.DirectWrites
		if _, ok := c.SubmitAsync(e, gpu.Compute, 10*time.Microsecond, nil); ok {
			t.Error("SubmitAsync accepted an engaged channel")
		}
		if reg.Faults != faultsBefore || reg.DirectWrites != writesBefore {
			t.Error("refused SubmitAsync touched the register page")
		}
		if !c.Engaged(gpu.Compute) {
			t.Error("Engaged = false on a non-present register")
		}

		start := p.Now()
		r := c.SubmitSync(p, gpu.Compute, 10*time.Microsecond)
		if r == nil || !r.IsDone() {
			t.Fatal("blocking fallback did not complete the request")
		}
		if reg.Faults != faultsBefore+1 {
			t.Errorf("Faults = %d, want %d: fallback must take the fault path", reg.Faults, faultsBefore+1)
		}
		if blocked := p.Now().Sub(start); blocked < k.Costs().FaultTrap+10*time.Microsecond {
			t.Errorf("fallback blocked %v, want at least fault trap + execution", blocked)
		}
	})
	e.RunFor(time.Millisecond)
}

// TestSubmitAsyncRefusesTrapPerRequest: trap-per-request mode has no
// user-space fast path at all; SubmitAsync must refuse and the blocking
// path must still charge the per-request syscall trap and block.
func TestSubmitAsyncRefusesTrapPerRequest(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		c.SubmitSync(p, gpu.Compute, 10*time.Microsecond) // absorb first context switch
		c.TrapPerRequest = true
		if _, ok := c.SubmitAsync(e, gpu.Compute, 10*time.Microsecond, nil); ok {
			t.Error("SubmitAsync accepted in trap-per-request mode")
		}
		if c.Engaged(gpu.Compute) {
			t.Error("Engaged = true in trap mode: the refusal is not an engagement")
		}
		start := p.Now()
		if r := c.SubmitSync(p, gpu.Compute, 10*time.Microsecond); r == nil || !r.IsDone() {
			t.Fatal("trap-mode submission did not complete")
		}
		want := k.Costs().SyscallTrap + k.Costs().DirectWrite + 10*time.Microsecond
		if blocked := p.Now().Sub(start); blocked != want {
			t.Errorf("trap-mode submission blocked %v, want %v", blocked, want)
		}
	})
	e.RunFor(time.Millisecond)
}

// TestSubmitEngagedCommitsFault: a submission that observed the register
// engaged must replay the fault even if the scheduler disengaged the
// page before its process-context turn — the committed-fault rule that
// keeps continuation machines byte-identical with the atomic blocking
// store's check-then-fault.
func TestSubmitEngagedCommitsFault(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		c.SubmitSync(p, gpu.Compute, 10*time.Microsecond)
		reg := c.Channel(gpu.Compute).Reg

		// The machine observes the engagement at the refusal instant...
		reg.SetPresent(false)
		if _, ok := c.SubmitAsync(e, gpu.Compute, 10*time.Microsecond, nil); ok {
			t.Fatal("SubmitAsync accepted an engaged channel")
		}
		committed := c.Engaged(gpu.Compute)
		if !committed {
			t.Fatal("Engaged = false at the refusal instant")
		}
		// ...and the scheduler disengages before the slow lane runs.
		reg.SetPresent(true)

		faultsBefore := reg.Faults
		start := p.Now()
		r := c.SubmitEngaged(p, gpu.Compute, 10*time.Microsecond, nil)
		if r == nil {
			t.Fatal("SubmitEngaged staged nothing")
		}
		if reg.Faults != faultsBefore+1 {
			t.Errorf("Faults = %d, want %d: the committed fault must replay", reg.Faults, faultsBefore+1)
		}
		if blocked := p.Now().Sub(start); blocked < k.Costs().FaultTrap {
			t.Errorf("SubmitEngaged blocked %v, want at least the fault trap %v", blocked, k.Costs().FaultTrap)
		}
		p.Wait(r.DoneGate())
	})
	e.RunFor(time.Millisecond)
}

// TestWaitOneRetiresFromMiddle: WaitOne must retire the waited request
// from the outstanding set by swap-remove — the set keeps the other
// requests (order-independent) and Fence still drains exactly them.
func TestWaitOneRetiresFromMiddle(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		var reqs []*gpu.Request
		for i := 0; i < 3; i++ {
			reqs = append(reqs, c.Submit(p, gpu.Compute, 25*time.Microsecond))
		}
		c.WaitOne(p, reqs[1])
		if !reqs[1].IsDone() {
			t.Error("WaitOne returned before completion")
		}
		if c.Outstanding() != 2 {
			t.Fatalf("Outstanding = %d after WaitOne, want 2", c.Outstanding())
		}
		left := map[*gpu.Request]bool{}
		for _, r := range c.outstanding {
			left[r] = true
		}
		if !left[reqs[0]] || !left[reqs[2]] || left[reqs[1]] {
			t.Fatalf("outstanding set after middle retire: %v", left)
		}
		if drained := c.Fence(p); len(drained) != 2 {
			t.Fatalf("Fence drained %d, want the 2 survivors", len(drained))
		}
	})
	e.RunFor(time.Millisecond)
}
