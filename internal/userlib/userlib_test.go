package userlib

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
)

type passthrough struct{}

func (passthrough) Name() string                                          { return "pass" }
func (passthrough) Start(*neon.Kernel)                                    {}
func (passthrough) TaskAdmitted(*neon.Task)                               {}
func (passthrough) TaskExited(*neon.Task)                                 {}
func (passthrough) ChannelActivated(cs *neon.ChannelState)                { cs.Ch.Reg.SetPresent(true) }
func (passthrough) HandleFault(*sim.Proc, *neon.Task, *neon.ChannelState) {}

func stack(t *testing.T) (*sim.Engine, *neon.Kernel) {
	t.Helper()
	e := sim.NewEngine()
	d := gpu.New(e, gpu.DefaultConfig())
	return e, neon.NewKernel(d, passthrough{})
}

func TestOpenCreatesChannelsInOrder(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	var c *Client
	task.Go("main", func(p *sim.Proc) {
		var err error
		c, err = Open(p, k, task, "t", gpu.Compute, gpu.Graphics)
		if err != nil {
			t.Errorf("Open: %v", err)
		}
	})
	e.RunFor(time.Millisecond)
	if c == nil {
		t.Fatal("Open never finished")
	}
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] != gpu.Compute || kinds[1] != gpu.Graphics {
		t.Fatalf("Kinds = %v", kinds)
	}
	if c.Channel(gpu.Compute) == nil || c.Channel(gpu.Graphics) == nil {
		t.Fatal("channels missing")
	}
	if c.Channel(gpu.DMA) != nil {
		t.Fatal("unrequested channel present")
	}
}

func TestOpenPaysSetupCosts(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	var took sim.Duration
	task.Go("main", func(p *sim.Proc) {
		start := p.Now()
		if _, err := Open(p, k, task, "t", gpu.Compute); err != nil {
			t.Errorf("Open: %v", err)
		}
		took = p.Now().Sub(start)
	})
	e.RunFor(time.Millisecond)
	perSyscall := k.Costs().SyscallTrap + k.Costs().SyscallDriverWork
	if took != 2*perSyscall { // context + one channel
		t.Fatalf("setup took %v, want %v", took, 2*perSyscall)
	}
}

func TestSubmitSyncRoundTrip(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	var r *gpu.Request
	var elapsed sim.Duration
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		start := p.Now()
		r = c.SubmitSync(p, gpu.Compute, 40*time.Microsecond)
		elapsed = p.Now().Sub(start)
		if c.Outstanding() != 0 {
			t.Error("SubmitSync left the request outstanding")
		}
	})
	e.RunFor(time.Millisecond)
	if r == nil || !r.IsDone() {
		t.Fatal("request not completed")
	}
	// Submit cost + context switch + execution.
	want := k.Costs().DirectWrite + k.Costs().ContextSwitch + 40*time.Microsecond
	if elapsed != want {
		t.Fatalf("round trip %v, want %v", elapsed, want)
	}
}

func TestFenceDrainsAllOutstanding(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		for i := 0; i < 4; i++ {
			c.Submit(p, gpu.Compute, 25*time.Microsecond)
		}
		if c.Outstanding() != 4 {
			t.Errorf("Outstanding = %d, want 4", c.Outstanding())
		}
		reqs := c.Fence(p)
		if len(reqs) != 4 {
			t.Errorf("Fence returned %d requests", len(reqs))
		}
		for _, r := range reqs {
			if !r.IsDone() {
				t.Error("Fence returned an incomplete request")
			}
		}
		if c.Outstanding() != 0 {
			t.Error("Fence left requests outstanding")
		}
	})
	e.RunFor(time.Millisecond)
}

func TestTrapPerRequestPaysSyscall(t *testing.T) {
	e, k := stack(t)
	task := k.NewTask("t")
	var direct, trap, heavy sim.Duration
	task.Go("main", func(p *sim.Proc) {
		c, _ := Open(p, k, task, "t", gpu.Compute)
		measure := func() sim.Duration {
			start := p.Now()
			c.SubmitSync(p, gpu.Compute, 10*time.Microsecond)
			return p.Now().Sub(start)
		}
		measure() // warm up: absorb the initial GPU context switch
		direct = measure()
		c.TrapPerRequest = true
		trap = measure()
		c.TrapDriverWork = true
		heavy = measure()
	})
	e.RunFor(time.Millisecond)
	if trap-direct != k.Costs().SyscallTrap {
		t.Fatalf("trap overhead = %v, want %v", trap-direct, k.Costs().SyscallTrap)
	}
	if heavy-trap != k.Costs().SyscallDriverWork {
		t.Fatalf("driver overhead = %v, want %v", heavy-trap, k.Costs().SyscallDriverWork)
	}
}

func TestOpenFailsOverQuota(t *testing.T) {
	e, k := stack(t)
	k.Policy = &neon.ChannelPolicy{MaxChannelsPerTask: 1, MaxTasks: 10}
	task := k.NewTask("t")
	var err error
	task.Go("main", func(p *sim.Proc) {
		_, err = Open(p, k, task, "t", gpu.Compute, gpu.Graphics)
	})
	e.RunFor(time.Millisecond)
	if err != neon.ErrChannelQuota {
		t.Fatalf("err = %v, want quota violation", err)
	}
}
