// Package userlib is the user-level runtime library of the stack — the
// stand-in for the vendor's CUDA/OpenCL/OpenGL libraries. Applications
// use it to set up GPU contexts and channels (syscalls, caught by the
// kernel's initialization phase) and to submit requests through the
// direct-mapped channel registers (no kernel involvement unless the
// scheduler has engaged the channel).
//
// It also offers a trap-per-request submission mode modeling the
// alternative stack design (the paper's AMD Catalyst comparison point),
// used by the Section 3 throughput experiment.
package userlib

import (
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
)

// Client is a task's handle to the GPU: one context plus one channel per
// requested kind. A client opened with OpenVirtual holds a logical
// context instead (VC non-nil): the hardware context is attached lazily
// per submission and may be transparently evicted and re-attached by
// the kernel's virtual-context mux, so submission methods can return a
// nil request when the task dies mid-attach.
type Client struct {
	Task *neon.Task
	Ctx  *gpu.Context

	// VC is the logical context backing a virtual client; nil for raw
	// clients opened with Open.
	VC *neon.VContext

	kernel   *neon.Kernel
	channels map[gpu.Kind]*gpu.Channel
	order    []gpu.Kind

	outstanding []*gpu.Request

	// TrapPerRequest switches submissions to the syscall path: every
	// request pays a kernel trap (plus driver work if TrapDriverWork),
	// bypassing the direct-mapped interface entirely.
	TrapPerRequest bool
	// TrapDriverWork adds nontrivial driver processing to each trap.
	TrapDriverWork bool
}

// Open creates a context and one channel per kind for the task. It is
// called from the task's own process p and pays the setup syscall costs.
func Open(p *sim.Proc, k *neon.Kernel, t *neon.Task, label string, kinds ...gpu.Kind) (*Client, error) {
	ctx, err := k.CreateContext(p, t, label)
	if err != nil {
		return nil, err
	}
	c := &Client{
		Task:     t,
		Ctx:      ctx,
		kernel:   k,
		channels: make(map[gpu.Kind]*gpu.Channel, len(kinds)),
	}
	for _, kind := range kinds {
		cs, err := k.CreateChannel(p, t, ctx, kind)
		if err != nil {
			return nil, err
		}
		c.channels[kind] = cs.Ch
		c.order = append(c.order, kind)
	}
	return c, nil
}

// OpenVirtual creates a client backed by a logical (virtual) context:
// the task can always open one, regardless of how many hardware
// contexts the device has, and the kernel multiplexes the hardware pool
// underneath. When a hardware slot is free the attach happens eagerly
// here, paying exactly the setup syscalls Open would; otherwise the
// first submission attaches (queueing for a slot if the pool is
// exhausted, and paying cost.ContextSwitch on every re-attach).
func OpenVirtual(p *sim.Proc, k *neon.Kernel, t *neon.Task, label string, kinds ...gpu.Kind) (*Client, error) {
	vc, err := k.OpenVirtual(p, t, label, kinds...)
	if err != nil {
		return nil, err
	}
	return &Client{
		Task:   t,
		VC:     vc,
		kernel: k,
		order:  append([]gpu.Kind(nil), kinds...),
	}, nil
}

// Channel returns the client's channel of the given kind, or nil. For a
// virtual client this is the currently attached hardware channel; nil
// while detached.
func (c *Client) Channel(kind gpu.Kind) *gpu.Channel {
	if c.VC != nil {
		return c.VC.ChannelIf(kind)
	}
	return c.channels[kind]
}

// Kinds returns the channel kinds the client opened, in creation order.
func (c *Client) Kinds() []gpu.Kind { return c.order }

// Submit stages a request of the given size on the kind's channel and
// rings the doorbell. It does not wait for completion. The store may
// fault (and block p) if the scheduler has engaged the channel.
func (c *Client) Submit(p *sim.Proc, kind gpu.Kind, size sim.Duration) *gpu.Request {
	r := c.SubmitDetached(p, kind, size)
	if r == nil {
		return nil
	}
	c.outstanding = append(c.outstanding, r)
	return r
}

// SubmitDetached stages and submits a request without adding it to the
// outstanding set: the caller never fences or waits on it through this
// client. Open-loop serving dispatchers use it — completion is observed
// through the request's own done hook, and tracking every in-flight
// request in the fence list would grow without bound under sustained
// overload. Like Submit, the doorbell store may fault and block p.
// On a virtual client it returns nil if the task dies before the
// logical context can attach.
func (c *Client) SubmitDetached(p *sim.Proc, kind gpu.Kind, size sim.Duration) *gpu.Request {
	ch := c.channels[kind]
	if c.VC != nil {
		var err error
		ch, err = c.VC.Acquire(p, kind)
		if err != nil {
			return nil
		}
		defer c.VC.Release()
	}
	r := ch.Stage(size, kind)
	if c.TrapPerRequest {
		cost := c.kernel.Costs().SyscallTrap
		if c.TrapDriverWork {
			cost += c.kernel.Costs().SyscallDriverWork
		}
		p.Sleep(cost)
	}
	ch.Reg.Store(p, r.Ref)
	return r
}

// SubmitSync submits a request and blocks until it completes, like a
// blocking OpenCL kernel launch. Completion is detected by user-space
// polling of the reference counter (no kernel involvement).
//
// Because the caller does nothing between the doorbell store and the
// completion wait, the store uses the page's asynchronous fast path
// when the channel is direct-mapped: the doorbell still reaches the
// device at now+DirectWrite, but without a process wakeup in between.
// An engaged channel (or the trap-per-request mode) falls back to the
// blocking store, which may fault and delay the process arbitrarily.
// Sync requests never enter the outstanding set: the request is retired
// before returning, so there is nothing for Fence to see.
// On a virtual client it returns nil if the task dies before the
// logical context can attach.
func (c *Client) SubmitSync(p *sim.Proc, kind gpu.Kind, size sim.Duration) *gpu.Request {
	ch := c.channels[kind]
	if c.VC != nil {
		var err error
		ch, err = c.VC.Acquire(p, kind)
		if err != nil {
			return nil
		}
	}
	r := ch.Stage(size, kind)
	if c.TrapPerRequest {
		cost := c.kernel.Costs().SyscallTrap
		if c.TrapDriverWork {
			cost += c.kernel.Costs().SyscallDriverWork
		}
		p.Sleep(cost)
		ch.Reg.Store(p, r.Ref)
	} else if !ch.Reg.StoreAsync(p.Engine(), r.Ref) {
		ch.Reg.Store(p, r.Ref)
	}
	if c.VC != nil {
		c.VC.Release()
	}
	p.Wait(r.DoneGate())
	return r
}

// WaitOne blocks until the given request completes or aborts, and
// retires it from the outstanding set.
func (c *Client) WaitOne(p *sim.Proc, r *gpu.Request) {
	p.Wait(r.DoneGate())
	for i, o := range c.outstanding {
		if o == r {
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			break
		}
	}
}

// Fence blocks until every outstanding request completes (a frame
// boundary for graphics pipelines) and returns the drained requests.
func (c *Client) Fence(p *sim.Proc) []*gpu.Request {
	reqs := c.outstanding
	c.outstanding = nil
	for _, r := range reqs {
		p.Wait(r.DoneGate())
	}
	return reqs
}

// Outstanding returns requests submitted but not yet fenced.
func (c *Client) Outstanding() int { return len(c.outstanding) }
