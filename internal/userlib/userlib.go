// Package userlib is the user-level runtime library of the stack — the
// stand-in for the vendor's CUDA/OpenCL/OpenGL libraries. Applications
// use it to set up GPU contexts and channels (syscalls, caught by the
// kernel's initialization phase) and to submit requests through the
// direct-mapped channel registers (no kernel involvement unless the
// scheduler has engaged the channel).
//
// It also offers a trap-per-request submission mode modeling the
// alternative stack design (the paper's AMD Catalyst comparison point),
// used by the Section 3 throughput experiment.
package userlib

import (
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
)

// Client is a task's handle to the GPU: one context plus one channel per
// requested kind. A client opened with OpenVirtual holds a logical
// context instead (VC non-nil): the hardware context is attached lazily
// per submission and may be transparently evicted and re-attached by
// the kernel's virtual-context mux, so submission methods can return a
// nil request when the task dies mid-attach.
type Client struct {
	Task *neon.Task
	Ctx  *gpu.Context

	// VC is the logical context backing a virtual client; nil for raw
	// clients opened with Open.
	VC *neon.VContext

	kernel   *neon.Kernel
	channels map[gpu.Kind]*gpu.Channel
	order    []gpu.Kind

	outstanding []*gpu.Request

	// TrapPerRequest switches submissions to the syscall path: every
	// request pays a kernel trap (plus driver work if TrapDriverWork),
	// bypassing the direct-mapped interface entirely.
	TrapPerRequest bool
	// TrapDriverWork adds nontrivial driver processing to each trap.
	TrapDriverWork bool
}

// Open creates a context and one channel per kind for the task. It is
// called from the task's own process p and pays the setup syscall costs.
func Open(p *sim.Proc, k *neon.Kernel, t *neon.Task, label string, kinds ...gpu.Kind) (*Client, error) {
	ctx, err := k.CreateContext(p, t, label)
	if err != nil {
		return nil, err
	}
	c := &Client{
		Task:     t,
		Ctx:      ctx,
		kernel:   k,
		channels: make(map[gpu.Kind]*gpu.Channel, len(kinds)),
	}
	for _, kind := range kinds {
		cs, err := k.CreateChannel(p, t, ctx, kind)
		if err != nil {
			return nil, err
		}
		c.channels[kind] = cs.Ch
		c.order = append(c.order, kind)
	}
	return c, nil
}

// OpenVirtual creates a client backed by a logical (virtual) context:
// the task can always open one, regardless of how many hardware
// contexts the device has, and the kernel multiplexes the hardware pool
// underneath. When a hardware slot is free the attach happens eagerly
// here, paying exactly the setup syscalls Open would; otherwise the
// first submission attaches (queueing for a slot if the pool is
// exhausted, and paying cost.ContextSwitch on every re-attach).
func OpenVirtual(p *sim.Proc, k *neon.Kernel, t *neon.Task, label string, kinds ...gpu.Kind) (*Client, error) {
	vc, err := k.OpenVirtual(p, t, label, kinds...)
	if err != nil {
		return nil, err
	}
	return &Client{
		Task:   t,
		VC:     vc,
		kernel: k,
		order:  append([]gpu.Kind(nil), kinds...),
	}, nil
}

// Channel returns the client's channel of the given kind, or nil. For a
// virtual client this is the currently attached hardware channel; nil
// while detached.
func (c *Client) Channel(kind gpu.Kind) *gpu.Channel {
	if c.VC != nil {
		return c.VC.ChannelIf(kind)
	}
	return c.channels[kind]
}

// Kinds returns the channel kinds the client opened, in creation order.
func (c *Client) Kinds() []gpu.Kind { return c.order }

// Submit stages a request of the given size on the kind's channel and
// rings the doorbell. It does not wait for completion. The store may
// fault (and block p) if the scheduler has engaged the channel.
func (c *Client) Submit(p *sim.Proc, kind gpu.Kind, size sim.Duration) *gpu.Request {
	r := c.SubmitDetached(p, kind, size)
	if r == nil {
		return nil
	}
	c.outstanding = append(c.outstanding, r)
	return r
}

// SubmitDetached stages and submits a request without adding it to the
// outstanding set: the caller never fences or waits on it through this
// client. Open-loop serving dispatchers use it — completion is observed
// through the request's own done hook, and tracking every in-flight
// request in the fence list would grow without bound under sustained
// overload. Like Submit, the doorbell store may fault and block p.
// On a virtual client it returns nil if the task dies before the
// logical context can attach.
func (c *Client) SubmitDetached(p *sim.Proc, kind gpu.Kind, size sim.Duration) *gpu.Request {
	ch := c.channels[kind]
	if c.VC != nil {
		var err error
		ch, err = c.VC.Acquire(p, kind)
		if err != nil {
			return nil
		}
		defer c.VC.Release()
	}
	r := ch.Stage(size, kind)
	if c.TrapPerRequest {
		cost := c.kernel.Costs().SyscallTrap
		if c.TrapDriverWork {
			cost += c.kernel.Costs().SyscallDriverWork
		}
		p.Sleep(cost)
	}
	ch.Reg.Store(p, r.Ref)
	return r
}

// SubmitAsync is the continuation-passing submission fast path: stage,
// hook the completion continuation, ring the doorbell asynchronously —
// all from engine (or process) context, never blocking and never waking
// a process. The device sees the store at now+DirectWrite, exactly as a
// direct-mapped blocking store would deliver it, and onDone (if non-nil)
// fires exactly once in engine context when the request completes or
// aborts — before the request's done gate opens, per gpu.Request.OnDone.
//
// It reports false — staging nothing — whenever completing the
// submission would need process context: trap-per-request mode, an
// engaged (non-present) channel register, or a virtual client whose
// logical context is not currently attached. Callers then fall back to
// the blocking methods from a real process, which charge the trap or
// fault costs the slow paths owe. Async requests never enter the
// outstanding set; completion is observed through the continuation.
func (c *Client) SubmitAsync(e *sim.Engine, kind gpu.Kind, size sim.Duration, onDone func(*gpu.Request)) (*gpu.Request, bool) {
	if c.TrapPerRequest {
		return nil, false
	}
	ch := c.channels[kind]
	if c.VC != nil {
		// Peek, don't pin: a refused submission must leave the mux LRU
		// clock untouched so the blocking retry's Acquire is the one use
		// the submission charges (see VContext.Peek).
		var ok bool
		ch, ok = c.VC.Peek(kind)
		if !ok {
			return nil, false
		}
	}
	if ch == nil || !ch.Reg.Present() {
		return nil, false
	}
	if c.VC != nil {
		if _, ok := c.VC.AcquireIf(kind); !ok {
			return nil, false
		}
		defer c.VC.Release()
	}
	r := ch.Stage(size, kind)
	r.OnDone = onDone
	if !ch.Reg.StoreAsync(e, r.Ref) {
		panic("userlib: async store refused on a present page")
	}
	return r, true
}

// Engaged reports whether the async fast path is unavailable solely
// because the scheduler has engaged the channel register: the channel is
// resolvable without blocking (raw client, or attached virtual context)
// but the register page is non-present. A continuation machine calls it
// in the same engine instant as a SubmitAsync refusal to decide whether
// the slow-lane retry must commit to the fault path (SubmitEngaged)
// before handing off to its process — the handoff is an event hop, and
// the scheduler may disengage within the instant, which must not turn a
// store that was observed engaged into a direct write.
func (c *Client) Engaged(kind gpu.Kind) bool {
	if c.TrapPerRequest {
		return false
	}
	ch := c.channels[kind]
	if c.VC != nil {
		var ok bool
		ch, ok = c.VC.Peek(kind)
		if !ok {
			return false
		}
	}
	return ch != nil && !ch.Reg.Present()
}

// SubmitEngaged completes, on process p, a submission whose fast path
// was refused because the channel register was engaged (Engaged
// reported true at the refusal instant). The store is committed to the
// fault path — mmio.Page.StoreFaulting — so the request pays the fault
// trap and runs the kernel handler even if the scheduler disengaged the
// page between the refusal and p's turn, exactly as a blocking Store
// that took the fault at the observation would have. The continuation,
// if non-nil, is hooked before the store: the handler may block p
// arbitrarily and the request can be aborted (task death) while staged,
// in which case onDone fires during this call. It does not wait for
// completion. On a virtual client it returns nil, staging nothing, if
// the task dies before the context can (re)attach.
func (c *Client) SubmitEngaged(p *sim.Proc, kind gpu.Kind, size sim.Duration, onDone func(*gpu.Request)) *gpu.Request {
	ch := c.channels[kind]
	if c.VC != nil {
		var err error
		ch, err = c.VC.Acquire(p, kind)
		if err != nil {
			return nil
		}
		defer c.VC.Release()
	}
	r := ch.Stage(size, kind)
	r.OnDone = onDone
	ch.Reg.StoreFaulting(p, r.Ref)
	return r
}

// SubmitSync submits a request and blocks until it completes, like a
// blocking OpenCL kernel launch. Completion is detected by user-space
// polling of the reference counter (no kernel involvement).
//
// It is a thin wrapper over SubmitAsync: because the caller does nothing
// between the doorbell store and the completion wait, the store uses the
// page's asynchronous fast path when the channel is direct-mapped — the
// doorbell still reaches the device at now+DirectWrite, but without a
// process wakeup in between — and the process parks once, on the done
// gate. An engaged channel (or the trap-per-request mode) falls back to
// the blocking store, which may fault and delay the process arbitrarily.
// Sync requests never enter the outstanding set: the request is retired
// before returning, so there is nothing for Fence to see.
// On a virtual client it returns nil if the task dies before the
// logical context can attach.
func (c *Client) SubmitSync(p *sim.Proc, kind gpu.Kind, size sim.Duration) *gpu.Request {
	if r, ok := c.SubmitAsync(p.Engine(), kind, size, nil); ok {
		p.Wait(r.DoneGate())
		return r
	}
	ch := c.channels[kind]
	if c.VC != nil {
		var err error
		ch, err = c.VC.Acquire(p, kind)
		if err != nil {
			return nil
		}
	}
	r := ch.Stage(size, kind)
	if c.TrapPerRequest {
		cost := c.kernel.Costs().SyscallTrap
		if c.TrapDriverWork {
			cost += c.kernel.Costs().SyscallDriverWork
		}
		p.Sleep(cost)
		ch.Reg.Store(p, r.Ref)
	} else if !ch.Reg.StoreAsync(p.Engine(), r.Ref) {
		ch.Reg.Store(p, r.Ref)
	}
	if c.VC != nil {
		c.VC.Release()
	}
	p.Wait(r.DoneGate())
	return r
}

// WaitOne blocks until the given request completes or aborts, and
// retires it from the outstanding set by swap-remove: the hole is filled
// with the last element, so retiring from the middle is O(1) instead of
// shifting the tail. The outstanding set's order is therefore
// unspecified — Fence waits on all of them regardless of order, and no
// caller may rely on submission order surviving a WaitOne.
func (c *Client) WaitOne(p *sim.Proc, r *gpu.Request) {
	p.Wait(r.DoneGate())
	for i, o := range c.outstanding {
		if o == r {
			last := len(c.outstanding) - 1
			c.outstanding[i] = c.outstanding[last]
			c.outstanding[last] = nil
			c.outstanding = c.outstanding[:last]
			break
		}
	}
}

// Fence blocks until every outstanding request completes (a frame
// boundary for graphics pipelines) and returns the drained requests.
func (c *Client) Fence(p *sim.Proc) []*gpu.Request {
	reqs := c.outstanding
	c.outstanding = nil
	for _, r := range reqs {
		p.Wait(r.DoneGate())
	}
	return reqs
}

// Outstanding returns requests submitted but not yet fenced.
func (c *Client) Outstanding() int { return len(c.outstanding) }

// Batch stages several requests on one channel and rings a single
// doorbell for all of them — the open-loop dispatchers' backlog-drain
// path, paying one StoreAsync and one device kick per batch instead of
// per request. The hardware model makes this exact: a doorbell store
// carries the highest staged reference value, and the device moves every
// staged request up to it into the ring at delivery (gpu.Device
// doorbell), so the whole batch reaches the device in one event at
// now+DirectWrite — same-instant delivery for all members.
//
// A batch must begin, stage, and flush within a single engine instant
// (no process yields in between): Begin checks the fast path once, and
// the page cannot change state under an atomic instant.
type Batch struct {
	c    *Client
	ch   *gpu.Channel
	n    int
	last uint64
}

// BeginBatch opens a batch on the kind's channel, pinning a virtual
// client's context until Flush. Like SubmitAsync it refuses — staging
// nothing — when the fast path is unavailable (trap-per-request mode,
// engaged register, or detached virtual context); callers fall back to
// per-request blocking submission, which preserves the per-request
// fault/trap sequence engaged schedulers depend on.
func (c *Client) BeginBatch(kind gpu.Kind) (Batch, bool) {
	if c.TrapPerRequest {
		return Batch{}, false
	}
	ch := c.channels[kind]
	if c.VC != nil {
		var ok bool
		ch, ok = c.VC.Peek(kind)
		if !ok {
			return Batch{}, false
		}
	}
	if ch == nil || !ch.Reg.Present() {
		return Batch{}, false
	}
	if c.VC != nil {
		if _, ok := c.VC.AcquireIf(kind); !ok {
			return Batch{}, false
		}
	}
	return Batch{c: c, ch: ch}, true
}

// Stage adds one request to the batch without ringing the doorbell. The
// continuation fires per request, exactly as with SubmitAsync.
func (b *Batch) Stage(size sim.Duration, kind gpu.Kind, onDone func(*gpu.Request)) *gpu.Request {
	r := b.ch.Stage(size, kind)
	r.OnDone = onDone
	b.n++
	b.last = r.Ref
	return r
}

// Len returns the number of requests staged so far.
func (b *Batch) Len() int { return b.n }

// Flush rings one doorbell for the whole batch (a no-op for an empty
// one) and unpins a virtual client's context. The batch is dead after
// Flush.
func (b *Batch) Flush(e *sim.Engine) {
	if b.n > 0 {
		if !b.ch.Reg.StoreAsync(e, b.last) {
			panic("userlib: batch flush refused on a present page")
		}
	}
	if b.c.VC != nil {
		b.c.VC.Release()
	}
	b.c = nil
	b.ch = nil
}
