// Package mmio models the memory-mapped register interface between user
// space and the accelerator.
//
// Each GPU channel exposes a channel register on its own page. While the
// page is Present, a store costs cost.Model.DirectWrite and goes straight
// to the device — the OS never sees it. When the page is made non-present
// (the scheduler "engages"), a store instead raises a page fault: the
// registered FaultHandler runs in the faulting process's context, may
// block the process arbitrarily long (that is how schedulers delay
// requests), and on return the faulting store is single-stepped to the
// device and the page re-protected.
//
// This is the exact interposition point of the paper: protection cannot
// be bypassed by applications because it does not depend on library
// cooperation.
package mmio

import (
	"repro/internal/cost"
	"repro/internal/sim"
)

// Write describes a store to a channel register.
type Write struct {
	Page  *Page
	Value uint64
}

// FaultHandler is invoked, in the faulting process's context, for every
// store to a non-present page. It may call blocking Proc methods. After
// it returns the store is delivered to the device.
type FaultHandler func(p *sim.Proc, w Write)

// Sink receives stores after they are allowed through (directly or via
// fault single-stepping). The GPU's channel doorbell is a Sink.
type Sink func(value uint64)

// Page is one device-register page that can be mapped into a task.
type Page struct {
	name    string
	costs   cost.Model
	present bool
	handler FaultHandler
	sink    Sink

	// Deferred-store state for StoreAsync: values whose DirectWrite
	// propagation delay has not yet elapsed, delivered FIFO by deliverFn
	// (bound once at construction so the fast path does not allocate).
	pending   []uint64
	deliverFn func()

	// Counters for tests and experiments.
	DirectWrites int64
	Faults       int64
}

// NewPage returns a page that is initially present (direct access).
func NewPage(name string, costs cost.Model, sink Sink) *Page {
	pg := &Page{name: name, costs: costs, present: true, sink: sink}
	pg.deliverFn = pg.deliver
	return pg
}

// Name returns the page's diagnostic name.
func (pg *Page) Name() string { return pg.name }

// Present reports whether direct user-space access is currently enabled.
func (pg *Page) Present() bool { return pg.present }

// SetPresent flips the page mapping. Present=false means the next store
// faults into the handler. Called by the kernel (NEON), never by tasks.
func (pg *Page) SetPresent(present bool) { pg.present = present }

// SetHandler installs the kernel fault handler.
func (pg *Page) SetHandler(h FaultHandler) { pg.handler = h }

// Store performs a user-space store to the page from process p, paying
// the appropriate cost and faulting if the page is protected.
func (pg *Page) Store(p *sim.Proc, value uint64) {
	if pg.present {
		pg.DirectWrites++
		p.Sleep(pg.costs.DirectWrite)
		pg.sink(value)
		return
	}
	pg.StoreFaulting(p, value)
}

// StoreFaulting delivers a store through the fault path regardless of
// the page's current mapping. Store commits a store to the fault at the
// instant it observes the page non-present — the page may be remapped
// during the trap sleep and the handler still runs. A caller that makes
// the same observation in engine context (a continuation machine whose
// fast-path store was refused) owes the same commitment, but takes the
// fault one event hop later, on its slow-lane process; the scheduler may
// remap the page within that same instant, exactly as it may during
// Store's trap sleep, and either way the committed fault proceeds:
// trap, handler, then the single-stepped store.
func (pg *Page) StoreFaulting(p *sim.Proc, value uint64) {
	pg.Faults++
	p.Sleep(pg.costs.FaultTrap)
	if pg.handler != nil {
		pg.handler(p, Write{Page: pg, Value: value})
	}
	// Single-step the faulting instruction: the store now reaches the
	// device. Protection state afterwards is whatever the handler chose
	// (NEON re-protects by default by leaving present=false).
	pg.sink(value)
}

// StoreAsync performs a direct store without blocking the calling
// process: the value reaches the sink after the same DirectWrite
// propagation delay as Store, but as an engine event rather than a
// process wakeup, saving the goroutine handoff. It reports false — and
// does nothing — when the page is protected: faulting stores must run
// the handler in process context, so the caller falls back to Store.
//
// Only callers that do not act between the store and the next blocking
// point may use it (the store's side effects become visible at
// now+DirectWrite, after the caller has moved on); a submit-and-wait
// path qualifies.
func (pg *Page) StoreAsync(e *sim.Engine, value uint64) bool {
	if !pg.present {
		return false
	}
	pg.DirectWrites++
	pg.pending = append(pg.pending, value)
	e.After(pg.costs.DirectWrite, pg.deliverFn)
	return true
}

// deliver releases the oldest deferred store to the sink. Deliveries are
// FIFO: every deferred store schedules one deliver event a constant
// delay after issue, so event order matches issue order.
func (pg *Page) deliver() {
	v := pg.pending[0]
	n := copy(pg.pending, pg.pending[1:])
	pg.pending = pg.pending[:n]
	pg.sink(v)
}
