package mmio

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/sim"
)

func testPage(e *sim.Engine) (*Page, *[]uint64) {
	var delivered []uint64
	pg := NewPage("test", cost.Default(), func(v uint64) { delivered = append(delivered, v) })
	return pg, &delivered
}

func TestDirectStoreCostsDirectWrite(t *testing.T) {
	e := sim.NewEngine()
	pg, delivered := testPage(e)
	var took sim.Duration
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		pg.Store(p, 42)
		took = p.Now().Sub(start)
	})
	e.Run()
	if took != cost.Default().DirectWrite {
		t.Fatalf("direct store took %v, want %v", took, cost.Default().DirectWrite)
	}
	if len(*delivered) != 1 || (*delivered)[0] != 42 {
		t.Fatalf("delivered = %v", *delivered)
	}
	if pg.DirectWrites != 1 || pg.Faults != 0 {
		t.Fatalf("counters: direct=%d faults=%d", pg.DirectWrites, pg.Faults)
	}
}

func TestProtectedStoreFaults(t *testing.T) {
	e := sim.NewEngine()
	pg, delivered := testPage(e)
	pg.SetPresent(false)
	handled := false
	pg.SetHandler(func(p *sim.Proc, w Write) {
		handled = true
		if w.Value != 7 || w.Page != pg {
			t.Errorf("handler saw %+v", w)
		}
		if len(*delivered) != 0 {
			t.Error("store reached device before handler returned")
		}
	})
	e.Spawn("w", func(p *sim.Proc) { pg.Store(p, 7) })
	e.Run()
	if !handled {
		t.Fatal("handler not invoked")
	}
	if len(*delivered) != 1 {
		t.Fatal("store not single-stepped to device after handler")
	}
	if pg.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", pg.Faults)
	}
}

func TestFaultCostCharged(t *testing.T) {
	e := sim.NewEngine()
	pg, _ := testPage(e)
	pg.SetPresent(false)
	pg.SetHandler(func(p *sim.Proc, w Write) {})
	var took sim.Duration
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		pg.Store(p, 1)
		took = p.Now().Sub(start)
	})
	e.Run()
	if took != cost.Default().FaultTrap {
		t.Fatalf("fault path took %v, want FaultTrap=%v", took, cost.Default().FaultTrap)
	}
}

func TestHandlerMayBlockSubmitter(t *testing.T) {
	e := sim.NewEngine()
	pg, delivered := testPage(e)
	pg.SetPresent(false)
	gate := e.NewGate("allow")
	pg.SetHandler(func(p *sim.Proc, w Write) { p.Wait(gate) })
	var doneAt sim.Time
	e.Spawn("w", func(p *sim.Proc) {
		pg.Store(p, 9)
		doneAt = p.Now()
	})
	e.After(50*time.Microsecond, gate.Broadcast)
	e.Run()
	if len(*delivered) != 1 {
		t.Fatal("store never delivered")
	}
	if doneAt < sim.Time(50*time.Microsecond) {
		t.Fatalf("store completed at %v, before the scheduler released it", doneAt)
	}
}

func TestReprotectionPersistsAcrossStores(t *testing.T) {
	e := sim.NewEngine()
	pg, _ := testPage(e)
	pg.SetPresent(false)
	pg.SetHandler(func(p *sim.Proc, w Write) {})
	e.Spawn("w", func(p *sim.Proc) {
		pg.Store(p, 1)
		pg.Store(p, 2)
		pg.Store(p, 3)
	})
	e.Run()
	if pg.Faults != 3 {
		t.Fatalf("Faults = %d; page must stay protected between stores", pg.Faults)
	}
}

func TestUnprotectedAfterDisengage(t *testing.T) {
	e := sim.NewEngine()
	pg, _ := testPage(e)
	pg.SetPresent(false)
	pg.SetHandler(func(p *sim.Proc, w Write) {})
	e.Spawn("w", func(p *sim.Proc) {
		pg.Store(p, 1)
		pg.SetPresent(true) // disengage
		pg.Store(p, 2)
		pg.Store(p, 3)
	})
	e.Run()
	if pg.Faults != 1 || pg.DirectWrites != 2 {
		t.Fatalf("faults=%d direct=%d, want 1/2", pg.Faults, pg.DirectWrites)
	}
}

func TestNilHandlerStillDelivers(t *testing.T) {
	e := sim.NewEngine()
	pg, delivered := testPage(e)
	pg.SetPresent(false)
	e.Spawn("w", func(p *sim.Proc) { pg.Store(p, 5) })
	e.Run()
	if len(*delivered) != 1 {
		t.Fatal("store with nil handler lost")
	}
}
