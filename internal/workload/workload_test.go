package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
)

type passthrough struct{}

func (passthrough) Name() string                                          { return "pass" }
func (passthrough) Start(*neon.Kernel)                                    {}
func (passthrough) TaskAdmitted(*neon.Task)                               {}
func (passthrough) TaskExited(*neon.Task)                                 {}
func (passthrough) ChannelActivated(cs *neon.ChannelState)                { cs.Ch.Reg.SetPresent(true) }
func (passthrough) HandleFault(*sim.Proc, *neon.Task, *neon.ChannelState) {}

func stack(t *testing.T) (*sim.Engine, *neon.Kernel) {
	t.Helper()
	e := sim.NewEngine()
	d := gpu.New(e, gpu.DefaultConfig())
	return e, neon.NewKernel(d, passthrough{})
}

func TestTable1HasAllEighteenApps(t *testing.T) {
	specs := Table1()
	if len(specs) != 18 {
		t.Fatalf("Table1 has %d specs, want 18", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestSpecCalibration checks every mix against the paper's Table 1:
// per-round time within 5% and mean checked-request size within 10%.
func TestSpecCalibration(t *testing.T) {
	for _, s := range Table1() {
		roundUS := float64(s.ActiveTime()) / float64(time.Microsecond)
		if rel := math.Abs(roundUS-s.PaperRoundUS) / s.PaperRoundUS; rel > 0.05 {
			t.Errorf("%s: modeled round %.0fus vs paper %.0fus (%.1f%% off)",
				s.Name, roundUS, s.PaperRoundUS, 100*rel)
		}
		if s.PaperReq2US > 0 {
			continue // combined apps checked separately below
		}
		meanUS := float64(s.MeanRequest()) / float64(time.Microsecond)
		if rel := math.Abs(meanUS-s.PaperReqUS) / s.PaperReqUS; rel > 0.10 {
			t.Errorf("%s: modeled mean request %.0fus vs paper %.0fus",
				s.Name, meanUS, s.PaperReqUS)
		}
	}
}

func TestCombinedAppsPerChannelMeans(t *testing.T) {
	for _, name := range []string{"oclParticles", "simpleTexture3D"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		var cSum, gSum time.Duration
		var cN, gN int
		for _, r := range s.Requests() {
			if r.Trivial {
				continue
			}
			if r.Kind == gpu.Compute {
				cSum += r.Size
				cN++
			} else if r.Kind == gpu.Graphics {
				gSum += r.Size
				gN++
			}
		}
		cMean := float64(cSum/time.Duration(cN)) / float64(time.Microsecond)
		gMean := float64(gSum/time.Duration(gN)) / float64(time.Microsecond)
		if math.Abs(cMean-s.PaperReqUS) > 1 || math.Abs(gMean-s.PaperReq2US) > 1 {
			t.Errorf("%s: per-channel means %.0f/%.0f vs paper %.0f/%.0f",
				name, cMean, gMean, s.PaperReqUS, s.PaperReq2US)
		}
	}
}

func TestTrivialRequestsExcludedFromMean(t *testing.T) {
	s, _ := ByName("BitonicSort")
	n := 0
	for _, r := range s.Requests() {
		if r.Trivial {
			n++
		}
	}
	if n != 35 {
		t.Fatalf("BitonicSort trivial count = %d, want 35", n)
	}
	mean := float64(s.MeanRequest()) / float64(time.Microsecond)
	if mean < 195 || mean > 210 {
		t.Fatalf("mean with trivial excluded = %.0f, want ~202", mean)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("DCT"); !ok {
		t.Fatal("DCT missing")
	}
	if _, ok := ByName("NoSuchApp"); ok {
		t.Fatal("bogus name found")
	}
}

func TestThrottleSpec(t *testing.T) {
	s := Throttle(425*time.Microsecond, 0.8)
	if s.RequestCount() != 1 || s.MeanRequest() != 425*time.Microsecond {
		t.Fatalf("throttle mix wrong: %+v", s.Mix)
	}
	// OffTime: active*(0.8/0.2) = 4x active.
	if got, want := s.OffTime(), 4*s.ActiveTime(); got != want {
		t.Fatalf("OffTime = %v, want %v", got, want)
	}
	if Throttle(10*time.Microsecond, 0).OffTime() != 0 {
		t.Fatal("saturating throttle has off time")
	}
}

// TestTenantSpecValidate is the regression test for the silent weight
// clamp: core.PerWeight treats weight <= 0 as 1, so a negative or NaN
// weight used to sail through spec parsing and quietly become an equal
// share. Validate must reject those at spec time while keeping zero as
// the documented "unset → default 1" value.
func TestTenantSpecValidate(t *testing.T) {
	ok := []TenantSpec{
		{Spec: Spec{Name: "zero"}},
		{Spec: Spec{Name: "unit"}, Weight: 1},
		{Spec: Spec{Name: "frac"}, Weight: 0.25},
		{Spec: Spec{Name: "heavy"}, Weight: 4, Tier: TierPremium, Org: "acme"},
	}
	for _, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", s.Name, err)
		}
	}
	bad := []TenantSpec{
		{Spec: Spec{Name: "neg"}, Weight: -1},
		{Spec: Spec{Name: "nan"}, Weight: math.NaN()},
		{Spec: Spec{Name: "inf"}, Weight: math.Inf(1)},
		{Spec: Spec{Name: "ninf"}, Weight: math.Inf(-1)},
		{Spec: Spec{Name: "tier"}, Weight: 1, Tier: Tier("platinum")},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid spec %+v", s.Name, s)
		}
	}
}

func TestAppRunsRounds(t *testing.T) {
	e, k := stack(t)
	spec, _ := ByName("DCT")
	app := Launch(k, spec, sim.NewRNG(1))
	e.RunFor(100 * time.Millisecond)
	if app.SetupError() != nil {
		t.Fatal(app.SetupError())
	}
	if app.Rounds == 0 {
		t.Fatal("no rounds")
	}
	avg := float64(app.AvgRound()) / float64(time.Microsecond)
	if avg < spec.PaperRoundUS*0.95 || avg > spec.PaperRoundUS*1.15 {
		t.Fatalf("avg round %.0fus vs paper %.0f", avg, spec.PaperRoundUS)
	}
}

func TestAppObserveHistograms(t *testing.T) {
	e, k := stack(t)
	spec, _ := ByName("glxgears")
	app := Launch(k, spec, sim.NewRNG(1))
	app.Observe = true
	e.RunFor(50 * time.Millisecond)
	if app.Service.Total == 0 || app.InterArrival.Total == 0 {
		t.Fatal("no observations")
	}
	// Figure 2's property: at least half the requests are small.
	if frac := app.Service.FractionBelow(10 * time.Microsecond); frac < 0.4 {
		t.Fatalf("only %.0f%% of glxgears requests below 10us", 100*frac)
	}
}

func TestAppResetStats(t *testing.T) {
	e, k := stack(t)
	app := Launch(k, Throttle(50*time.Microsecond, 0), sim.NewRNG(1))
	e.RunFor(20 * time.Millisecond)
	if app.Rounds == 0 {
		t.Fatal("no rounds before reset")
	}
	app.ResetStats()
	if app.Rounds != 0 || app.RoundTime != 0 {
		t.Fatal("reset incomplete")
	}
	e.RunFor(20 * time.Millisecond)
	if app.Rounds == 0 {
		t.Fatal("no rounds after reset")
	}
}

func TestMeanRequestObserved(t *testing.T) {
	e, k := stack(t)
	app := Launch(k, Throttle(100*time.Microsecond, 0), sim.NewRNG(1))
	e.RunFor(20 * time.Millisecond)
	if got := app.MeanRequest(gpu.Compute); got != 100*time.Microsecond {
		t.Fatalf("observed mean = %v, want 100us", got)
	}
	if app.MeanRequest(gpu.Graphics) != 0 {
		t.Fatal("graphics mean should be 0 for a compute-only app")
	}
}

func TestInfiniteKernelHangsUnprotectedDevice(t *testing.T) {
	e, k := stack(t)
	victim := Launch(k, Throttle(50*time.Microsecond, 0), sim.NewRNG(1))
	inf := LaunchInfiniteKernel(k, 2)
	e.RunFor(200 * time.Millisecond)
	if !inf.Task.Alive {
		t.Fatal("nothing should kill the attacker without a scheduler")
	}
	// After the attack lands, the victim stops making progress.
	before := victim.Rounds
	e.RunFor(200 * time.Millisecond)
	if victim.Rounds != before {
		t.Fatalf("victim advanced %d rounds under a hung device", victim.Rounds-before)
	}
}

func TestChannelHogRespectsDeviceLimit(t *testing.T) {
	e, k := stack(t)
	_, res, done := LaunchChannelHog(k, 100)
	e.RunFor(100 * time.Millisecond)
	if !done.IsOpen() {
		t.Fatal("hog never finished")
	}
	if res.ContextsCreated != 48 {
		t.Fatalf("hog created %d contexts, want all 48", res.ContextsCreated)
	}
	if res.DeniedAt != gpu.ErrNoContexts {
		t.Fatalf("DeniedAt = %v", res.DeniedAt)
	}
}

func TestGreedyBatcherSpec(t *testing.T) {
	s := GreedyBatcher(10 * time.Millisecond)
	if s.GPUTime() != 10*time.Millisecond || s.Name != "GreedyBatcher" {
		t.Fatalf("spec = %+v", s)
	}
}

func TestPipelinedAppKeepsChannelBusy(t *testing.T) {
	e, k := stack(t)
	spec, _ := ByName("glxgears")
	app := Launch(k, spec, sim.NewRNG(1))
	e.RunFor(50 * time.Millisecond)
	// Frame time should be close to GPU time (pipelined, GPU-bound).
	avg := float64(app.AvgRound()) / float64(time.Microsecond)
	if avg > 1.2*spec.PaperRoundUS {
		t.Fatalf("frame time %.0fus, want near %.0f (pipelining broken?)", avg, spec.PaperRoundUS)
	}
}
