package workload

import (
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// App is a running application instance: a kernel task executing its
// spec's round loop forever (until killed or the simulation stops).
type App struct {
	Spec Spec
	Task *neon.Task

	// Rounds and RoundTime accumulate since the last ResetStats.
	Rounds    int64
	RoundTime sim.Duration

	// Observe enables Figure 2 instrumentation.
	Observe      bool
	InterArrival metrics.Log2Hist
	Service      metrics.Log2Hist
	perKind      map[gpu.Kind]*metrics.Mean

	client     *userlib.Client
	rng        *sim.RNG
	lastSubmit sim.Time
	setupErr   error
	ready      *sim.Gate
}

// Launch creates a task named after the spec and starts its round loop.
// The returned App accumulates statistics as the simulation advances.
func Launch(k *neon.Kernel, spec Spec, rng *sim.RNG) *App {
	a := &App{
		Spec:    spec,
		rng:     rng,
		perKind: make(map[gpu.Kind]*metrics.Mean),
		ready:   k.Engine().NewGate("ready-" + spec.Name),
	}
	a.Task = k.NewTask(spec.Name)
	a.Task.Go("main", func(p *sim.Proc) { a.run(p, k) })
	return a
}

// SetupError returns any context/channel allocation failure.
func (a *App) SetupError() error { return a.setupErr }

// Alive reports whether the app's task is still running.
func (a *App) Alive() bool { return a.Task.Alive }

// AvgRound returns the mean round time since the last ResetStats.
func (a *App) AvgRound() sim.Duration {
	if a.Rounds == 0 {
		return 0
	}
	return a.RoundTime / sim.Duration(a.Rounds)
}

// MeanRequest returns the observed mean service time on a channel kind.
func (a *App) MeanRequest(kind gpu.Kind) sim.Duration {
	if m := a.perKind[kind]; m != nil {
		return m.Duration()
	}
	return 0
}

// ResetStats clears round and request statistics (for warmup exclusion).
func (a *App) ResetStats() {
	a.Rounds = 0
	a.RoundTime = 0
	a.InterArrival = metrics.Log2Hist{}
	a.Service = metrics.Log2Hist{}
	a.perKind = make(map[gpu.Kind]*metrics.Mean)
}

func (a *App) run(p *sim.Proc, k *neon.Kernel) {
	kinds := a.Spec.Channels
	if len(kinds) == 0 {
		kinds = []gpu.Kind{gpu.Compute}
	}
	client, err := userlib.Open(p, k, a.Task, a.Spec.Name, kinds...)
	if err != nil {
		a.setupErr = err
		a.ready.Open()
		return
	}
	a.client = client
	a.ready.Open()

	reqs := a.Spec.Requests()
	for a.Task.Alive {
		start := p.Now()
		p.Sleep(a.Spec.CPU)

		var issued []*gpu.Request
		for _, rq := range reqs {
			a.noteSubmit(p.Now())
			switch {
			case rq.Trivial:
				// Mode/state-change requests: fire and forget; completion
				// is never checked by the library.
				client.Submit(p, rq.Kind, rq.Size)
			case a.Spec.Pipelined:
				issued = append(issued, client.Submit(p, rq.Kind, rq.Size))
			default:
				r := client.SubmitSync(p, rq.Kind, rq.Size)
				a.noteDone(r)
			}
		}
		// Frame fence for pipelined apps; for blocking apps this merely
		// retires any trailing trivial requests (already completed, since
		// channels process in order).
		client.Fence(p)
		for _, r := range issued {
			a.noteDone(r)
		}

		// Off-period for nonsaturating workloads: a fixed per-round think
		// time derived from the *standalone* active time, so contention
		// stretches the busy part of the cycle but not the idle part.
		if off := a.Spec.OffTime(); off > 0 {
			p.Sleep(off)
		}
		a.Rounds++
		a.RoundTime += p.Now().Sub(start)
	}
}

func (a *App) noteSubmit(now sim.Time) {
	if a.Observe && a.lastSubmit != 0 {
		a.InterArrival.Add(now.Sub(a.lastSubmit))
	}
	a.lastSubmit = now
}

func (a *App) noteDone(r *gpu.Request) {
	if r.Aborted {
		return
	}
	service := r.Completed.Sub(r.Started)
	if a.Observe {
		a.Service.Add(service)
	}
	m := a.perKind[r.Kind]
	if m == nil {
		m = &metrics.Mean{}
		a.perKind[r.Kind] = m
	}
	m.AddDuration(service)
}

// WaitReady blocks p until the app's setup syscalls have completed (or
// failed). Useful in tests that must order setup against assertions.
func (a *App) WaitReady(p *sim.Proc) { p.Wait(a.ready) }
