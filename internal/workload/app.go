package workload

import (
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// App is a running application instance: a kernel task executing its
// spec's round loop forever (until killed or the simulation stops).
type App struct {
	Spec Spec
	Task *neon.Task

	// Rounds and RoundTime accumulate since the last ResetStats.
	Rounds    int64
	RoundTime sim.Duration

	// Observe enables Figure 2 instrumentation.
	Observe      bool
	InterArrival metrics.Log2Hist
	Service      metrics.Log2Hist
	perKind      map[gpu.Kind]*metrics.Mean

	client     *userlib.Client
	rng        *sim.RNG
	lastSubmit sim.Time
	setupErr   error
	ready      *sim.Gate

	// Continuation-machine state (DESIGN.md §14): the round loop runs as
	// an engine-driven state machine so steady-state rounds cost no
	// goroutine park/unpark; the task's process survives as the slow
	// lane for submissions that must block (engaged channels, traps).
	eng        *sim.Engine
	dw         sim.Duration // cost.Model.DirectWrite, the doorbell latency
	reqs       []Req
	phase      int
	idx        int            // next request in the round's sequence
	noted      bool           // reqs[idx] already counted by noteSubmit
	pending    int            // fire-and-forget submissions not yet completed
	fencing    bool           // machine parked at the frame fence
	awaiting   *gpu.Request   // blocking request whose continuation resumes the machine
	slowFault  bool           // slow-lane handoff committed to the fault path (see toProc)
	retire     []*gpu.Request // completed fire-and-forget requests to recycle
	roundStart sim.Time
	slowGate   *sim.Gate
	stepFn     func()
	trivDone   func(*gpu.Request)
	pipeDone   func(*gpu.Request)
	blockDone  func(*gpu.Request)
}

// Round-machine phases.
const (
	phThink  = iota // CPU think timer in flight
	phSubmit        // submitting reqs[idx:]
	phFence         // waiting for pending to reach zero
	phOff           // off-period timer in flight
)

// Launch creates a task named after the spec and starts its round loop.
// The returned App accumulates statistics as the simulation advances.
func Launch(k *neon.Kernel, spec Spec, rng *sim.RNG) *App {
	a := &App{
		Spec:    spec,
		rng:     rng,
		perKind: make(map[gpu.Kind]*metrics.Mean),
		ready:   k.Engine().NewGate("ready-" + spec.Name),
	}
	a.Task = k.NewTask(spec.Name)
	a.Task.Go("main", func(p *sim.Proc) { a.run(p, k) })
	return a
}

// SetupError returns any context/channel allocation failure.
func (a *App) SetupError() error { return a.setupErr }

// Alive reports whether the app's task is still running.
func (a *App) Alive() bool { return a.Task.Alive }

// AvgRound returns the mean round time since the last ResetStats.
func (a *App) AvgRound() sim.Duration {
	if a.Rounds == 0 {
		return 0
	}
	return a.RoundTime / sim.Duration(a.Rounds)
}

// MeanRequest returns the observed mean service time on a channel kind.
func (a *App) MeanRequest(kind gpu.Kind) sim.Duration {
	if m := a.perKind[kind]; m != nil {
		return m.Duration()
	}
	return 0
}

// ResetStats clears round and request statistics (for warmup exclusion).
func (a *App) ResetStats() {
	a.Rounds = 0
	a.RoundTime = 0
	a.InterArrival = metrics.Log2Hist{}
	a.Service = metrics.Log2Hist{}
	a.perKind = make(map[gpu.Kind]*metrics.Mean)
}

// run opens the client from process context, then drives the spec's
// round loop as a continuation-passing state machine: submissions ride
// the asynchronous doorbell fast path (userlib.SubmitAsync) and
// completions re-enter the machine in engine context, so a steady-state
// round costs zero goroutine park/unpark. The process survives as the
// machine's slow lane — when a submission needs process context
// (engaged channel, trap mode) the machine signals slowGate and this
// process replays the blocking submission, with its fault and trap
// charges, exactly as the pre-machine loop did.
//
// The machine reproduces the blocking loop's event timeline precisely:
// a fire-and-forget submission chains the next step After(DirectWrite)
// — the clock the old blocking store's sleep advanced — and a
// completion continuation re-enters via After(0), the same queue
// position the old done-gate broadcast gave the woken process.
func (a *App) run(p *sim.Proc, k *neon.Kernel) {
	kinds := a.Spec.Channels
	if len(kinds) == 0 {
		kinds = []gpu.Kind{gpu.Compute}
	}
	client, err := userlib.Open(p, k, a.Task, a.Spec.Name, kinds...)
	if err != nil {
		a.setupErr = err
		a.ready.Open()
		return
	}
	a.client = client
	a.ready.Open()

	a.eng = p.Engine()
	a.dw = k.Costs().DirectWrite
	a.reqs = a.Spec.Requests()
	a.slowGate = a.eng.NewGate("slow-" + a.Spec.Name)
	a.stepFn = func() { a.step(nil) }
	a.trivDone = func(r *gpu.Request) { a.oneDone(r, false) }
	a.pipeDone = func(r *gpu.Request) { a.oneDone(r, true) }
	a.blockDone = func(*gpu.Request) { a.eng.After(0, a.stepFn) }

	a.beginRound(p.Now())
	for a.Task.Alive {
		p.Wait(a.slowGate)
		a.step(p)
	}
}

// beginRound starts a round: stamp the start, think for CPU, submit.
func (a *App) beginRound(now sim.Time) {
	a.roundStart = now
	a.phase = phThink
	a.eng.After(a.Spec.CPU, a.stepFn)
}

// endRound accounts the finished round and starts the next one.
func (a *App) endRound() {
	now := a.eng.Now()
	a.Rounds++
	a.RoundTime += now.Sub(a.roundStart)
	a.beginRound(now)
}

// oneDone is the completion continuation of fire-and-forget submissions
// (trivial and pipelined requests). It runs in engine context inside the
// request's finish; the request is retired later, from step context,
// because the device's completion observer still reads it after the
// hook returns.
func (a *App) oneDone(r *gpu.Request, observe bool) {
	a.pending--
	if r.Aborted {
		return
	}
	if observe {
		a.noteDone(r)
	}
	a.retire = append(a.retire, r)
	if a.fencing && a.pending == 0 {
		a.eng.After(0, a.stepFn)
	}
}

// step advances the round machine. With p == nil it runs in engine
// context and must not block: a submission that needs process context
// hands off to the slow lane via slowGate. With p != nil it runs on the
// slow lane and uses the blocking submission paths directly, exactly as
// the pre-machine loop did.
func (a *App) step(p *sim.Proc) {
	if !a.Task.Alive {
		return
	}
	if r := a.awaiting; r != nil {
		// A blocking request's continuation brought us here. The request
		// is recycled: completion processing finished before this After(0)
		// step ran, and nothing else holds the pointer (sampling watchers
		// pin, making Release a no-op).
		a.awaiting = nil
		a.noteDone(r)
		r.Release()
		a.idx++
		a.noted = false
	}
	for {
		switch a.phase {
		case phThink:
			a.phase = phSubmit
			a.idx = 0
			a.noted = false
		case phSubmit:
			if a.idx == len(a.reqs) {
				a.phase = phFence
				continue
			}
			rq := a.reqs[a.idx]
			if !a.noted {
				a.noteSubmit(a.eng.Now())
				a.noted = true
			}
			fault := a.slowFault
			a.slowFault = false
			switch {
			case rq.Trivial || a.Spec.Pipelined:
				// Fire and forget; completion feeds the fence counter (and,
				// for pipelined requests, the service stats).
				hook := a.trivDone
				if !rq.Trivial {
					hook = a.pipeDone
				}
				if !fault {
					if _, ok := a.client.SubmitAsync(a.eng, rq.Kind, rq.Size, hook); ok {
						a.pending++
						a.idx++
						a.noted = false
						if p == nil {
							a.eng.After(a.dw, a.stepFn)
							return
						}
						p.Sleep(a.dw)
						continue
					}
					if p == nil {
						a.toProc(rq.Kind)
						return
					}
				}
				if fault {
					a.pending++
					if a.client.SubmitEngaged(p, rq.Kind, rq.Size, hook) == nil {
						a.pending--
					}
				} else if r := a.client.SubmitDetached(p, rq.Kind, rq.Size); r != nil {
					a.pending++
					if r.IsDone() {
						hook(r)
					} else {
						r.OnDone = hook
					}
				}
				a.idx++
				a.noted = false
			default:
				if !fault {
					if r, ok := a.client.SubmitAsync(a.eng, rq.Kind, rq.Size, a.blockDone); ok {
						a.awaiting = r
						return
					}
					if p == nil {
						a.toProc(rq.Kind)
						return
					}
				}
				var r *gpu.Request
				if fault {
					if r = a.client.SubmitEngaged(p, rq.Kind, rq.Size, nil); r != nil {
						p.Wait(r.DoneGate())
					}
				} else {
					r = a.client.SubmitSync(p, rq.Kind, rq.Size)
				}
				if r != nil {
					a.noteDone(r)
					r.Release()
				}
				a.idx++
				a.noted = false
			}
		case phFence:
			// Frame fence: wait for every fire-and-forget completion of the
			// round, then recycle the retired requests.
			if a.pending > 0 {
				a.fencing = true
				return
			}
			a.fencing = false
			for i, r := range a.retire {
				r.Release()
				a.retire[i] = nil
			}
			a.retire = a.retire[:0]

			// Off-period for nonsaturating workloads: a fixed per-round
			// think time derived from the *standalone* active time, so
			// contention stretches the busy part of the cycle but not the
			// idle part.
			if off := a.Spec.OffTime(); off > 0 {
				a.phase = phOff
				a.eng.After(off, a.stepFn)
				return
			}
			a.endRound()
			return
		case phOff:
			a.endRound()
			return
		}
	}
}

// toProc hands the machine to the slow-lane process, which is always
// parked on slowGate whenever the machine runs in engine context. The
// handoff is an event hop, and the scheduler may flip the channel's
// engagement within the same instant — so the fault-or-direct decision
// is committed here, at the refusal instant, and the slow lane honors
// it (SubmitEngaged) instead of re-checking a page that may have moved.
func (a *App) toProc(kind gpu.Kind) {
	a.slowFault = a.client.Engaged(kind)
	a.slowGate.Signal()
}

func (a *App) noteSubmit(now sim.Time) {
	if a.Observe && a.lastSubmit != 0 {
		a.InterArrival.Add(now.Sub(a.lastSubmit))
	}
	a.lastSubmit = now
}

func (a *App) noteDone(r *gpu.Request) {
	if r.Aborted {
		return
	}
	service := r.Completed.Sub(r.Started)
	if a.Observe {
		a.Service.Add(service)
	}
	m := a.perKind[r.Kind]
	if m == nil {
		m = &metrics.Mean{}
		a.perKind[r.Kind] = m
	}
	m.AddDuration(service)
}

// WaitReady blocks p until the app's setup syscalls have completed (or
// failed). Useful in tests that must order setup against assertions.
func (a *App) WaitReady(p *sim.Proc) { p.Wait(a.ready) }
