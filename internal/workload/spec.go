// Package workload models the paper's evaluation applications: the
// fifteen AMD APP SDK OpenCL benchmarks, glxgears, the two combined
// compute/graphics applications, and the Throttle microbenchmark with its
// request-size and sleep-ratio knobs (Section 5.1, Table 1).
//
// Each application is a calibrated request mix: per round (one main-loop
// iteration or one rendered frame) it performs a little CPU work and
// submits a fixed sequence of GPU requests whose total and mean service
// times match Table 1's "µs per round" and "µs per request" columns. The
// mixes skew small — most requests are far smaller than the mean — to
// match the Figure 2 observation that the majority of requests are
// submitted back-to-back and serviced in microseconds.
package workload

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Req is one request template within an application's per-round mix.
type Req struct {
	Size  sim.Duration
	Kind  gpu.Kind
	Count int
	// Trivial marks mode/state-change requests that the library never
	// checks for completion (the paper notes these exist and are
	// intercepted like any other). They are excluded from per-request
	// service statistics — their completion is unobservable — but they
	// are real submissions, so engaged schedulers pay for them.
	Trivial bool
}

// Spec describes an application.
type Spec struct {
	Name string
	Area string

	// CPU is per-round host-side work.
	CPU sim.Duration
	// Mix is the per-round request sequence (expanded by Count, in order).
	Mix []Req
	// Pipelined applications submit the whole round non-blocking and wait
	// on a frame fence (graphics style); otherwise every request is a
	// blocking round trip (OpenCL style).
	Pipelined bool
	// Channels lists the channel kinds to open. Defaults to {Compute}.
	Channels []gpu.Kind
	// SleepRatio is the fraction of each cycle spent off the GPU
	// (Section 5.4's nonsaturating workloads). 0 means saturating.
	SleepRatio float64

	// PaperRoundUS and PaperReqUS are Table 1's reference values, for
	// calibration tests and reports.
	PaperRoundUS float64
	PaperReqUS   float64
	// PaperReq2US is the second per-request figure for combined
	// compute/graphics applications (graphics channel).
	PaperReq2US float64
}

// Requests returns the expanded per-round request sequence.
func (s Spec) Requests() []Req {
	var out []Req
	for _, r := range s.Mix {
		n := r.Count
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, Req{Size: r.Size, Kind: r.Kind, Trivial: r.Trivial})
		}
	}
	return out
}

// GPUTime returns the per-round device time of the mix.
func (s Spec) GPUTime() sim.Duration {
	var sum sim.Duration
	for _, r := range s.Requests() {
		sum += r.Size
	}
	return sum
}

// RequestCount returns the number of requests per round.
func (s Spec) RequestCount() int { return len(s.Requests()) }

// ActiveTime returns the standalone per-round busy time (CPU + GPU).
func (s Spec) ActiveTime() sim.Duration { return s.CPU + s.GPUTime() }

// OffTime returns the fixed per-round sleep implied by SleepRatio: the
// think time that makes the standalone duty cycle equal 1 - SleepRatio.
func (s Spec) OffTime() sim.Duration {
	if s.SleepRatio <= 0 || s.SleepRatio >= 1 {
		return 0
	}
	return sim.Duration(float64(s.ActiveTime()) * s.SleepRatio / (1 - s.SleepRatio))
}

// MeanRequest returns the mean size of the mix's checked (non-trivial)
// requests, the quantity Table 1 reports.
func (s Spec) MeanRequest() sim.Duration {
	var sum sim.Duration
	n := 0
	for _, r := range s.Requests() {
		if r.Trivial {
			continue
		}
		sum += r.Size
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}

const us = time.Microsecond

func c(size sim.Duration, n int) Req { return Req{Size: size, Kind: gpu.Compute, Count: n} }
func g(size sim.Duration, n int) Req { return Req{Size: size, Kind: gpu.Graphics, Count: n} }
func triv(n int) Req                 { return Req{Size: 2 * us, Kind: gpu.Compute, Count: n, Trivial: true} }
func spec(name, area string, cpu sim.Duration, round, req float64, mix ...Req) Spec {
	return Spec{
		Name: name, Area: area, CPU: cpu, Mix: mix,
		PaperRoundUS: round, PaperReqUS: req,
	}
}

// Table1 returns the full benchmark suite of the paper's Table 1.
func Table1() []Spec {
	specs := []Spec{
		spec("BinarySearch", "Searching", 47*us, 161, 57, c(34*us, 1), c(80*us, 1)),
		spec("BitonicSort", "Sorting", 212*us, 1292, 202, c(8*us, 1), c(100*us, 1), c(250*us, 1), c(300*us, 1), c(352*us, 1), triv(35)),
		spec("DCT", "Compression", 65*us, 197, 66, c(32*us, 1), c(100*us, 1)),
		spec("EigenValue", "Algebra", 51*us, 163, 56, c(22*us, 1), c(90*us, 1)),
		spec("FastWalshTransform", "Encryption", 60*us, 310, 119, c(38*us, 1), c(200*us, 1), triv(6)),
		spec("FFT", "Signal Processing", 76*us, 268, 48, c(8*us, 1), c(20*us, 1), c(64*us, 1), c(100*us, 1)),
		spec("FloydWarshall", "Graph Analysis", 311*us, 5631, 141, c(90*us, 18), c(190*us, 18), triv(140)),
		spec("LUDecomposition", "Algebra", 258*us, 1490, 308, c(108*us, 1), c(200*us, 1), c(424*us, 1), c(500*us, 1)),
		spec("MatrixMulDouble", "Algebra", 525*us, 12628, 637, c(437*us, 9), c(817*us, 10)),
		spec("MatrixMultiplication", "Algebra", 300*us, 3788, 436, c(236*us, 4), c(636*us, 4)),
		spec("MatrixTranspose", "Algebra", 17*us, 1153, 284, c(84*us, 1), c(200*us, 1), c(384*us, 1), c(468*us, 1)),
		spec("PrefixSum", "Data Processing", 47*us, 157, 55, c(20*us, 1), c(90*us, 1)),
		spec("RadixSort", "Sorting", 522*us, 8082, 210, c(110*us, 18), c(310*us, 18)),
		spec("Reduction", "Data Processing", 19*us, 1147, 282, c(82*us, 1), c(200*us, 1), c(382*us, 1), c(464*us, 1)),
		spec("ScanLargeArrays", "Data Processing", 53*us, 197, 72, c(44*us, 1), c(100*us, 1)),
	}
	gears := spec("glxgears", "Graphics", 0, 72, 37, g(6*us, 1), g(68*us, 1))
	gears.Pipelined = true
	gears.Channels = []gpu.Kind{gpu.Graphics}
	specs = append(specs, gears)

	particles := Spec{
		Name: "oclParticles", Area: "Physics/Graphics",
		CPU:          170 * us,
		Mix:          []Req{c(12*us, 2), g(302*us, 6)},
		Pipelined:    true,
		Channels:     []gpu.Kind{gpu.Compute, gpu.Graphics},
		PaperRoundUS: 2006, PaperReqUS: 12, PaperReq2US: 302,
	}
	specs = append(specs, particles)

	texture := Spec{
		Name: "simpleTexture3D", Area: "Texturing/Graphics",
		CPU:          330 * us,
		Mix:          []Req{c(108*us, 4), g(171*us, 10)},
		Pipelined:    true,
		Channels:     []gpu.Kind{gpu.Compute, gpu.Graphics},
		PaperRoundUS: 2472, PaperReqUS: 108, PaperReq2US: 171,
	}
	specs = append(specs, texture)
	return specs
}

// ByName returns the Table 1 spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Throttle returns the controlled microbenchmark: repetitive blocking
// compute requests of the given size, with an optional off (sleep) ratio
// for nonsaturating scenarios.
func Throttle(size sim.Duration, sleepRatio float64) Spec {
	return Spec{
		Name:         "Throttle",
		Area:         "Microbenchmark",
		CPU:          2 * us,
		Mix:          []Req{c(size, 1)},
		SleepRatio:   sleepRatio,
		PaperRoundUS: float64(size) / float64(us),
		PaperReqUS:   float64(size) / float64(us),
	}
}
