package workload

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// LaunchInfiniteKernel starts the paper's denial-of-service adversary: a
// task that behaves normally for warmup rounds, then submits a compute
// request that never terminates. Under direct access this hangs the
// device; under the protected schedulers the kernel must identify and
// kill the task.
func LaunchInfiniteKernel(k *neon.Kernel, warmupRounds int) *App {
	spec := Spec{Name: "InfiniteKernel", Area: "Adversarial", CPU: 2 * time.Microsecond,
		Mix: []Req{{Size: 50 * time.Microsecond, Kind: gpu.Compute, Count: 1}}}
	a := &App{Spec: spec, ready: k.Engine().NewGate("ready-inf")}
	a.Task = k.NewTask(spec.Name)
	a.Task.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, k, a.Task, spec.Name, gpu.Compute)
		if err != nil {
			a.setupErr = err
			a.ready.Open()
			return
		}
		a.ready.Open()
		for i := 0; i < warmupRounds && a.Task.Alive; i++ {
			start := p.Now()
			client.SubmitSync(p, gpu.Compute, 50*time.Microsecond)
			a.Rounds++
			a.RoundTime += p.Now().Sub(start)
		}
		// The attack: an infinite loop on the device.
		client.Submit(p, gpu.Compute, gpu.Forever)
		// Keep "working" so the task looks busy.
		for a.Task.Alive {
			p.Sleep(time.Millisecond)
		}
	})
	return a
}

// HogResult reports what a channel-hog adversary managed to grab.
type HogResult struct {
	ContextsCreated int
	DeniedAt        error // the error that finally stopped it, if any
}

// LaunchChannelHog starts the Section 6.3 adversary: it greedily creates
// contexts (each with a compute and a DMA channel, as the paper observed)
// until the device or the OS policy refuses. The result gate opens when
// it is done grabbing.
func LaunchChannelHog(k *neon.Kernel, limit int) (*neon.Task, *HogResult, *sim.Gate) {
	t := k.NewTask("ChannelHog")
	res := &HogResult{}
	done := k.Engine().NewGate("hog-done")
	t.Go("main", func(p *sim.Proc) {
		for i := 0; i < limit; i++ {
			ctx, err := k.CreateContext(p, t, "hog")
			if err != nil {
				res.DeniedAt = err
				break
			}
			if _, err := k.CreateChannel(p, t, ctx, gpu.Compute); err != nil {
				res.DeniedAt = err
				break
			}
			if _, err := k.CreateChannel(p, t, ctx, gpu.DMA); err != nil {
				res.DeniedAt = err
				break
			}
			res.ContextsCreated++
		}
		done.Open()
		for t.Alive {
			p.Sleep(time.Millisecond)
		}
	})
	return t, res, done
}

// GreedyBatcher returns a spec for the paper's introduction adversary: an
// application that batches its work into very large requests to hog a
// work-conserving device.
func GreedyBatcher(batch sim.Duration) Spec {
	s := Throttle(batch, 0)
	s.Name = "GreedyBatcher"
	s.Area = "Adversarial"
	return s
}
