package workload

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// LaunchInfiniteKernel starts the paper's denial-of-service adversary: a
// task that behaves normally for warmup rounds, then submits a compute
// request that never terminates. Under direct access this hangs the
// device; under the protected schedulers the kernel must identify and
// kill the task.
func LaunchInfiniteKernel(k *neon.Kernel, warmupRounds int) *App {
	spec := Spec{Name: "InfiniteKernel", Area: "Adversarial", CPU: 2 * time.Microsecond,
		Mix: []Req{{Size: 50 * time.Microsecond, Kind: gpu.Compute, Count: 1}}}
	a := &App{Spec: spec, ready: k.Engine().NewGate("ready-inf")}
	a.Task = k.NewTask(spec.Name)
	a.Task.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, k, a.Task, spec.Name, gpu.Compute)
		if err != nil {
			a.setupErr = err
			a.ready.Open()
			return
		}
		a.ready.Open()

		// Warmup rounds run as a continuation machine on the async
		// submission path, with this process as the slow lane — the same
		// shape as App.step, reduced to one blocking request per round.
		eng := p.Engine()
		slow := eng.NewGate("slow-inf")
		var (
			rounds int
			start  sim.Time
			fault  bool
			attack bool
			submit func(*sim.Proc)
			done   func(*gpu.Request)
		)
		account := func(p *sim.Proc) {
			a.Rounds++
			a.RoundTime += eng.Now().Sub(start)
			rounds++
			if rounds < warmupRounds && a.Task.Alive {
				submit(p)
				return
			}
			attack = true
			slow.Signal()
		}
		done = func(r *gpu.Request) {
			if r.Aborted {
				return
			}
			eng.After(0, func() {
				r.Release()
				account(nil)
			})
		}
		submit = func(p *sim.Proc) {
			start = eng.Now()
			committed := fault
			fault = false
			if !committed {
				if _, ok := client.SubmitAsync(eng, gpu.Compute, 50*time.Microsecond, done); ok {
					return
				}
				if p == nil {
					fault = client.Engaged(gpu.Compute)
					slow.Signal()
					return
				}
			}
			if committed {
				if r := client.SubmitEngaged(p, gpu.Compute, 50*time.Microsecond, nil); r != nil {
					p.Wait(r.DoneGate())
					r.Release()
				}
			} else {
				client.SubmitSync(p, gpu.Compute, 50*time.Microsecond)
			}
			account(p)
		}
		if warmupRounds > 0 {
			submit(p)
		} else {
			attack = true
		}
		for a.Task.Alive && !attack {
			p.Wait(slow)
			if !attack {
				submit(p)
			}
		}
		if !a.Task.Alive {
			return
		}

		// The attack: an infinite loop on the device.
		client.Submit(p, gpu.Compute, gpu.Forever)
		// Keep "working" so the task looks busy.
		for a.Task.Alive {
			p.Sleep(time.Millisecond)
		}
	})
	return a
}

// HogResult reports what a channel-hog adversary managed to grab.
type HogResult struct {
	ContextsCreated int
	DeniedAt        error // the error that finally stopped it, if any
}

// LaunchChannelHog starts the Section 6.3 adversary: it greedily creates
// contexts (each with a compute and a DMA channel, as the paper observed)
// until the device or the OS policy refuses. The result gate opens when
// it is done grabbing.
func LaunchChannelHog(k *neon.Kernel, limit int) (*neon.Task, *HogResult, *sim.Gate) {
	t := k.NewTask("ChannelHog")
	res := &HogResult{}
	done := k.Engine().NewGate("hog-done")
	t.Go("main", func(p *sim.Proc) {
		for i := 0; i < limit; i++ {
			ctx, err := k.CreateContext(p, t, "hog")
			if err != nil {
				res.DeniedAt = err
				break
			}
			if _, err := k.CreateChannel(p, t, ctx, gpu.Compute); err != nil {
				res.DeniedAt = err
				break
			}
			if _, err := k.CreateChannel(p, t, ctx, gpu.DMA); err != nil {
				res.DeniedAt = err
				break
			}
			res.ContextsCreated++
		}
		done.Open()
		for t.Alive {
			p.Sleep(time.Millisecond)
		}
	})
	return t, res, done
}

// GreedyBatcher returns a spec for the paper's introduction adversary: an
// application that batches its work into very large requests to hog a
// work-conserving device.
func GreedyBatcher(batch sim.Duration) Spec {
	s := Throttle(batch, 0)
	s.Name = "GreedyBatcher"
	s.Area = "Adversarial"
	return s
}
