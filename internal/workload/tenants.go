package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Tier is a tenant's service-level contract class. It drives the
// front-door admission thresholds (internal/traffic): under overload
// best-effort traffic is shed first and premium last. It is orthogonal
// to Weight, which sets the tenant's share of device time once
// admitted; a production contract typically raises both together.
type Tier string

// The service tiers, from most to least protected.
const (
	// TierPremium is shed last: its admission bound sits above the
	// standard tier's, so premium arrivals are still accepted while
	// standard traffic is already being refused.
	TierPremium Tier = "premium"
	// TierStandard is the default contract and the reference bound —
	// the tier every pre-tier tenant implicitly held.
	TierStandard Tier = "standard"
	// TierBestEffort is shed first: batch scrapers and background fill
	// whose arrivals are refused as soon as the fleet begins to queue.
	TierBestEffort Tier = "best-effort"
)

// Tiers lists the service tiers in protection order (most protected
// first).
func Tiers() []Tier { return []Tier{TierPremium, TierStandard, TierBestEffort} }

// ParseTier resolves a tier name (as typed on a command line); the
// empty string is the standard tier. Unknown names are an error listing
// the valid tiers.
func ParseTier(name string) (Tier, error) {
	switch Tier(name) {
	case "", TierStandard:
		return TierStandard, nil
	case TierPremium:
		return TierPremium, nil
	case TierBestEffort:
		return TierBestEffort, nil
	default:
		return "", fmt.Errorf("workload: unknown tier %q (valid: premium, standard, best-effort)", name)
	}
}

// Normalize maps the zero value to the standard tier, so specs that
// never mention tiers keep their pre-tier behavior.
func (t Tier) Normalize() Tier {
	if t == "" {
		return TierStandard
	}
	return t
}

// TenantSpec describes one fleet tenant: a request mix (Spec) plus the
// locality state the placement layer manages and the contract terms
// (weight, tier) the sharing layers enforce.
type TenantSpec struct {
	Spec

	// WorkingSet is the device time needed to rebuild the tenant's warm
	// state (data migration plus re-initialization kernels) when a
	// round is placed on a device other than the previous round's. Zero
	// means the tenant is stateless and migrates for free.
	WorkingSet sim.Duration

	// Jitter is the per-round CPU-time jitter fraction. Identical
	// tenants with zero jitter run in deterministic lockstep, which no
	// real tenant population does — and which would let stateless
	// round-robin placement accidentally behave as if it were sticky.
	Jitter float64

	// Weight is the tenant's fair-share weight: under contention the
	// fair-queueing schedulers grant device time in proportion to it.
	// Zero means the default weight of 1 (equal shares). Negative or
	// non-finite weights are invalid — Validate rejects them rather than
	// letting the ledgers silently clamp them to 1.
	Weight float64

	// Tier is the tenant's admission service tier; the zero value is
	// TierStandard.
	Tier Tier

	// Org is the organization (sibling group) the tenant belongs to in
	// hierarchical share policies: org weights split the fleet first,
	// then tenant weights split within each org. Empty means the tenant
	// stands alone at the top level (its own implicit weight-1 org), so
	// flat-weight populations are unchanged.
	Org string
}

// ShareWeight returns the tenant's effective weight (1 when unset).
func (s TenantSpec) ShareWeight() float64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// Validate rejects malformed contract terms before any ledger sees
// them. Weight zero is the documented "unset → 1" default and stays
// legal; negative or non-finite weights are the specs core.PerWeight
// used to clamp to 1 silently — under hierarchical composition that
// clamp would quietly rewrite an org's whole subtree, so they are now
// an error at spec time. Unknown tiers are rejected the same way.
func (s TenantSpec) Validate() error {
	if s.Weight < 0 || math.IsNaN(s.Weight) || math.IsInf(s.Weight, 0) {
		return fmt.Errorf("workload: tenant %q has invalid weight %v (must be finite and non-negative; 0 means default 1)",
			s.Name, s.Weight)
	}
	if _, err := ParseTier(string(s.Tier)); err != nil {
		return fmt.Errorf("workload: tenant %q: %w", s.Name, err)
	}
	return nil
}

// OpenLoopTenant returns a TenantSpec shaped for the open-loop serving
// layer (internal/traffic): requests arrive from an arrival process
// rather than a round loop, so the spec carries no CPU think time and a
// single-request mix of the given service size. WorkingSet is the usual
// warm-state reconstruction cost a migrated request pays first.
func OpenLoopTenant(name string, size, workingSet sim.Duration) TenantSpec {
	return TenantSpec{
		Spec: Spec{
			Name:         name,
			Area:         "Serving",
			Mix:          []Req{{Size: size, Kind: gpu.Compute}},
			PaperRoundUS: float64(size) / float64(time.Microsecond),
			PaperReqUS:   float64(size) / float64(time.Microsecond),
		},
		WorkingSet: workingSet,
	}
}

// TenantsPerDevice is how many tenants FleetPopulation launches per
// device — enough that every device stays saturated even under placement
// skew.
const TenantsPerDevice = 3

// FleetMixes lists the tenant mixes FleetPopulation understands, in
// presentation order.
func FleetMixes() []string { return []string{"uniform", "mixed"} }

// FleetPopulation returns a tenant population sized to saturate the
// given number of devices (TenantsPerDevice each, so 2–8 devices get
// 6–24 tenants):
//
//   - "uniform": identical saturating medium-request tenants with a
//     working set several rounds large — the cleanest fairness
//     measurement, and the mix where placement locality matters most.
//   - "mixed": per device, one heavy large-request tenant, one light
//     small-request tenant, and one bursty tenant that sleeps half of
//     every cycle, with working sets scaled to their footprints.
//
// Unknown mixes panic: the mix set is a fixed part of the experiment
// grid, not user input.
func FleetPopulation(devices int, mix string) []TenantSpec {
	const us = time.Microsecond
	var out []TenantSpec
	switch mix {
	case "uniform":
		for i := 0; i < devices*TenantsPerDevice; i++ {
			s := Throttle(300*us, 0)
			s.Name = fmt.Sprintf("uni-%02d", i)
			out = append(out, TenantSpec{Spec: s, WorkingSet: 1500 * us, Jitter: 0.2})
		}
	case "mixed":
		for i := 0; i < devices; i++ {
			heavy := Throttle(850*us, 0)
			heavy.Name = fmt.Sprintf("heavy-%02d", i)
			out = append(out, TenantSpec{Spec: heavy, WorkingSet: 2000 * us, Jitter: 0.2})

			light := Throttle(80*us, 0)
			light.Name = fmt.Sprintf("light-%02d", i)
			out = append(out, TenantSpec{Spec: light, WorkingSet: 600 * us, Jitter: 0.2})

			bursty := Throttle(200*us, 0.5)
			bursty.Name = fmt.Sprintf("bursty-%02d", i)
			out = append(out, TenantSpec{Spec: bursty, WorkingSet: 400 * us, Jitter: 0.2})
		}
	default:
		panic(fmt.Sprintf("workload: unknown fleet mix %q (valid: uniform, mixed)", mix))
	}
	return out
}
