package core

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// TestDFQMultiChannelSampleTarget: combined compute/graphics tasks get
// the larger sampling request target (96 vs 32), per Section 5.2.
func TestDFQMultiChannelSampleTarget(t *testing.T) {
	cfg := DefaultDFQConfig()
	sched := NewDisengagedFairQueueing(cfg)
	h := newHarness(t, sched)

	multi := h.k.NewTask("multi")
	multi.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, h.k, multi, "multi", gpu.Compute, gpu.Graphics)
		if err != nil {
			return
		}
		for multi.Alive {
			client.Submit(p, gpu.Compute, 5*time.Microsecond)
			client.Submit(p, gpu.Graphics, 5*time.Microsecond)
			client.Fence(p)
		}
	})
	h.eng.RunFor(300 * time.Millisecond)
	s := sched.st[multi]
	if s == nil {
		t.Fatal("no scheduler state for the task")
	}
	// With 5us requests a 5ms window could hold far more than 96; the
	// early-stop target must have been the multi-channel one.
	if s.sampledRequests <= cfg.SampleRequests {
		t.Fatalf("sampled %d requests; multi-channel tasks should use the %d target",
			s.sampledRequests, cfg.SampleRequestsMulti)
	}
	if s.sampledRequests > cfg.SampleRequestsMulti {
		t.Fatalf("sampled %d > %d", s.sampledRequests, cfg.SampleRequestsMulti)
	}
}

// TestDFQBarrierBlocksEveryone: during a barrier no task may submit.
func TestDFQBarrierBlocksEveryone(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	a := h.startWorker("a", 100*time.Microsecond)
	b := h.startWorker("b", 100*time.Microsecond)
	violations := 0
	var probe func()
	probe = func() {
		if sched.mode == dfqBarrier {
			for _, w := range []*worker{a, b} {
				for _, cs := range w.task.Channels() {
					if cs.Ch.Reg.Present() {
						violations++
					}
				}
			}
		}
		h.eng.After(100*time.Microsecond, probe)
	}
	h.eng.After(0, probe)
	h.eng.RunFor(300 * time.Millisecond)
	if violations != 0 {
		t.Fatalf("%d unprotected channels observed during barriers", violations)
	}
}

// TestDFQSamplingExclusive: while task A is being sampled, task B's
// channels stay protected and B's submissions block.
func TestDFQSamplingExclusive(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	a := h.startWorker("a", 100*time.Microsecond)
	b := h.startWorker("b", 100*time.Microsecond)
	violations := 0
	var probe func()
	probe = func() {
		if sched.mode == dfqSampling && sched.sampled != nil {
			var other *neon.Task
			if sched.sampled == a.task {
				other = b.task
			} else if sched.sampled == b.task {
				other = a.task
			}
			if other != nil && other.PendingRequests() > 0 {
				violations++
			}
		}
		h.eng.After(50*time.Microsecond, probe)
	}
	h.eng.After(0, probe)
	h.eng.RunFor(300 * time.Millisecond)
	if violations != 0 {
		t.Fatalf("%d submissions from non-sampled tasks during sampling", violations)
	}
}

// TestDFQDeniedTaskBlockedDuringFreeRun: denial is enforced by
// protection, not cooperation.
func TestDFQDeniedTaskBlockedDuringFreeRun(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	small := h.startWorker("small", 20*time.Microsecond)
	big := h.startWorker("big", 1700*time.Microsecond)
	violations := 0
	var probe func()
	probe = func() {
		if sched.mode == dfqFreeRun {
			for _, w := range []*worker{small, big} {
				if sched.Denied(w.task) {
					for _, cs := range w.task.Channels() {
						if cs.Ch.Reg.Present() {
							violations++
						}
					}
				}
			}
		}
		h.eng.After(200*time.Microsecond, probe)
	}
	h.eng.After(0, probe)
	h.eng.RunFor(500 * time.Millisecond)
	if sched.Denials == 0 {
		t.Skip("no denials observed in this window")
	}
	if violations != 0 {
		t.Fatalf("%d denied-but-unprotected channel observations", violations)
	}
}
