package core

import (
	"repro/internal/sim"
)

// Work is the normalized accounting unit of every fair-queueing ledger
// in this package: observed device time scaled by the executing
// device's class speed factor, i.e. nanoseconds of *reference-class*
// device time. On a heterogeneous fleet a second of consumer-card time
// and a second of K20 time are different amounts of service; charging
// virtual time in Work makes per-tenant ledgers comparable across
// classes, so fleet-wide reconciliation (FleetVT) and the lead-bound
// fairness invariant are meaningful on mixed fleets — the
// heterogeneity-normalized effective-throughput framing of Gavel.
//
// On a single reference-class device Work coincides numerically with
// sim.Duration, which is why the single-device experiments reproduce
// the paper unchanged.
type Work int64

// WorkFor converts observed device time on a device of the given class
// speed into normalized work. A zero speed is treated as the reference
// factor so unstarted schedulers stay well-defined.
func WorkFor(d sim.Duration, speed float64) Work {
	if speed == 1 || speed == 0 {
		return Work(d)
	}
	return Work(float64(d) * speed)
}

// PerWeight converts a service charge into the weighted virtual-time
// advance a fair-queueing ledger records for it: charge divided by the
// consuming principal's fair-share weight. A weight-4 principal's
// virtual time advances at a quarter of the rate its service accrues,
// so under contention it is denied a quarter as often and receives four
// times the share — weighted fair queueing in the MQFQ/Gavel sense. The
// default weight 1 (also any non-positive weight) is the identity, so
// unweighted ledgers are bit-for-bit unchanged.
func PerWeight(w Work, weight float64) Work {
	if weight == 1 || weight <= 0 {
		return w
	}
	return Work(float64(w) / weight)
}

// Duration reports the work as reference-class device time.
func (w Work) Duration() sim.Duration { return sim.Duration(w) }

func (w Work) String() string { return sim.Duration(w).String() }
