package core

import (
	"time"

	"repro/internal/neon"
	"repro/internal/sim"
)

// DFQConfig parameterizes Disengaged Fair Queueing (paper Section 5.2
// defaults).
type DFQConfig struct {
	// SamplePeriod caps each task's sampling run.
	SamplePeriod sim.Duration
	// SampleRequests ends a sampling run early once this many requests
	// have been observed.
	SampleRequests int
	// SampleRequestsMulti is the request target for tasks with multiple
	// channels (combined compute/graphics applications).
	SampleRequestsMulti int
	// FreeRunMultiplier scales the disengaged free-run period relative to
	// the engagement episode.
	FreeRunMultiplier int
	// DefaultEstimate seeds a task's request-size estimate before its
	// first successful sampling run.
	DefaultEstimate sim.Duration
	// Fleet, when non-nil, reconciles this device's virtual times with a
	// fleet-wide board at every engagement episode (see FleetVT). Single-
	// device operation leaves it nil and denial stays purely local.
	Fleet FleetVT
	// RawCharges disables class normalization: virtual time is charged
	// in observed device time regardless of the device's class speed —
	// the pre-heterogeneity accounting, kept as the ablation the hetero
	// experiment compares against. On a mixed fleet it systematically
	// overcharges (and thus starves) tenants stuck on slow devices.
	RawCharges bool
}

// PrincipalID is a fleet-wide principal handle: the stable uint32 slot
// the exchange assigns to a task name the first time it is seen.
// Schedulers resolve a name once (FleetVT.Principal) and report every
// subsequent episode through the handle, so the steady-state exchange
// moves no strings and allocates nothing.
type PrincipalID uint32

// EpisodeEntry is one principal's row in an episode batch. The reporter
// fills Principal/Charge/Active/Marked; the exchange writes Lead back
// in place.
type EpisodeEntry struct {
	// Principal is the handle from FleetVT.Principal.
	Principal PrincipalID
	// Charge is the weighted normalized work charged this episode (zero
	// for active-but-denied or idle principals).
	Charge Work
	// Active reports whether the principal was backlogged at the
	// barrier. Only meaningful when Marked is set.
	Active bool
	// Marked selects whether this entry updates the principal's
	// activity state on the reporting device. Charge-only entries
	// (Marked false) fold work without touching activity.
	Marked bool
	// Lead is filled by the exchange: the principal's fleet-wide
	// virtual-time lead over the system virtual time after the episode.
	Lead Work
}

// FleetVT is the fleet-wide virtual-time exchange of a multi-device
// deployment. A per-device DisengagedFairQueueing instance reports, at
// the end of each engagement episode, one batch entry per principal
// (keyed by the uint32 handle from Principal — task names, the identity
// stable across devices, are interned once): the estimated usage it
// charged and whether the principal was active at the barrier. The
// exchange folds the charges into fleet-wide virtual times, advances
// the fleet-wide system virtual time, and writes each entry's lead over
// it back into the batch. The scheduler denies the next free run to
// principals whose lead reaches its free-run horizon — so a tenant
// consuming on several devices at once is throttled everywhere, not
// only where it happens to be sampled.
//
// The batch is a reusable slice owned by the reporter: the exchange
// must not retain it past the call. Duplicate handles in one batch are
// legal (charges sum, activity ORs across marked entries).
//
// All quantities are in weighted normalized Work, not device time: each
// device scales its charges by its own class speed and divides by the
// consuming task's fair-share weight before reporting, so the board
// compares like with like even when the fleet mixes generations and
// tenants hold unequal contractual shares.
type FleetVT interface {
	// Principal interns a task name, returning its stable handle.
	Principal(name string) PrincipalID
	// ReconcileEpisodeBatch folds one device episode into the fleet
	// virtual times and writes each entry's Lead in place.
	ReconcileEpisodeBatch(device string, batch []EpisodeEntry)
}

// DefaultDFQConfig returns the paper's configuration.
func DefaultDFQConfig() DFQConfig {
	return DFQConfig{
		SamplePeriod:        5 * time.Millisecond,
		SampleRequests:      32,
		SampleRequestsMulti: 96,
		FreeRunMultiplier:   5,
		DefaultEstimate:     100 * time.Microsecond,
	}
}

// dfqMode is the phase of the engagement/free-run cycle.
type dfqMode int

const (
	dfqBarrier dfqMode = iota
	dfqSampling
	dfqFreeRun
)

// dfqTask is the per-task scheduler state. The task's virtual time —
// its estimated cumulative usage in normalized work units divided by
// its fair-share weight (probabilistically updated, per the paper) —
// lives in the scheduler's DFQLedger, addressed by flow.
type dfqTask struct {
	// flow is the task's slot in the virtual-time ledger.
	flow FlowID
	// est is the estimated mean request service time from the most recent
	// successful sampling run.
	est sim.Duration
	// lastCompleted is the reference-counter fingerprint at the previous
	// barrier, for per-interval completion deltas.
	lastCompleted int64
	// activeAtBarrier records whether the task had work at barrier entry.
	activeAtBarrier bool
	// sampledRequests is the last sampling run's observation count.
	sampledRequests int
	// denied marks the task as excluded from the next free run.
	denied bool
	// pid is the fleet principal handle for the task's name, interned on
	// first fleet report (valid only when pidSet).
	pid    PrincipalID
	pidSet bool
	// charge is this episode's ledger charge, kept per task so the fleet
	// report needs no per-episode map.
	charge Work
}

// DisengagedFairQueueing is the paper's Section 3.3 scheduler: a fair
// queueing variant that avoids per-request interception. Requests run
// with direct device access during long free-run periods; fairness is
// maintained by periodic engagement episodes — a submission barrier, a
// drain, a short exclusive sampling run per active task to estimate mean
// request size, then virtual-time maintenance that may deny fast-running
// tasks access to the next free run.
//
// The usage estimator deliberately reproduces the prototype's assumption
// of round-robin device arbitration: an interval's busy time is
// attributed to active tasks in proportion to their mean sampled request
// sizes. When the device does not serve channels uniformly (graphics
// penalty), or when a task keeps only some of its channels busy, the
// estimate is wrong in exactly the ways Section 5.3 reports. See
// OracleFairQueueing for the vendor-statistics alternative.
type DisengagedFairQueueing struct {
	cfg DFQConfig

	k         *neon.Kernel
	mode      dfqMode
	sampled   *neon.Task
	st        map[*neon.Task]*dfqTask
	ledger    DFQLedger
	admitGate *sim.Gate
	speed     float64 // device class speed factor, set at Start

	// Cycles counts completed engagement episodes, for tests.
	Cycles int64
	// Denials counts task-intervals denied, for tests.
	Denials int64

	// Lead-bound instrumentation (see LeadBound): the largest
	// virtual-time lead any backlogged task has held over the system
	// virtual time, and the count of episodes where a lead exceeded the
	// bound — zero unless fairness is broken. All in normalized work.
	MaxLead        Work
	LeadViolations int64
	maxFreeRun     Work
	maxWindow      Work

	// batch and batchIdx are the reusable fleet episode report: one
	// entry per distinct principal, rebuilt in place every episode so
	// the steady-state exchange allocates nothing.
	batch    []EpisodeEntry
	batchIdx map[PrincipalID]int32
}

// NewDisengagedFairQueueing returns the scheduler with the given
// configuration; zero fields are replaced by defaults. Virtual-time
// state lives in a DFQLedger of the DefaultDFQLedger kind.
func NewDisengagedFairQueueing(cfg DFQConfig) *DisengagedFairQueueing {
	return NewDisengagedFairQueueingWithLedger(cfg, DefaultDFQLedger)
}

// NewDisengagedFairQueueingWithLedger is the constructor seam the
// differential tests use: the same scheduler on an explicit ledger
// kind, so the indexed and linear ledgers can be compared end to end.
func NewDisengagedFairQueueingWithLedger(cfg DFQConfig, kind DFQLedgerKind) *DisengagedFairQueueing {
	def := DefaultDFQConfig()
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = def.SamplePeriod
	}
	if cfg.SampleRequests <= 0 {
		cfg.SampleRequests = def.SampleRequests
	}
	if cfg.SampleRequestsMulti <= 0 {
		cfg.SampleRequestsMulti = def.SampleRequestsMulti
	}
	if cfg.FreeRunMultiplier <= 0 {
		cfg.FreeRunMultiplier = def.FreeRunMultiplier
	}
	if cfg.DefaultEstimate <= 0 {
		cfg.DefaultEstimate = def.DefaultEstimate
	}
	return &DisengagedFairQueueing{
		cfg:    cfg,
		st:     make(map[*neon.Task]*dfqTask),
		ledger: NewDFQLedger(kind),
	}
}

// Name implements neon.Scheduler.
func (d *DisengagedFairQueueing) Name() string { return "disengaged-fair-queueing" }

// Config returns the active configuration.
func (d *DisengagedFairQueueing) Config() DFQConfig { return d.cfg }

// LedgerKind reports which virtual-time ledger the scheduler runs on.
func (d *DisengagedFairQueueing) LedgerKind() DFQLedgerKind { return d.ledger.Kind() }

// VirtualTime returns the task's current virtual time in normalized
// work, for tests.
func (d *DisengagedFairQueueing) VirtualTime(t *neon.Task) Work {
	if s := d.st[t]; s != nil {
		return d.ledger.VT(s.flow)
	}
	return 0
}

// SystemVirtualTime returns the system-wide virtual time in normalized
// work.
func (d *DisengagedFairQueueing) SystemVirtualTime() Work { return d.ledger.SysVT() }

// Estimate returns the task's sampled mean request size, for tests.
func (d *DisengagedFairQueueing) Estimate(t *neon.Task) sim.Duration {
	if s := d.st[t]; s != nil {
		return s.est
	}
	return 0
}

// LeadBound returns the fairness bound the denial rule enforces: a
// backlogged task's virtual time may lead the system virtual time by at
// most one free-run horizon (past which it is denied and stops being
// charged) plus one engagement window divided by the lightest charged
// weight (the most any task's ledger can advance in the episode that
// pushes it over), both converted to normalized work at this device's
// class speed. Both terms vary per episode, so the bound is stated over
// the largest observed values. The property tests
// TestDFQLeadBoundInvariant and TestWeightedDFQLeadBoundInvariant
// assert MaxLead never exceeds it.
//
// Dynamic-weight contract: the bound stays valid when weights change
// mid-run (the policy layer's round-based allocator rewrites
// neon.Task.Weight between rounds). Weights are read afresh at every
// charging step — nothing here caches them — each episode's window
// term uses that episode's own lightest *charged* weight and joins
// maxWindow before the episode's lead check, and past charges are
// never restated: a re-weight changes future charging rates only.
// Writers must keep weights positive and finite
// (workload.TenantSpec.Validate; the policy layer's min-1
// normalization additionally keeps the lightest weight at 1, so the
// window term never exceeds the unweighted scheduler's).
// TestReweightingPreservesLeadBound churns weights through the live
// allocator and asserts the invariant end to end.
func (d *DisengagedFairQueueing) LeadBound() Work {
	return d.maxFreeRun + d.maxWindow
}

// Denied reports whether the task is excluded from the current free run.
func (d *DisengagedFairQueueing) Denied(t *neon.Task) bool {
	s := d.st[t]
	return s != nil && s.denied
}

// Start implements neon.Scheduler.
func (d *DisengagedFairQueueing) Start(k *neon.Kernel) {
	d.k = k
	d.speed = k.Device().ClassSpeed()
	d.admitGate = k.Engine().NewGate("dfq-admit")
	k.Engine().Spawn("sched/dfq", d.run)
}

// chargeSpeed is the device-time-to-work conversion factor the ledger
// uses: the device's class speed, or 1 under the RawCharges ablation.
func (d *DisengagedFairQueueing) chargeSpeed() float64 {
	if d.cfg.RawCharges {
		return 1
	}
	return d.speed
}

// TaskAdmitted implements neon.Scheduler.
func (d *DisengagedFairQueueing) TaskAdmitted(t *neon.Task) {
	d.st[t] = &dfqTask{est: d.cfg.DefaultEstimate, flow: d.ledger.Add()}
	d.admitGate.Broadcast()
}

// TaskExited implements neon.Scheduler.
func (d *DisengagedFairQueueing) TaskExited(t *neon.Task) {
	if s := d.st[t]; s != nil {
		d.ledger.Remove(s.flow)
	}
	delete(d.st, t)
}

// ChannelActivated implements neon.Scheduler: new channels are mapped
// directly only while their task is free to run.
func (d *DisengagedFairQueueing) ChannelActivated(cs *neon.ChannelState) {
	cs.Ch.Reg.SetPresent(d.mayRun(cs.Task))
}

// HandleFault implements neon.Scheduler: submissions from barriered or
// denied tasks wait; the sampled task and free-running tasks proceed.
func (d *DisengagedFairQueueing) HandleFault(p *sim.Proc, t *neon.Task, cs *neon.ChannelState) {
	p.WaitFor(t.Gate(), func() bool { return !t.Alive || d.mayRun(t) })
}

// mayRun reports whether the task's submissions may currently proceed.
func (d *DisengagedFairQueueing) mayRun(t *neon.Task) bool {
	switch d.mode {
	case dfqSampling:
		return t == d.sampled
	case dfqFreeRun:
		s := d.st[t]
		return s == nil || !s.denied
	default: // barrier
		return false
	}
}

// run is the engagement/free-run cycle of Figure 3.
func (d *DisengagedFairQueueing) run(p *sim.Proc) {
	lastBarrier := p.Now()
	for {
		live := d.k.Tasks()
		if len(live) == 0 {
			p.Wait(d.admitGate)
			lastBarrier = p.Now()
			continue
		}

		// --- Barrier: stop new submissions everywhere, then drain. ---
		engStart := p.Now()
		window := engStart.Sub(lastBarrier)
		lastBarrier = engStart
		d.mode = dfqBarrier
		d.k.EngageAll()
		for _, t := range live {
			s := d.state(t)
			s.activeAtBarrier = t.PendingRequests() > 0 || t.Gate().Waiters() > 0
		}
		d.k.Drain(p, live)

		// --- Sampling runs for tasks that issued work last interval. ---
		sampledCount := 0
		for _, t := range live {
			if !t.Alive {
				continue
			}
			s := d.state(t)
			completed := t.CompletedRequests()
			issued := completed > s.lastCompleted
			s.lastCompleted = completed
			if !issued && !s.activeAtBarrier {
				continue // do not waste sampling time on idle tasks
			}
			if t.Virtualized() && len(t.Channels()) == 0 {
				// Detached logical context: no hardware channels exist to
				// intercept, so a sampling run could observe nothing. The
				// completion bookkeeping above still advanced.
				continue
			}
			sampledCount++
			want := d.cfg.SampleRequests
			if len(t.Channels()) > 1 {
				want = d.cfg.SampleRequestsMulti
			}
			d.mode = dfqSampling
			d.sampled = t
			t.Gate().Broadcast()
			res := d.k.Sample(p, t, d.cfg.SamplePeriod, want)
			d.sampled = nil
			d.mode = dfqBarrier
			s.sampledRequests = len(res.Sizes)
			if m := res.Mean(); m > 0 {
				s.est = m
			} else if t.PendingRequests() > 0 && res.Elapsed > s.est {
				// The task kept the device busy for the whole window
				// without completing anything: its requests are at least
				// as long as the window. Observable from the reference
				// counters alone.
				s.est = res.Elapsed
			}
		}

		// --- Virtual time maintenance and scheduling decision. ---
		p.Sleep(d.k.Costs().SchedulerCompute)
		engElapsed := p.Now().Sub(engStart)
		nominal := d.cfg.SamplePeriod * sim.Duration(max(1, sampledCount))
		freeRun := sim.Duration(d.cfg.FreeRunMultiplier) * maxDur(engElapsed, nominal)
		d.maintainVirtualTime(window, freeRun)

		// --- Disengaged free run. ---
		d.mode = dfqFreeRun
		for _, t := range d.k.Tasks() {
			s := d.state(t)
			if s.denied {
				d.Denials++
				continue
			}
			d.k.Disengage(t)
			t.Gate().Broadcast()
		}
		d.Cycles++
		p.Sleep(freeRun)
	}
}

// maintainVirtualTime performs the paper's three per-engagement steps:
// advance active tasks' virtual times, advance the system virtual time
// and catch idle tasks up to it, and deny the next interval to tasks too
// far ahead.
//
// Active tasks that were permitted to run are charged the interval in
// proportion to their mean sampled request sizes — the round-robin
// arbitration assumption. The device-time charge is converted to
// normalized work at the device's class speed (see Work) and divided by
// the task's fair-share weight (see PerWeight), so ledgers stay
// comparable across a mixed fleet and service under contention is
// proportional to weight. Tasks that spent the interval denied consumed
// nothing and are charged nothing, but still count as active (they are
// waiting, not idle), so they neither forfeit nor accrue credit.
//
// The bookkeeping itself — where virtual times live, how the active
// minimum is found, when idle flows catch up — is the ledger's: the
// indexed ledger does each step in O(log active), the linear ledger in
// one scan per cycle, and the differential tests pin that both produce
// identical virtual times and denial decisions.
func (d *DisengagedFairQueueing) maintainVirtualTime(window, freeRun sim.Duration) {
	speed := d.chargeSpeed()
	windowW := WorkFor(window, speed)
	freeRunW := WorkFor(freeRun, speed)

	var estSum sim.Duration
	var active, charged []*neon.Task
	minWeight := 1.0
	for _, t := range d.k.Tasks() {
		s := d.state(t)
		s.charge = 0
		d.ledger.SetActive(s.flow, s.activeAtBarrier)
		if s.activeAtBarrier {
			active = append(active, t)
			if !s.denied { // denial state still reflects the last interval
				if len(charged) == 0 || t.ShareWeight() < minWeight {
					minWeight = t.ShareWeight()
				}
				charged = append(charged, t)
				estSum += s.est
			}
		}
	}

	// Step 1: advance each running task's virtual time by its estimated
	// share of the elapsed interval, normalized to work units and scaled
	// down by its weight.
	if estSum > 0 {
		for _, t := range charged {
			s := d.st[t]
			delta := PerWeight(
				WorkFor(sim.Duration(float64(window)*float64(s.est)/float64(estSum)), speed),
				t.ShareWeight())
			d.ledger.Charge(s.flow, delta)
			s.charge = delta
		}
	}

	// Steps 1b and 2: the system virtual time advances to the oldest
	// virtual time among active flows, and idle flows forfeit unused
	// credit — eagerly on the linear ledger, lazily (at next read or
	// activation, which is observably identical because the system
	// virtual time is monotone) on the indexed one.
	d.ledger.AdvanceSysVT()

	// Instrumentation: after charging and system-virtual-time advance,
	// every backlogged task's lead must sit within LeadBound — it was
	// under the previous free-run horizon when last charged (or it would
	// have been denied), and one episode charges a task at most one
	// window divided by its weight, so the episode's bound contribution
	// is the window over the lightest charged weight. The current window
	// joins the bound before the check; the upcoming free run only
	// after, since no task has run under it yet.
	if episodeW := PerWeight(windowW, minWeight); episodeW > d.maxWindow {
		d.maxWindow = episodeW
	}
	for _, t := range active {
		lead := d.ledger.Lead(d.st[t].flow)
		if lead > d.MaxLead {
			d.MaxLead = lead
		}
		if lead > d.maxFreeRun+d.maxWindow {
			d.LeadViolations++
		}
	}
	if freeRunW > d.maxFreeRun {
		d.maxFreeRun = freeRunW
	}

	// Step 3: deny the next interval to tasks so far ahead that even an
	// exclusive interval would not let the slowest catch past them. The
	// horizon is the free run converted to this device's work rate: what
	// the device could retire while the task sits out. With a fleet
	// exchange attached, the decision uses fleet-wide leads — this
	// device's charges folded with every other device's — so a principal
	// cannot gain extra shares by spreading across devices.
	if d.cfg.Fleet != nil {
		// Build the reusable episode batch: one entry per distinct
		// principal name (same-named tasks fold — charges sum, activity
		// ORs), zero steady-state allocations.
		if d.batchIdx == nil {
			d.batchIdx = make(map[PrincipalID]int32)
		}
		d.batch = d.batch[:0]
		for _, t := range d.k.Tasks() {
			s := d.state(t)
			if !s.pidSet {
				s.pid = d.cfg.Fleet.Principal(t.Name)
				s.pidSet = true
			}
			idx, ok := d.batchIdx[s.pid]
			if !ok {
				idx = int32(len(d.batch))
				d.batch = append(d.batch, EpisodeEntry{Principal: s.pid, Marked: true})
				d.batchIdx[s.pid] = idx
			}
			e := &d.batch[idx]
			e.Charge += s.charge
			e.Active = e.Active || s.activeAtBarrier
		}
		d.cfg.Fleet.ReconcileEpisodeBatch(d.k.Label, d.batch)
		for _, t := range d.k.Tasks() {
			s := d.state(t)
			s.denied = d.batch[d.batchIdx[s.pid]].Lead >= freeRunW
		}
		clear(d.batchIdx)
		return
	}
	for _, t := range d.k.Tasks() {
		s := d.state(t)
		s.denied = d.ledger.Lead(s.flow) >= freeRunW
	}
}

func (d *DisengagedFairQueueing) state(t *neon.Task) *dfqTask {
	s := d.st[t]
	if s == nil {
		s = &dfqTask{est: d.cfg.DefaultEstimate, flow: d.ledger.Add()}
		d.st[t] = s
	}
	return s
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

var _ neon.Scheduler = (*DisengagedFairQueueing)(nil)
