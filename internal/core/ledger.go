package core

// DFQLedgerKind selects the virtual-time ledger implementation behind
// DisengagedFairQueueing.
type DFQLedgerKind int

const (
	// IndexedLedger is the production ledger: a FlowIndex — flat-slab
	// per-flow state, a min-VT heap over active flows, idle flows parked
	// outside it — so every per-cycle ledger step is O(log active)
	// instead of O(all tenants).
	IndexedLedger DFQLedgerKind = iota
	// LinearLedger is the original map-free restatement of the
	// pre-index ledger: charge is O(1) but every system-virtual-time
	// advance scans all flows (min over active, eager idle catch-up).
	// It is retained so differential tests can pin that the index
	// reproduces its virtual times, leads, and denial decisions
	// bit-for-bit.
	LinearLedger
)

// DefaultDFQLedger is the ledger kind NewDisengagedFairQueueing uses.
// It is a package variable only so determinism tests can run whole
// experiments on the linear ledger (the same seam DefaultEventQueue
// provides for the engine's queues); production code must not change
// it.
var DefaultDFQLedger = IndexedLedger

// DFQLedger is the virtual-time state store of a fair-queueing cycle:
// per-flow virtual times addressed by generation-counted FlowIDs, an
// active/idle split, and the system-virtual-time fold. The scheduler
// (or the scale harness) owns flow classification and charge
// computation; the ledger owns where per-tenant state lives and what a
// cycle's bookkeeping costs.
type DFQLedger interface {
	// Kind identifies the implementation.
	Kind() DFQLedgerKind
	// Grow pre-allocates capacity for n flows.
	Grow(n int)
	// Add registers a new idle flow at the system virtual time.
	Add() FlowID
	// Remove frees the flow; stale handles are no-ops everywhere.
	Remove(id FlowID)
	// SetActive moves the flow between the active set (participates in
	// the system-virtual-time minimum) and the idle side (forfeits
	// unused credit instead).
	SetActive(id FlowID, active bool)
	// Active reports the flow's current classification.
	Active(id FlowID) bool
	// Charge advances the flow's virtual time by a weighted normalized
	// delta.
	Charge(id FlowID, delta Work)
	// VT returns the flow's virtual time (idle flows report the
	// caught-up value).
	VT(id FlowID) Work
	// Lead returns max(0, VT-SysVT), the denial rule's input.
	Lead(id FlowID) Work
	// AdvanceSysVT folds the active minimum into the system virtual
	// time and returns it.
	AdvanceSysVT() Work
	// SysVT returns the system virtual time.
	SysVT() Work
	// Len and ActiveLen report the population and its active subset.
	Len() int
	ActiveLen() int
	// StructuralAllocs counts deterministic allocation events (flow
	// registrations, slab/heap growth) for the scale experiment's
	// allocs-per-request column.
	StructuralAllocs() int64
}

// NewDFQLedger constructs a ledger of the given kind.
func NewDFQLedger(kind DFQLedgerKind) DFQLedger {
	if kind == LinearLedger {
		return &linearLedger{}
	}
	return NewFlowIndex()
}

// Kind implements DFQLedger for the production index.
func (x *FlowIndex) Kind() DFQLedgerKind { return IndexedLedger }

var _ DFQLedger = (*FlowIndex)(nil)

// linearState classifies a linear-ledger slot.
type linearState uint8

const (
	linearFree linearState = iota
	linearIdle
	linearActive
)

// linearSlot is one flow of the linear ledger.
type linearSlot struct {
	vt    Work
	gen   uint32
	state linearState
}

// linearLedger stores flows in the same slab-with-generations shape as
// FlowIndex but keeps no index: AdvanceSysVT is a full scan over every
// flow — the exact cost profile (and arithmetic) of the pre-index
// DisengagedFairQueueing, restated behind the ledger interface.
type linearLedger struct {
	slab  []linearSlot
	free  []uint32
	sysVT Work
	grows int64
}

func (l *linearLedger) Kind() DFQLedgerKind { return LinearLedger }

func (l *linearLedger) Grow(n int) {
	if cap(l.slab) < n {
		slab := make([]linearSlot, len(l.slab), n)
		copy(slab, l.slab)
		l.slab = slab
		l.grows++
	}
}

func (l *linearLedger) Add() FlowID {
	var i uint32
	if n := len(l.free); n > 0 {
		i = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		i = uint32(len(l.slab))
		if len(l.slab) == cap(l.slab) {
			l.grows++
		}
		l.slab = append(l.slab, linearSlot{gen: 1})
		l.grows++
	}
	s := &l.slab[i]
	s.vt = l.sysVT
	s.state = linearIdle
	return FlowID{idx: i, gen: s.gen}
}

func (l *linearLedger) Remove(id FlowID) {
	s := l.slot(id)
	if s == nil {
		return
	}
	s.gen++
	s.state = linearFree
	l.free = append(l.free, id.idx)
}

func (l *linearLedger) SetActive(id FlowID, active bool) {
	s := l.slot(id)
	if s == nil {
		return
	}
	if active {
		if s.state == linearIdle && s.vt < l.sysVT {
			s.vt = l.sysVT
		}
		s.state = linearActive
	} else {
		s.state = linearIdle
	}
}

func (l *linearLedger) Active(id FlowID) bool {
	s := l.slot(id)
	return s != nil && s.state == linearActive
}

func (l *linearLedger) Charge(id FlowID, delta Work) {
	s := l.slot(id)
	if s == nil {
		return
	}
	if s.state == linearIdle && s.vt < l.sysVT {
		s.vt = l.sysVT
	}
	s.vt += delta
}

func (l *linearLedger) VT(id FlowID) Work {
	s := l.slot(id)
	if s == nil {
		return 0
	}
	if s.state == linearIdle && s.vt < l.sysVT {
		return l.sysVT
	}
	return s.vt
}

func (l *linearLedger) Lead(id FlowID) Work {
	if lead := l.VT(id) - l.sysVT; lead > 0 {
		return lead
	}
	return 0
}

// AdvanceSysVT is the linear ledger's defining cost: one pass over the
// whole slab for the active minimum, and a second for the idle
// catch-up — O(all tenants) per cycle, the paper-scale behavior the
// FlowIndex replaces.
func (l *linearLedger) AdvanceSysVT() Work {
	first := true
	var min Work
	for i := range l.slab {
		s := &l.slab[i]
		if s.state != linearActive {
			continue
		}
		if first || s.vt < min {
			min = s.vt
			first = false
		}
	}
	if !first && min > l.sysVT {
		l.sysVT = min
	}
	for i := range l.slab {
		s := &l.slab[i]
		if s.state == linearIdle && s.vt < l.sysVT {
			s.vt = l.sysVT
		}
	}
	return l.sysVT
}

func (l *linearLedger) SysVT() Work { return l.sysVT }

func (l *linearLedger) Len() int {
	return len(l.slab) - len(l.free)
}

func (l *linearLedger) ActiveLen() int {
	n := 0
	for i := range l.slab {
		if l.slab[i].state == linearActive {
			n++
		}
	}
	return n
}

func (l *linearLedger) StructuralAllocs() int64 { return l.grows }

func (l *linearLedger) slot(id FlowID) *linearSlot {
	if int(id.idx) >= len(l.slab) {
		return nil
	}
	s := &l.slab[id.idx]
	if s.gen != id.gen || s.state == linearFree {
		return nil
	}
	return s
}

var _ DFQLedger = (*linearLedger)(nil)
