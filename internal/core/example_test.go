package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleNew constructs schedulers by policy name. Unknown names are an
// error listing the valid policies — construction never silently yields
// a nil scheduler.
func ExampleNew() {
	sched, err := core.New("dfq")
	fmt.Println(sched.Name(), err)

	_, err = core.New("magic")
	fmt.Println(err)
	// Output:
	// disengaged-fair-queueing <nil>
	// core: unknown scheduler policy "magic" (valid: direct, timeslice, dts, dfq, oracle)
}
