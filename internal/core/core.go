// Package core implements the paper's contribution: OS-level schedulers
// for fast accelerators built on interception and disengagement.
//
// Four policies from the paper, plus one ablation:
//
//   - DirectAccess: the vendor default — no OS involvement, no fairness,
//     no protection. The baseline every figure normalizes against.
//   - Timeslice (engaged): token-passing timeslices with overuse control;
//     every request submission is intercepted (Section 3.1).
//   - Disengaged Timeslice: the token holder runs unmonitored at direct
//     access speed; everyone else faults and blocks (Section 3.2).
//   - Disengaged Fair Queueing: probabilistic fair queueing driven by
//     periodic engagement episodes — barrier, drain, per-task sampling,
//     virtual-time maintenance, then a long disengaged free run
//     (Section 3.3).
//   - OracleFairQueueing: the Section 6.1 thought experiment — fair
//     queueing driven by vendor-exported per-context busy time instead of
//     sampled estimates. No barriers, no sampling, near-zero overhead;
//     used to show the prototype's estimation anomalies disappear with
//     hardware statistics.
//
// All schedulers implement neon.Scheduler and are attached with
// neon.NewKernel(device, scheduler).
package core

import (
	"fmt"
	"strings"

	"repro/internal/neon"
	"repro/internal/sim"
)

// New constructs a scheduler by policy name, using default parameters.
// Recognized names: "direct", "timeslice" ("ts"), "dts"
// ("disengaged-timeslice"), "dfq" ("disengaged-fair-queueing"), and
// "oracle" ("oracle-fq"). An unknown name is an error listing the valid
// policies.
func New(name string) (neon.Scheduler, error) {
	switch name {
	case "direct":
		return NewDirectAccess(), nil
	case "timeslice", "ts":
		return NewTimeslice(DefaultSlice), nil
	case "dts", "disengaged-timeslice":
		return NewDisengagedTimeslice(DefaultSlice), nil
	case "dfq", "disengaged-fair-queueing":
		return NewDisengagedFairQueueing(DefaultDFQConfig()), nil
	case "oracle", "oracle-fq":
		return NewOracleFairQueueing(DefaultOracleInterval), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler policy %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Names lists the selectable policies in presentation order.
func Names() []string {
	return []string{"direct", "timeslice", "dts", "dfq", "oracle"}
}

// DirectAccess is the unmanaged baseline: every channel register stays
// mapped, the kernel never intercedes, and the device's internal
// arbitration is the only scheduler. Fast, unfair, unprotected.
type DirectAccess struct{}

// NewDirectAccess returns the baseline policy.
func NewDirectAccess() *DirectAccess { return &DirectAccess{} }

// Name implements neon.Scheduler.
func (*DirectAccess) Name() string { return "direct" }

// Start implements neon.Scheduler.
func (*DirectAccess) Start(*neon.Kernel) {}

// TaskAdmitted implements neon.Scheduler.
func (*DirectAccess) TaskAdmitted(*neon.Task) {}

// TaskExited implements neon.Scheduler.
func (*DirectAccess) TaskExited(*neon.Task) {}

// ChannelActivated implements neon.Scheduler; channels stay direct-mapped.
func (*DirectAccess) ChannelActivated(cs *neon.ChannelState) {
	cs.Ch.Reg.SetPresent(true)
}

// HandleFault implements neon.Scheduler. Unreachable under this policy.
func (*DirectAccess) HandleFault(p *sim.Proc, t *neon.Task, cs *neon.ChannelState) {}

var _ neon.Scheduler = (*DirectAccess)(nil)
