package core

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// openClient opens a single-compute-channel client for a test worker.
func openClient(p *sim.Proc, h *harness, w *worker) (*userlib.Client, error) {
	c, err := userlib.Open(p, h.k, w.task, w.task.Name, gpu.Compute)
	w.client = c
	return c, err
}

// TestDFQIdleTaskForfeitsCredit verifies the paper's step 2: a task that
// sits idle does not bank resource credit it can later burn in a burst.
// A late-starting task must share the device roughly evenly from the
// moment it starts, not claim an exclusive catch-up period.
func TestDFQIdleTaskForfeitsCredit(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	early := h.startWorker("early", 200*time.Microsecond)

	// The late task opens its channel immediately but issues nothing for
	// 400ms — plenty of time for "credit" to accrue if the scheduler
	// wrongly let virtual time lag for idle tasks.
	late := &worker{}
	late.task = h.k.NewTask("late")
	late.task.Go("main", func(p *sim.Proc) {
		client, err := openClient(p, h, late)
		if err != nil {
			return
		}
		p.Sleep(400 * time.Millisecond)
		for late.task.Alive {
			client.SubmitSync(p, gpu.Compute, 200*time.Microsecond)
			late.done++
		}
	})

	h.eng.RunFor(400 * time.Millisecond)
	earlyBusyAtStart := early.task.BusyTime()
	lateBusyAtStart := late.task.BusyTime()
	h.eng.RunFor(400 * time.Millisecond)

	earlyDelta := float64(early.task.BusyTime() - earlyBusyAtStart)
	lateDelta := float64(late.task.BusyTime() - lateBusyAtStart)
	share := lateDelta / (earlyDelta + lateDelta)
	if share > 0.62 {
		t.Fatalf("late task claimed %.2f of the device after idling; credit not forfeited", share)
	}
	if share < 0.35 {
		t.Fatalf("late task got only %.2f; it should share evenly going forward", share)
	}
}

// TestOracleKillsInfiniteKernel: the barrier-free scheduler still
// enforces the run limit.
func TestOracleKillsInfiniteKernel(t *testing.T) {
	sched := NewOracleFairQueueing(10 * time.Millisecond)
	h := newHarness(t, sched)
	h.k.RequestRunLimit = 20 * time.Millisecond
	attacker := h.k.NewTask("attacker")
	attacker.Go("main", func(p *sim.Proc) {
		client, err := openClient(p, h, &worker{task: attacker})
		if err != nil {
			return
		}
		client.Submit(p, gpu.Compute, gpu.Forever)
	})
	victim := h.startWorker("victim", 50*time.Microsecond)
	h.eng.RunFor(200 * time.Millisecond)
	if attacker.Alive {
		t.Fatal("oracle never killed the infinite kernel")
	}
	if victim.done == 0 {
		t.Fatal("victim made no progress after the kill")
	}
}

// TestThreeWayFairness: fairness is not a two-task special case.
func TestThreeWayFairness(t *testing.T) {
	sched := NewDisengagedTimeslice(DefaultSlice)
	h := newHarness(t, sched)
	ws := []*worker{
		h.startWorker("a", 20*time.Microsecond),
		h.startWorker("b", 200*time.Microsecond),
		h.startWorker("c", 2000*time.Microsecond),
	}
	h.eng.RunFor(2 * time.Second)
	var total float64
	for _, w := range ws {
		total += float64(w.task.BusyTime())
	}
	for _, w := range ws {
		share := float64(w.task.BusyTime()) / total
		if share < 0.28 || share > 0.39 {
			t.Errorf("%s share = %.2f, want ~1/3", w.task.Name, share)
		}
	}
}
