package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// harness bundles a stack with helpers for scheduler tests.
type harness struct {
	t   *testing.T
	eng *sim.Engine
	dev *gpu.Device
	k   *neon.Kernel
}

func newHarness(t *testing.T, sched neon.Scheduler) *harness {
	t.Helper()
	eng := sim.NewEngine()
	dev := gpu.New(eng, gpu.DefaultConfig())
	k := neon.NewKernel(dev, sched)
	return &harness{t: t, eng: eng, dev: dev, k: k}
}

// worker is a saturating blocking-request task.
type worker struct {
	task   *neon.Task
	client *userlib.Client
	done   int64
}

// startWorker launches a task issuing back-to-back blocking requests of
// the given size.
func (h *harness) startWorker(name string, size sim.Duration) *worker {
	w := &worker{}
	w.task = h.k.NewTask(name)
	w.task.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, h.k, w.task, name, gpu.Compute)
		if err != nil {
			return
		}
		w.client = client
		for w.task.Alive {
			client.SubmitSync(p, gpu.Compute, size)
			w.done++
		}
	})
	return w
}

// startIntermittent launches a task that sleeps off between requests.
func (h *harness) startIntermittent(name string, size, off sim.Duration) *worker {
	w := &worker{}
	w.task = h.k.NewTask(name)
	w.task.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, h.k, w.task, name, gpu.Compute)
		if err != nil {
			return
		}
		w.client = client
		for w.task.Alive {
			client.SubmitSync(p, gpu.Compute, size)
			w.done++
			p.Sleep(off)
		}
	})
	return w
}

func busyShare(a, b *neon.Task) (float64, float64) {
	ab, bb := float64(a.BusyTime()), float64(b.BusyTime())
	tot := ab + bb
	if tot == 0 {
		return 0, 0
	}
	return ab / tot, bb / tot
}

// --- DirectAccess ---

func TestDirectAccessNeverFaults(t *testing.T) {
	h := newHarness(t, NewDirectAccess())
	w := h.startWorker("w", 20*time.Microsecond)
	h.eng.RunFor(50 * time.Millisecond)
	if h.k.TotalFaults != 0 {
		t.Fatalf("direct access took %d faults", h.k.TotalFaults)
	}
	if w.done == 0 {
		t.Fatal("no work completed")
	}
}

func TestDirectAccessFavorsLargeRequests(t *testing.T) {
	h := newHarness(t, NewDirectAccess())
	small := h.startWorker("small", 20*time.Microsecond)
	big := h.startWorker("big", 800*time.Microsecond)
	h.eng.RunFor(200 * time.Millisecond)
	ss, bs := busyShare(small.task, big.task)
	if bs < 0.9 {
		t.Fatalf("big-request task got %.2f share; round-robin should hand it ~0.97", bs)
	}
	if ss > 0.1 {
		t.Fatalf("small-request task got %.2f share under direct access", ss)
	}
}

// --- Timeslice (engaged and disengaged) ---

func TestTimesliceFairSharing(t *testing.T) {
	for _, disengaged := range []bool{false, true} {
		sched := NewTimeslice(DefaultSlice)
		if disengaged {
			sched = NewDisengagedTimeslice(DefaultSlice)
		}
		h := newHarness(t, sched)
		small := h.startWorker("small", 20*time.Microsecond)
		big := h.startWorker("big", 800*time.Microsecond)
		h.eng.RunFor(time.Second)
		ss, bs := busyShare(small.task, big.task)
		// Slice *time* is split evenly. Under the engaged variant the
		// small-request task burns part of its slices on per-request
		// interception (the paper's Figure 6 observation that Throttle
		// "tends to suffer more"), so its device-busy share dips below
		// one half; the disengaged variant removes that skew.
		lo := 0.42
		if !disengaged {
			lo = 0.33
		}
		if ss < lo || ss > 0.60 {
			t.Errorf("%s: small share = %.2f, want in [%.2f, 0.60]", sched.Name(), ss, lo)
		}
		if bs < 0.40 || bs > 1-lo {
			t.Errorf("%s: big share = %.2f", sched.Name(), bs)
		}
	}
}

func TestTimesliceOnlyHolderRuns(t *testing.T) {
	sched := NewTimeslice(10 * time.Millisecond)
	h := newHarness(t, sched)
	a := h.startWorker("a", 50*time.Microsecond)
	b := h.startWorker("b", 50*time.Microsecond)
	// Sample mid-slice several times: only the holder's channel should
	// ever have in-flight work.
	violations := 0
	for i := 1; i <= 8; i++ {
		h.eng.After(sim.Duration(i)*12*time.Millisecond, func() {
			holder := sched.Holder()
			if holder == nil {
				return
			}
			var other *neon.Task
			if holder == a.task {
				other = b.task
			} else {
				other = a.task
			}
			if other.PendingRequests() > 0 {
				violations++
			}
		})
	}
	h.eng.RunFor(120 * time.Millisecond)
	if violations != 0 {
		t.Fatalf("%d mid-slice submissions from non-holders", violations)
	}
}

func TestEngagedTimesliceInterceptsEverything(t *testing.T) {
	sched := NewTimeslice(DefaultSlice)
	h := newHarness(t, sched)
	w := h.startWorker("w", 100*time.Microsecond)
	h.eng.RunFor(100 * time.Millisecond)
	if h.k.TotalFaults < w.done {
		t.Fatalf("faults=%d < completions=%d; engaged TS must intercept every request",
			h.k.TotalFaults, w.done)
	}
}

func TestDisengagedTimesliceAvoidsPerRequestFaults(t *testing.T) {
	sched := NewDisengagedTimeslice(DefaultSlice)
	h := newHarness(t, sched)
	w := h.startWorker("w", 100*time.Microsecond)
	h.eng.RunFor(300 * time.Millisecond)
	if w.done < 1000 {
		t.Fatalf("only %d rounds", w.done)
	}
	// A standalone holder faults only at slice boundaries (its first
	// submission after each re-engagement), not per request.
	slices := int64(300*time.Millisecond/DefaultSlice) + 2
	if h.k.TotalFaults > slices {
		t.Fatalf("disengaged TS took %d faults for %d requests (want <= ~1 per slice)",
			h.k.TotalFaults, w.done)
	}
}

func TestTimesliceOveruseSkipsTurns(t *testing.T) {
	slice := 10 * time.Millisecond
	sched := NewDisengagedTimeslice(slice)
	h := newHarness(t, sched)
	// Overuser: requests 2.5x the slice; each slice accrues ~1.5 slices
	// of overuse.
	over := h.startWorker("over", 25*time.Millisecond)
	good := h.startWorker("good", 100*time.Microsecond)
	h.eng.RunFor(time.Second)
	if sched.TurnsSkipped == 0 {
		t.Fatal("overuser never skipped a turn")
	}
	os, gs := busyShare(over.task, good.task)
	if os > 0.65 {
		t.Fatalf("overuser share = %.2f despite overuse control", os)
	}
	if gs < 0.35 {
		t.Fatalf("good task share = %.2f", gs)
	}
}

func TestTimesliceNotWorkConserving(t *testing.T) {
	sched := NewDisengagedTimeslice(DefaultSlice)
	h := newHarness(t, sched)
	// One saturating task, one mostly idle task.
	busy := h.startWorker("busy", 100*time.Microsecond)
	idle := h.startIntermittent("idle", 100*time.Microsecond, 5*time.Millisecond)
	start := 100 * time.Millisecond
	h.eng.RunFor(start)
	busyBefore := h.dev.TotalBusy()
	h.eng.RunFor(600 * time.Millisecond)
	util := float64(h.dev.TotalBusy()-busyBefore) / float64(600*time.Millisecond)
	// The idle task's slices are mostly wasted: utilization well below 1.
	if util > 0.75 {
		t.Fatalf("utilization %.2f; timeslice should waste the idle task's slices", util)
	}
	_ = busy
	_ = idle
}

func TestTimesliceRotationSurvivesExit(t *testing.T) {
	sched := NewDisengagedTimeslice(5 * time.Millisecond)
	h := newHarness(t, sched)
	a := h.startWorker("a", 50*time.Microsecond)
	b := h.startWorker("b", 50*time.Microsecond)
	h.eng.RunFor(30 * time.Millisecond)
	h.k.KillTask(a.task, "test")
	doneAtKill := b.done
	h.eng.RunFor(100 * time.Millisecond)
	if b.done <= doneAtKill {
		t.Fatal("survivor made no progress after co-runner exit")
	}
	if sched.Holder() == a.task {
		t.Fatal("dead task still holds the token")
	}
}

// --- Disengaged Fair Queueing ---

func TestDFQFairSharing(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	small := h.startWorker("small", 20*time.Microsecond)
	big := h.startWorker("big", 800*time.Microsecond)
	h.eng.RunFor(time.Second)
	ss, bs := busyShare(small.task, big.task)
	if ss < 0.35 || bs > 0.65 {
		t.Fatalf("shares small=%.2f big=%.2f, want roughly even", ss, bs)
	}
	if sched.Cycles == 0 {
		t.Fatal("no engagement cycles ran")
	}
}

func TestDFQMostRequestsUninstrumented(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	w := h.startWorker("w", 30*time.Microsecond)
	h.eng.RunFor(time.Second)
	frac := float64(h.k.TotalFaults) / float64(w.done)
	if frac > 0.25 {
		t.Fatalf("%.0f%% of requests intercepted; disengagement should keep this small", 100*frac)
	}
}

func TestDFQVirtualTimeInvariants(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	a := h.startWorker("a", 50*time.Microsecond)
	b := h.startWorker("b", 400*time.Microsecond)
	// Sample invariants periodically.
	for i := 1; i <= 20; i++ {
		h.eng.After(sim.Duration(i)*25*time.Millisecond, func() {
			sys := sched.SystemVirtualTime()
			for _, task := range []*neon.Task{a.task, b.task} {
				if sched.VirtualTime(task) < sys-Work(time.Nanosecond) {
					// Active tasks may lag sys only transiently within a
					// maintenance step; never persistently by design.
					t.Errorf("task vt %v below system vt %v", sched.VirtualTime(task), sys)
				}
			}
		})
	}
	h.eng.RunFor(600 * time.Millisecond)
}

func TestDFQDeniesRunahead(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	h.startWorker("small", 20*time.Microsecond)
	h.startWorker("big", 1700*time.Microsecond)
	h.eng.RunFor(time.Second)
	if sched.Denials == 0 {
		t.Fatal("mismatched pair never triggered a denial")
	}
}

func TestDFQNoDenialsWhenBalanced(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	h.startWorker("a", 100*time.Microsecond)
	h.startWorker("b", 100*time.Microsecond)
	h.eng.RunFor(time.Second)
	if sched.Denials > 2 {
		t.Fatalf("%d denials for identical tasks", sched.Denials)
	}
}

func TestDFQWorkConservingWithIdleCorunner(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	busy := h.startWorker("busy", 100*time.Microsecond)
	h.startIntermittent("idle", 100*time.Microsecond, 4*time.Millisecond)
	h.eng.RunFor(100 * time.Millisecond)
	busyBefore := busy.done
	h.eng.RunFor(600 * time.Millisecond)
	rate := float64(busy.done-busyBefore) / 600e6 // per ns
	// Alone, one 100us blocking request completes every ~112us
	// (size + submit + occasional cycle overhead) => rate ~8.9e-3/us.
	// With a mostly idle co-runner under a work-conserving scheduler the
	// busy task should keep most of that.
	aloneRate := 1.0 / float64(112*time.Microsecond/time.Nanosecond)
	if rate < 0.6*aloneRate {
		t.Fatalf("busy task rate %.3g vs alone %.3g; DFQ should reclaim idle time", rate, aloneRate)
	}
}

func TestDFQEstimatesRequestSizes(t *testing.T) {
	sched := NewDisengagedFairQueueing(DefaultDFQConfig())
	h := newHarness(t, sched)
	w := h.startWorker("w", 300*time.Microsecond)
	h.eng.RunFor(300 * time.Millisecond)
	est := sched.Estimate(w.task)
	if est < 290*time.Microsecond || est > 310*time.Microsecond {
		t.Fatalf("estimate = %v, want ~300us", est)
	}
}

func TestDFQEstimateLowerBoundForHugeRequests(t *testing.T) {
	cfg := DefaultDFQConfig()
	sched := NewDisengagedFairQueueing(cfg)
	h := newHarness(t, sched)
	w := h.startWorker("w", 20*time.Millisecond) // far beyond the window
	h.eng.RunFor(400 * time.Millisecond)
	if est := sched.Estimate(w.task); est < cfg.SamplePeriod {
		t.Fatalf("estimate %v below sampling window; lower bound not applied", est)
	}
}

func TestDFQConfigDefaultsFilled(t *testing.T) {
	sched := NewDisengagedFairQueueing(DFQConfig{})
	def := DefaultDFQConfig()
	if sched.Config() != def {
		t.Fatalf("zero config not defaulted: %+v", sched.Config())
	}
}

// --- Oracle Fair Queueing ---

func TestOracleFairSharing(t *testing.T) {
	sched := NewOracleFairQueueing(DefaultOracleInterval)
	h := newHarness(t, sched)
	small := h.startWorker("small", 20*time.Microsecond)
	big := h.startWorker("big", 800*time.Microsecond)
	h.eng.RunFor(time.Second)
	ss, bs := busyShare(small.task, big.task)
	if ss < 0.40 || ss > 0.60 {
		t.Fatalf("shares small=%.2f big=%.2f; true statistics should equalize", ss, bs)
	}
	if sched.Intervals == 0 {
		t.Fatal("oracle never ran an interval")
	}
}

func TestOracleZeroOverheadStandalone(t *testing.T) {
	sched := NewOracleFairQueueing(DefaultOracleInterval)
	h := newHarness(t, sched)
	w := h.startWorker("w", 50*time.Microsecond)
	h.eng.RunFor(500 * time.Millisecond)
	if h.k.TotalFaults != 0 {
		t.Fatalf("oracle faulted %d times on a standalone task", h.k.TotalFaults)
	}
	if w.done == 0 {
		t.Fatal("no progress")
	}
}

// --- construction helpers ---

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		if s, err := New(name); err != nil || s == nil {
			t.Fatalf("New(%q) = %v, %v", name, s, err)
		}
	}
	s, err := New("bogus")
	if err == nil || s != nil {
		t.Fatalf("New(bogus) = %v, %v; want nil scheduler and an error", s, err)
	}
	for _, want := range Names() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("New(bogus) error %q does not name valid policy %q", err, want)
		}
	}
	for _, alias := range []string{"ts", "disengaged-timeslice", "oracle-fq"} {
		if s, err := New(alias); err != nil || s == nil {
			t.Fatalf("alias %q broken: %v, %v", alias, s, err)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[string]neon.Scheduler{
		"direct":                   NewDirectAccess(),
		"timeslice":                NewTimeslice(DefaultSlice),
		"disengaged-timeslice":     NewDisengagedTimeslice(DefaultSlice),
		"disengaged-fair-queueing": NewDisengagedFairQueueing(DefaultDFQConfig()),
		"oracle-fair-queueing":     NewOracleFairQueueing(0),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Fatalf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

// PerWeight is the weighted-charge conversion every ledger applies:
// identity at the default weight (so unweighted configurations stay
// bit-identical), charge/weight otherwise.
func TestPerWeight(t *testing.T) {
	if got := PerWeight(Work(1000), 1); got != 1000 {
		t.Errorf("weight 1 must be the identity, got %v", got)
	}
	if got := PerWeight(Work(1000), 0); got != 1000 {
		t.Errorf("unset weight must be the identity, got %v", got)
	}
	if got := PerWeight(Work(1000), -3); got != 1000 {
		t.Errorf("negative weight must be the identity, got %v", got)
	}
	if got := PerWeight(Work(1000), 4); got != 250 {
		t.Errorf("PerWeight(1000, 4) = %v, want 250", got)
	}
	if got := PerWeight(Work(1000), 0.5); got != 2000 {
		t.Errorf("PerWeight(1000, 0.5) = %v, want 2000", got)
	}
}
