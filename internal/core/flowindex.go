package core

import "fmt"

// FlowID is a generation-counted handle to one flow's slot in a
// FlowIndex. Handles are values (two words), safe to copy and to hold
// across Remove: a handle whose slot has been recycled carries a stale
// generation and every FlowIndex operation on it is rejected — the same
// use-after-free discipline as the sim engine's pooled Timers.
type FlowID struct {
	idx uint32
	gen uint32
}

// NoFlow is the zero FlowID; it never names a live flow (slot 0 starts
// at generation 1).
var NoFlow = FlowID{}

// flowSlot is one flow's compact per-tenant state: a fixed-size record
// in the index's flat slab. No per-flow maps, no boxed pointers — at
// ~1M tenants the slab is a few tens of megabytes of contiguous memory
// and an idle tenant costs nothing per cycle.
type flowSlot struct {
	// vt is the flow's virtual time in weighted normalized Work. For
	// idle flows the stored value may lag the system virtual time; reads
	// clamp lazily (see VT), which is observably identical to the eager
	// per-cycle catch-up of the linear ledger because sysVT is monotone.
	vt Work
	// gen is the slot's generation, bumped on every recycle.
	gen uint32
	// heapPos is the slot's position in the active min-VT heap, or
	// flowIdle / flowFree when the slot is not active.
	heapPos int32
}

// Sentinel heapPos values for slots outside the active heap.
const (
	flowIdle int32 = -1
	flowFree int32 = -2
)

// FlowIndex is the indexed fair-queueing state store: per-flow virtual
// times in a flat slab addressed by generation-counted FlowIDs, with a
// 4-ary min-heap ordering the *active* flows by (vt, slot) so the
// system-virtual-time advance — the min over active flows that every
// DFQ engagement episode and board reconciliation needs — is O(1) to
// read and O(log active) to maintain, independent of how many idle
// tenants the index holds. Idle flows live outside the heap entirely
// and are caught up to the system virtual time lazily, so a million
// inactive tenants add zero per-cycle cost (MQFQ's flow indexing,
// applied to the paper's engagement ledger).
//
// All ordering is by (vt, slot index), so identical operation sequences
// produce identical heaps and identical minima on every run — the
// determinism contract the differential tests pin against the linear
// ledger.
type FlowIndex struct {
	slab   []flowSlot
	free   []uint32 // recycled slot indexes, LIFO
	heap   []uint32 // active slots, 4-ary min-heap by (vt, idx)
	idle   int      // live flows currently outside the heap
	sysVT  Work
	grows  int64 // structural allocation events, see StructuralAllocs
	nextID uint32
}

// NewFlowIndex returns an empty index. The slab grows on demand;
// pre-size with Grow when the population is known up front.
func NewFlowIndex() *FlowIndex { return &FlowIndex{} }

// Grow pre-allocates slab and heap capacity for n flows, so a known
// population (the scale experiment's 10⁵–10⁶ tenants) is two
// allocations instead of a doubling cascade.
func (x *FlowIndex) Grow(n int) {
	if cap(x.slab) < n {
		slab := make([]flowSlot, len(x.slab), n)
		copy(slab, x.slab)
		x.slab = slab
		x.grows++
	}
	if cap(x.heap) < n {
		heap := make([]uint32, len(x.heap), n)
		copy(heap, x.heap)
		x.heap = heap
		x.grows++
	}
}

// Add registers a new flow, idle, with its virtual time at the system
// virtual time — the late-joiner rule of every ledger in this package.
func (x *FlowIndex) Add() FlowID {
	var i uint32
	if n := len(x.free); n > 0 {
		i = x.free[n-1]
		x.free = x.free[:n-1]
	} else {
		i = uint32(len(x.slab))
		if len(x.slab) == cap(x.slab) {
			x.grows++
		}
		x.slab = append(x.slab, flowSlot{gen: 1})
		x.grows++ // one registered flow = one structural allocation
	}
	s := &x.slab[i]
	s.vt = x.sysVT
	s.heapPos = flowIdle
	x.idle++
	return FlowID{idx: i, gen: s.gen}
}

// Remove frees the flow's slot and bumps its generation, so stale
// handles are dead. Removing an already-removed flow is a no-op.
func (x *FlowIndex) Remove(id FlowID) {
	s := x.slot(id)
	if s == nil {
		return
	}
	if s.heapPos >= 0 {
		x.heapDelete(int(s.heapPos))
	} else {
		x.idle--
	}
	s.gen++
	s.heapPos = flowFree
	x.free = append(x.free, id.idx)
}

// Live reports whether the handle still names a live flow.
func (x *FlowIndex) Live(id FlowID) bool { return x.slot(id) != nil }

// SetActive moves the flow between the active heap and the idle side
// structure. Activating an idle flow first forfeits any unused credit
// (vt catches up to the system virtual time); deactivating removes it
// from the heap so it stops participating in the minimum. Both are
// O(log active); a no-op transition costs nothing.
func (x *FlowIndex) SetActive(id FlowID, active bool) {
	s := x.slot(id)
	if s == nil {
		return
	}
	if active == (s.heapPos >= 0) {
		return
	}
	if active {
		if s.vt < x.sysVT {
			s.vt = x.sysVT
		}
		x.idle--
		x.heapPush(id.idx)
	} else {
		x.heapDelete(int(s.heapPos))
		x.idle++
	}
}

// Active reports whether the flow is in the active heap.
func (x *FlowIndex) Active(id FlowID) bool {
	s := x.slot(id)
	return s != nil && s.heapPos >= 0
}

// Charge advances the flow's virtual time by delta (already weighted
// and normalized by the caller) and restores heap order — O(log
// active) for active flows, O(1) for idle ones.
func (x *FlowIndex) Charge(id FlowID, delta Work) {
	s := x.slot(id)
	if s == nil || delta == 0 {
		return
	}
	if s.heapPos < 0 && s.vt < x.sysVT {
		// An idle flow is caught up before new usage lands on it, exactly
		// when the per-cycle clamp of the linear ledger would have done it.
		s.vt = x.sysVT
	}
	s.vt += delta
	if s.heapPos >= 0 && delta > 0 {
		x.heapDown(int(s.heapPos))
	}
}

// VT returns the flow's virtual time. Idle flows report the lazily
// clamped value max(stored, sysVT): the linear ledger catches idle
// flows up every cycle, and because the system virtual time only moves
// forward, clamping at read time yields the identical number.
func (x *FlowIndex) VT(id FlowID) Work {
	s := x.slot(id)
	if s == nil {
		return 0
	}
	if s.heapPos < 0 && s.vt < x.sysVT {
		return x.sysVT
	}
	return s.vt
}

// Lead returns the flow's virtual-time lead over the system virtual
// time — the quantity the DFQ denial rule compares against the
// free-run horizon. Never negative.
func (x *FlowIndex) Lead(id FlowID) Work {
	if lead := x.VT(id) - x.sysVT; lead > 0 {
		return lead
	}
	return 0
}

// MinActiveVT returns the smallest virtual time among active flows —
// an O(1) read of the heap root.
func (x *FlowIndex) MinActiveVT() (Work, bool) {
	if len(x.heap) == 0 {
		return 0, false
	}
	return x.slab[x.heap[0]].vt, true
}

// AdvanceSysVT folds the active minimum into the system virtual time
// (which only moves forward) and returns the new value. With no active
// flows the system virtual time holds still, as in the linear ledger.
func (x *FlowIndex) AdvanceSysVT() Work {
	if min, ok := x.MinActiveVT(); ok && min > x.sysVT {
		x.sysVT = min
	}
	return x.sysVT
}

// SysVT returns the system virtual time.
func (x *FlowIndex) SysVT() Work { return x.sysVT }

// ActiveLen and IdleLen report the population split; Len is the total
// live flow count.
func (x *FlowIndex) ActiveLen() int { return len(x.heap) }
func (x *FlowIndex) IdleLen() int   { return x.idle }
func (x *FlowIndex) Len() int       { return len(x.heap) + x.idle }

// StructuralAllocs counts the allocation events the index has performed
// by design: one per registered flow plus one per slab or heap growth.
// Unlike runtime allocation counters it is deterministic and
// machine-independent, which is what lets the scale experiment print an
// allocs-per-request column into a byte-exact golden table.
func (x *FlowIndex) StructuralAllocs() int64 { return x.grows }

// slot resolves a handle, nil if stale or out of range.
func (x *FlowIndex) slot(id FlowID) *flowSlot {
	if int(id.idx) >= len(x.slab) {
		return nil
	}
	s := &x.slab[id.idx]
	if s.gen != id.gen || s.heapPos == flowFree {
		return nil
	}
	return s
}

// checkInvariants panics if the heap ordering or the population
// accounting is broken; the fuzz target calls it after every op.
func (x *FlowIndex) checkInvariants() {
	for i := 1; i < len(x.heap); i++ {
		parent := (i - 1) / 4
		if x.flowLess(x.heap[i], x.heap[parent]) {
			panic(fmt.Sprintf("core: flow heap order violated at %d", i))
		}
	}
	live := 0
	for i := range x.slab {
		s := &x.slab[i]
		switch {
		case s.heapPos == flowFree:
		case s.heapPos == flowIdle:
			live++
		default:
			live++
			if int(s.heapPos) >= len(x.heap) || x.heap[s.heapPos] != uint32(i) {
				panic(fmt.Sprintf("core: flow %d heap position %d is inconsistent", i, s.heapPos))
			}
		}
	}
	if live != x.Len() || len(x.slab)-live != len(x.free) {
		panic(fmt.Sprintf("core: flow accounting leak: %d live, Len %d, %d slab, %d free",
			live, x.Len(), len(x.slab), len(x.free)))
	}
}

// flowLess is the heap order: by virtual time, ties to the lower slot
// index so runs are reproducible.
func (x *FlowIndex) flowLess(a, b uint32) bool {
	sa, sb := &x.slab[a], &x.slab[b]
	if sa.vt != sb.vt {
		return sa.vt < sb.vt
	}
	return a < b
}

// The 4-ary heap (same shape as the sim engine's overflow heap: fewer
// levels than a binary heap, and the four-child scan stays in one cache
// line of slot indexes).

func (x *FlowIndex) heapPush(i uint32) {
	if len(x.heap) == cap(x.heap) {
		x.grows++
	}
	x.heap = append(x.heap, i)
	x.slab[i].heapPos = int32(len(x.heap) - 1)
	x.heapUp(len(x.heap) - 1)
}

func (x *FlowIndex) heapDelete(pos int) {
	last := len(x.heap) - 1
	moved := x.heap[last]
	removed := x.heap[pos]
	x.heap[pos] = moved
	x.heap = x.heap[:last]
	x.slab[removed].heapPos = flowIdle
	if pos < last {
		x.slab[moved].heapPos = int32(pos)
		x.heapDown(pos)
		x.heapUp(int(x.slab[moved].heapPos))
	}
}

func (x *FlowIndex) heapUp(pos int) {
	for pos > 0 {
		parent := (pos - 1) / 4
		if !x.flowLess(x.heap[pos], x.heap[parent]) {
			return
		}
		x.heapSwap(pos, parent)
		pos = parent
	}
}

func (x *FlowIndex) heapDown(pos int) {
	n := len(x.heap)
	for {
		first := 4*pos + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if x.flowLess(x.heap[c], x.heap[min]) {
				min = c
			}
		}
		if !x.flowLess(x.heap[min], x.heap[pos]) {
			return
		}
		x.heapSwap(pos, min)
		pos = min
	}
}

func (x *FlowIndex) heapSwap(a, b int) {
	x.heap[a], x.heap[b] = x.heap[b], x.heap[a]
	x.slab[x.heap[a]].heapPos = int32(a)
	x.slab[x.heap[b]].heapPos = int32(b)
}
