package core

import (
	"time"

	"repro/internal/neon"
	"repro/internal/sim"
)

// DefaultSlice is the paper's timeslice length (Section 5.2): long enough
// to amortize token passing, short enough to stay under the 100 ms human
// perception threshold.
const DefaultSlice = 30 * time.Millisecond

// Timeslice is the token-based timeslice scheduler with overuse control
// (paper Section 3.1), in both its engaged and disengaged forms.
//
// A token circulates round-robin among live tasks; only the holder's
// requests may reach the device. At the end of each slice the kernel
// drains the holder's outstanding requests; time past the slice boundary
// is charged as overuse, and a task whose accrued overuse exceeds a full
// slice forfeits its next turn. Over-long requests are handled by the
// kernel's run-limit kill during the drain.
//
// In the engaged form every submission is intercepted (pages always
// protected), paying the full per-request cost. In the disengaged form
// the holder's pages are mapped for direct access during its slice, so
// interception costs are paid only by tasks trying to run out of turn.
//
// Overuse is accounted in weighted normalized work (drain time past the
// slice boundary scaled by the device's class speed and divided by the
// task's fair-share weight), and a turn is forfeited once the debt
// reaches one slice's worth of work at that device — so the overuse
// ledger means the same thing on every class of a mixed fleet, and a
// heavier-weight task works off the same overrun in fewer forfeited
// turns. The token rotation itself stays unweighted round-robin, so
// timeslicing differentiates weights only at the overuse margin — the
// contrast the tiers experiment shows against weighted DFQ.
type Timeslice struct {
	slice      sim.Duration
	disengaged bool

	k         *neon.Kernel
	speed     float64 // device class speed factor, set at Start
	rotation  []*neon.Task
	next      int
	holder    *neon.Task
	overuse   map[*neon.Task]Work
	admitGate *sim.Gate

	// SlicesGranted counts slices actually granted, for tests.
	SlicesGranted int64
	// TurnsSkipped counts turns forfeited to overuse, for tests.
	TurnsSkipped int64
}

// NewTimeslice returns the engaged variant: every request is intercepted.
func NewTimeslice(slice sim.Duration) *Timeslice {
	return &Timeslice{slice: slice, overuse: make(map[*neon.Task]Work)}
}

// NewDisengagedTimeslice returns the disengaged variant: the token holder
// gets direct access for the duration of its slice.
func NewDisengagedTimeslice(slice sim.Duration) *Timeslice {
	ts := NewTimeslice(slice)
	ts.disengaged = true
	return ts
}

// Name implements neon.Scheduler.
func (ts *Timeslice) Name() string {
	if ts.disengaged {
		return "disengaged-timeslice"
	}
	return "timeslice"
}

// Slice returns the configured timeslice length.
func (ts *Timeslice) Slice() sim.Duration { return ts.slice }

// Holder returns the current token holder (nil between slices).
func (ts *Timeslice) Holder() *neon.Task { return ts.holder }

// Overuse returns the task's accrued overuse charge in normalized work.
func (ts *Timeslice) Overuse(t *neon.Task) Work { return ts.overuse[t] }

// Start implements neon.Scheduler.
func (ts *Timeslice) Start(k *neon.Kernel) {
	ts.k = k
	ts.speed = k.Device().ClassSpeed()
	ts.admitGate = k.Engine().NewGate("ts-admit")
	k.Engine().Spawn("sched/"+ts.Name(), ts.run)
}

// sliceWork is one slice converted to this device's work rate: the debt
// quantum a forfeited turn repays.
func (ts *Timeslice) sliceWork() Work { return WorkFor(ts.slice, ts.speed) }

// TaskAdmitted implements neon.Scheduler.
func (ts *Timeslice) TaskAdmitted(t *neon.Task) {
	ts.rotation = append(ts.rotation, t)
	ts.admitGate.Broadcast()
}

// TaskExited implements neon.Scheduler.
func (ts *Timeslice) TaskExited(t *neon.Task) {
	for i, x := range ts.rotation {
		if x == t {
			ts.rotation = append(ts.rotation[:i], ts.rotation[i+1:]...)
			if ts.next > i {
				ts.next--
			}
			break
		}
	}
	delete(ts.overuse, t)
	if ts.holder == t {
		ts.holder = nil
	}
}

// ChannelActivated implements neon.Scheduler: protection is the default;
// under the disengaged variant the holder's own new channels are mapped.
func (ts *Timeslice) ChannelActivated(cs *neon.ChannelState) {
	direct := ts.disengaged && ts.holder == cs.Task
	cs.Ch.Reg.SetPresent(direct)
}

// HandleFault implements neon.Scheduler: out-of-turn submissions block
// until the submitting task holds the token.
func (ts *Timeslice) HandleFault(p *sim.Proc, t *neon.Task, cs *neon.ChannelState) {
	p.WaitFor(t.Gate(), func() bool { return !t.Alive || ts.holder == t })
}

// run is the scheduler control process: grant, sleep, re-engage, drain,
// charge, rotate.
func (ts *Timeslice) run(p *sim.Proc) {
	for {
		t := ts.pick()
		if t == nil {
			p.Wait(ts.admitGate)
			continue
		}

		ts.holder = t
		ts.SlicesGranted++
		if ts.disengaged {
			ts.k.Disengage(t)
		}
		t.Gate().Broadcast()

		deadline := p.Now().Add(ts.slice)
		p.Sleep(ts.slice)

		ts.holder = nil
		if t.Alive {
			if ts.disengaged {
				ts.k.Engage(t)
			}
			res := ts.k.Drain(p, []*neon.Task{t})
			if t.Alive {
				ts.overuse[t] += PerWeight(WorkFor(res.Overuse(t, deadline), ts.speed), t.ShareWeight())
			}
		}
	}
}

// pick selects the next token holder, consuming skipped turns of
// overusers. A skipped turn costs its task one slice of accrued overuse
// and passes the token on immediately. Returns nil when no tasks exist.
func (ts *Timeslice) pick() *neon.Task {
	if len(ts.rotation) == 0 {
		return nil
	}
	// Overuse is finite, so this terminates: every inspection of an
	// ineligible task decrements its debt by a full slice.
	for {
		if len(ts.rotation) == 0 {
			return nil
		}
		if ts.next >= len(ts.rotation) {
			ts.next = 0
		}
		t := ts.rotation[ts.next]
		ts.next++
		if !t.Alive {
			continue
		}
		if quantum := ts.sliceWork(); ts.overuse[t] >= quantum {
			ts.overuse[t] -= quantum
			ts.TurnsSkipped++
			continue
		}
		return t
	}
}

var _ neon.Scheduler = (*Timeslice)(nil)
