package core

import (
	"time"

	"repro/internal/neon"
	"repro/internal/sim"
)

// DefaultOracleInterval matches one full DFQ engagement+free-run cycle.
const DefaultOracleInterval = 30 * time.Millisecond

// OracleFairQueueing is the Section 6.1 ablation: disengaged fair
// queueing as it would exist with vendor cooperation. The device exports
// per-context busy time (gpu.Context.BusyTime), so the scheduler needs no
// barriers, no draining, and no sampling runs — it simply reads the
// counters every interval, updates virtual times with *true* usage, and
// denies tasks that have run too far ahead. Comparing it with
// DisengagedFairQueueing isolates the cost of software estimation: the
// glxgears and oclParticles anomalies disappear.
type OracleFairQueueing struct {
	interval sim.Duration

	k         *neon.Kernel
	speed     float64 // device class speed factor, set at Start
	st        map[*neon.Task]*oracleTask
	admitGate *sim.Gate
	sysVT     Work

	// Intervals counts completed accounting rounds, for tests.
	Intervals int64
	// Denials counts task-intervals denied, for tests.
	Denials int64
}

type oracleTask struct {
	vt       Work
	lastBusy sim.Duration
	denied   bool
}

// NewOracleFairQueueing returns the hardware-statistics scheduler.
func NewOracleFairQueueing(interval sim.Duration) *OracleFairQueueing {
	if interval <= 0 {
		interval = DefaultOracleInterval
	}
	return &OracleFairQueueing{interval: interval, st: make(map[*neon.Task]*oracleTask)}
}

// Name implements neon.Scheduler.
func (o *OracleFairQueueing) Name() string { return "oracle-fair-queueing" }

// VirtualTime returns the task's virtual time in normalized work, for
// tests.
func (o *OracleFairQueueing) VirtualTime(t *neon.Task) Work {
	if s := o.st[t]; s != nil {
		return s.vt
	}
	return 0
}

// Denied reports whether the task is currently excluded.
func (o *OracleFairQueueing) Denied(t *neon.Task) bool {
	s := o.st[t]
	return s != nil && s.denied
}

// Start implements neon.Scheduler.
func (o *OracleFairQueueing) Start(k *neon.Kernel) {
	o.k = k
	o.speed = k.Device().ClassSpeed()
	o.admitGate = k.Engine().NewGate("oracle-admit")
	k.Engine().Spawn("sched/oracle", o.run)
}

// TaskAdmitted implements neon.Scheduler.
func (o *OracleFairQueueing) TaskAdmitted(t *neon.Task) {
	o.st[t] = &oracleTask{vt: o.sysVT}
	o.admitGate.Broadcast()
}

// TaskExited implements neon.Scheduler.
func (o *OracleFairQueueing) TaskExited(t *neon.Task) { delete(o.st, t) }

// ChannelActivated implements neon.Scheduler.
func (o *OracleFairQueueing) ChannelActivated(cs *neon.ChannelState) {
	cs.Ch.Reg.SetPresent(!o.Denied(cs.Task))
}

// HandleFault implements neon.Scheduler: only denied tasks ever fault,
// and they wait out the interval.
func (o *OracleFairQueueing) HandleFault(p *sim.Proc, t *neon.Task, cs *neon.ChannelState) {
	p.WaitFor(t.Gate(), func() bool { return !t.Alive || !o.Denied(t) })
}

// run reads hardware usage counters each interval and updates the
// fair-queueing state. No draining or sampling is ever needed.
func (o *OracleFairQueueing) run(p *sim.Proc) {
	for {
		live := o.k.Tasks()
		if len(live) == 0 {
			p.Wait(o.admitGate)
			continue
		}
		p.Sleep(o.interval)
		p.Sleep(o.k.Costs().SchedulerCompute)
		o.Intervals++
		o.k.EnforceRunLimit()

		// Step 1: charge true per-task usage, read from the device,
		// normalized to work units at the device's class speed, and
		// divided by the task's fair-share weight.
		var active []*neon.Task
		for _, t := range o.k.Tasks() {
			s := o.state(t)
			busy := t.BusyTime()
			delta := busy - s.lastBusy
			s.lastBusy = busy
			s.vt += PerWeight(WorkFor(delta, o.speed), t.ShareWeight())
			if delta > 0 || t.PendingRequests() > 0 || t.Gate().Waiters() > 0 {
				active = append(active, t)
			}
		}
		if len(active) > 0 {
			minVT := o.st[active[0]].vt
			for _, t := range active[1:] {
				if o.st[t].vt < minVT {
					minVT = o.st[t].vt
				}
			}
			if minVT > o.sysVT {
				o.sysVT = minVT
			}
		}

		// Step 2: idle tasks forfeit unused credit.
		activeSet := make(map[*neon.Task]bool, len(active))
		for _, t := range active {
			activeSet[t] = true
		}
		for _, t := range o.k.Tasks() {
			s := o.state(t)
			if !activeSet[t] && s.vt < o.sysVT {
				s.vt = o.sysVT
			}
		}

		// Step 3: deny tasks too far ahead; admit the rest.
		horizon := WorkFor(o.interval, o.speed)
		for _, t := range o.k.Tasks() {
			s := o.state(t)
			denied := s.vt-o.sysVT >= horizon
			if denied && !s.denied {
				o.Denials++
				o.k.Engage(t)
			}
			if !denied && s.denied {
				o.k.Disengage(t)
			}
			s.denied = denied
			if !denied {
				t.Gate().Broadcast()
			}
		}
	}
}

func (o *OracleFairQueueing) state(t *neon.Task) *oracleTask {
	s := o.st[t]
	if s == nil {
		s = &oracleTask{vt: o.sysVT}
		o.st[t] = s
	}
	return s
}

var _ neon.Scheduler = (*OracleFairQueueing)(nil)
