package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// stormLedgers drives the indexed and linear ledgers through one
// identical randomized engage/charge/disengage/idle storm and fails on
// the first observable divergence. The op mix mirrors a DFQ cycle:
// activate a working set, charge shares, advance the system virtual
// time, idle some flows out, churn a few registrations (exercising slot
// recycling on the index).
func stormLedgers(t *testing.T, tenants, cycles int, seed int64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	idx := NewDFQLedger(IndexedLedger)
	lin := NewDFQLedger(LinearLedger)
	idx.Grow(tenants)

	idxIDs := make([]FlowID, tenants)
	linIDs := make([]FlowID, tenants)
	for i := 0; i < tenants; i++ {
		idxIDs[i] = idx.Add()
		linIDs[i] = lin.Add()
	}

	working := 64
	if working > tenants {
		working = tenants
	}
	picks := make([]int, working)
	for c := 0; c < cycles; c++ {
		// Engage a working set.
		for k := range picks {
			i := rng.Intn(tenants)
			picks[k] = i
			idx.SetActive(idxIDs[i], true)
			lin.SetActive(linIDs[i], true)
		}
		// Charge weighted shares (identical integer deltas on both).
		for _, i := range picks {
			delta := PerWeight(WorkFor(sim.Duration(1+rng.Intn(500))*time.Microsecond, 1),
				float64(1+i%4))
			idx.Charge(idxIDs[i], delta)
			lin.Charge(linIDs[i], delta)
		}
		// Idle a few flows out; remove/re-add a couple (recycling).
		for k := 0; k < 8; k++ {
			i := rng.Intn(tenants)
			idx.SetActive(idxIDs[i], false)
			lin.SetActive(linIDs[i], false)
		}
		if c%7 == 0 {
			i := rng.Intn(tenants)
			idx.Remove(idxIDs[i])
			lin.Remove(linIDs[i])
			idxIDs[i] = idx.Add()
			linIDs[i] = lin.Add()
		}

		if a, b := idx.AdvanceSysVT(), lin.AdvanceSysVT(); a != b {
			t.Fatalf("cycle %d: sysVT diverged: indexed %d, linear %d", c, a, b)
		}
		if a, b := idx.ActiveLen(), lin.ActiveLen(); a != b {
			t.Fatalf("cycle %d: active population diverged: indexed %d, linear %d", c, a, b)
		}
		// Spot-check a sample of flows every cycle.
		for k := 0; k < 8; k++ {
			i := rng.Intn(tenants)
			compareFlow(t, c, i, idx, idxIDs[i], lin, linIDs[i])
		}
	}
	// Full sweep at the end.
	for i := 0; i < tenants; i++ {
		compareFlow(t, cycles, i, idx, idxIDs[i], lin, linIDs[i])
	}
	if a, b := idx.Len(), lin.Len(); a != b {
		t.Fatalf("final population diverged: indexed %d, linear %d", a, b)
	}
}

func compareFlow(t *testing.T, cycle, i int, idx DFQLedger, idxID FlowID, lin DFQLedger, linID FlowID) {
	t.Helper()
	if a, b := idx.VT(idxID), lin.VT(linID); a != b {
		t.Fatalf("cycle %d flow %d: VT diverged: indexed %d, linear %d", cycle, i, a, b)
	}
	if a, b := idx.Lead(idxID), lin.Lead(linID); a != b {
		t.Fatalf("cycle %d flow %d: lead diverged: indexed %d, linear %d", cycle, i, a, b)
	}
	if a, b := idx.Active(idxID), lin.Active(linID); a != b {
		t.Fatalf("cycle %d flow %d: activity diverged: indexed %v, linear %v", cycle, i, a, b)
	}
}

// TestDifferentialDFQIndex pins that the indexed ledger (min-VT heap,
// lazy idle catch-up) is observably identical to the linear ledger (the
// pre-index scan restated) under randomized storms at 10^2..10^4
// tenants: same virtual times, same leads, same system virtual time,
// same active populations, cycle by cycle. The table-level half of this
// pin lives in internal/exp's TestDifferentialLedgerTables.
func TestDifferentialDFQIndex(t *testing.T) {
	for _, tenants := range []int{100, 1000, 10000} {
		cycles := 400
		if tenants >= 10000 {
			cycles = 120 // the linear ledger is O(tenants) per cycle
		}
		for rep := 0; rep < 3; rep++ {
			t.Run(fmt.Sprintf("tenants%d/rep%d", tenants, rep), func(t *testing.T) {
				stormLedgers(t, tenants, cycles, sim.StreamSeed(1, "dfq-index-diff", tenants+rep))
			})
		}
	}
}

// TestFlowIndexStaleHandles pins the generation discipline: a handle
// whose slot has been recycled must be dead on every operation, and
// must not alias the slot's new occupant.
func TestFlowIndexStaleHandles(t *testing.T) {
	x := NewFlowIndex()
	old := x.Add()
	x.SetActive(old, true)
	x.Charge(old, 100)
	x.Remove(old)
	fresh := x.Add() // recycles the slot
	if x.Live(old) {
		t.Fatal("stale handle reports live after its slot was recycled")
	}
	if !x.Live(fresh) {
		t.Fatal("recycled slot's new handle must be live")
	}
	x.SetActive(old, true)
	x.Charge(old, 999)
	x.Remove(old)
	if x.Active(fresh) {
		t.Fatal("operations through a stale handle leaked onto the slot's new occupant")
	}
	if got := x.VT(fresh); got != 0 {
		t.Fatalf("stale Charge leaked onto recycled slot: VT = %d", got)
	}
	if x.Len() != 1 {
		t.Fatalf("population = %d after stale Remove, want 1", x.Len())
	}
}

// FuzzDFQIndexOps drives the FlowIndex through an arbitrary encoded
// op-sequence (two bytes per op: opcode, argument) and checks the
// structural invariants after every step: heap ordering, heap-position
// consistency, slab-generation safety on recycling (stale handles stay
// in the pool and are replayed), and leak-free population accounting.
func FuzzDFQIndexOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 2, 0, 3, 50, 4, 0, 1, 0, 0, 0, 2, 3, 5, 0})
	f.Add([]byte{0, 0, 2, 0, 3, 255, 3, 255, 4, 0, 2, 1, 4, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		x := NewFlowIndex()
		var handles []FlowID // includes stale handles on purpose
		live := 0
		for n := 0; n+1 < len(data) && n < 2048; n += 2 {
			op, arg := data[n]%6, int(data[n+1])
			switch op {
			case 0:
				handles = append(handles, x.Add())
				live++
			case 1: // remove (possibly through a stale handle)
				if len(handles) > 0 {
					id := handles[arg%len(handles)]
					if x.Live(id) {
						live--
					}
					x.Remove(id)
				}
			case 2, 3: // engage / disengage
				if len(handles) > 0 {
					x.SetActive(handles[arg%len(handles)], op == 2)
				}
			case 4:
				if len(handles) > 0 {
					x.Charge(handles[arg%len(handles)], Work(arg)*1000)
				}
			case 5:
				before := x.SysVT()
				if after := x.AdvanceSysVT(); after < before {
					t.Fatalf("sysVT moved backward: %d -> %d", before, after)
				}
			}
			x.checkInvariants()
			if x.Len() != live {
				t.Fatalf("population leak: index reports %d live flows, ops imply %d", x.Len(), live)
			}
			if x.Len() != x.ActiveLen()+x.IdleLen() {
				t.Fatalf("active/idle split leak: %d != %d + %d", x.Len(), x.ActiveLen(), x.IdleLen())
			}
		}
		// Every live flow must report a coherent ledger position.
		for _, id := range handles {
			if !x.Live(id) {
				continue
			}
			if x.VT(id) < x.SysVT() && !x.Active(id) {
				t.Fatalf("idle flow reads VT %d below sysVT %d", x.VT(id), x.SysVT())
			}
			if x.Lead(id) < 0 {
				t.Fatalf("negative lead %d", x.Lead(id))
			}
		}
	})
}
