package gpu

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/sim"
)

// TestAllGraphicsNoLivelock: when every ready channel is a penalized
// graphics channel, the arbiter must serve one rather than idle.
func TestAllGraphicsNoLivelock(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GraphicsPenalty = 3
	d := New(e, cfg)
	c1 := mustCtx(t, d, 1)
	c2 := mustCtx(t, d, 2)
	g1 := mustChan(t, d, c1, Graphics)
	g2 := mustChan(t, d, c2, Graphics)
	submit(e, g1, 10*time.Microsecond, Graphics)
	submit(e, g2, 10*time.Microsecond, Graphics)
	e.RunFor(time.Millisecond)
	if g1.Completions != 1 || g2.Completions != 1 {
		t.Fatalf("graphics-only workload starved: %d/%d", g1.Completions, g2.Completions)
	}
}

// TestPenaltySkipsResetWhenServed: a penalized channel eventually served
// alone must not carry stale skip counts that starve it later.
func TestPenaltyEventuallyServes(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GraphicsPenalty = 3
	d := New(e, cfg)
	cg := mustCtx(t, d, 1)
	cc := mustCtx(t, d, 2)
	gfx := mustChan(t, d, cg, Graphics)
	cmp := mustChan(t, d, cc, Compute)
	e.Spawn("both", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			r := gfx.Stage(10*time.Microsecond, Graphics)
			gfx.Reg.Store(p, r.Ref)
			r2 := cmp.Stage(10*time.Microsecond, Compute)
			cmp.Reg.Store(p, r2.Ref)
		}
	})
	e.Run()
	if gfx.Completions != 30 || cmp.Completions != 30 {
		t.Fatalf("work lost: gfx=%d cmp=%d", gfx.Completions, cmp.Completions)
	}
}

// TestChannelRemovalMidBacklog: killing a context while its channel has
// a backlog must not derail service of the other channels.
func TestChannelRemovalMidBacklog(t *testing.T) {
	e, d := testDev(t)
	doomed := mustCtx(t, d, 1)
	healthy := mustCtx(t, d, 2)
	dch := mustChan(t, d, doomed, Compute)
	hch := mustChan(t, d, healthy, Compute)
	e.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			r := dch.Stage(50*time.Microsecond, Compute)
			dch.Reg.Store(p, r.Ref)
			r2 := hch.Stage(50*time.Microsecond, Compute)
			hch.Reg.Store(p, r2.Ref)
		}
	})
	e.After(200*time.Microsecond, func() { d.KillContext(doomed) })
	e.Run()
	if hch.Completions != 20 {
		t.Fatalf("healthy channel completed %d/20 after co-runner kill", hch.Completions)
	}
}

// TestKillDuringContextSwitch: a context killed while the engine is
// switching to it must not crash or execute dead work.
func TestKillDuringContextSwitch(t *testing.T) {
	e, d := testDev(t)
	a := mustCtx(t, d, 1)
	b := mustCtx(t, d, 2)
	ach := mustChan(t, d, a, Compute)
	bch := mustChan(t, d, b, Compute)
	submit(e, ach, 20*time.Microsecond, Compute)
	victim := submit(e, bch, 20*time.Microsecond, Compute)
	// Kill b exactly while the engine should be switching to it.
	e.After(sim.Duration(21*time.Microsecond+d.Costs().ContextSwitch), func() {
		d.KillContext(b)
	})
	e.Run()
	if victim.Completed != 0 && victim.Started != 0 && !victim.Aborted {
		// Either it squeaked through before the kill (fine) or it must
		// have been aborted — it must not be lost in limbo.
		t.Fatalf("victim in limbo: %+v", victim)
	}
}

// TestDMAKillAbort: aborting an in-flight DMA transfer via context kill.
func TestDMAKillAbort(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	dma := mustChan(t, d, ctx, DMA)
	r := submit(e, dma, Forever, DMA)
	e.RunFor(time.Millisecond)
	if r.IsDone() {
		t.Fatal("infinite DMA finished early")
	}
	d.KillContext(ctx)
	e.RunFor(time.Millisecond)
	if !r.Aborted {
		t.Fatal("in-flight DMA not aborted by exit protocol")
	}
}

// TestIdleEngineWakesOnSubmit: the engine must park when idle and wake
// promptly for new work (no busy polling, no lost doorbells).
func TestIdleEngineWakesOnSubmit(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	e.RunFor(10 * time.Millisecond) // long idle period
	r := submit(e, ch, 10*time.Microsecond, Compute)
	e.RunFor(time.Millisecond)
	if !r.IsDone() {
		t.Fatal("doorbell after idle period lost")
	}
	wake := r.Started.Sub(r.Submitted)
	if wake > d.Costs().ContextSwitch+time.Microsecond {
		t.Fatalf("engine took %v to pick up work after idling", wake)
	}
}

// TestStagedRequestsSurviveUnrelatedDoorbell: ringing with an older ref
// must not submit newer staged work.
func TestStagedRequestsSurviveUnrelatedDoorbell(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	r1 := ch.Stage(10*time.Microsecond, Compute)
	_ = ch.Stage(10*time.Microsecond, Compute) // staged, never rung
	e.Spawn("s", func(p *sim.Proc) { ch.Reg.Store(p, r1.Ref) })
	e.Run()
	if got := len(ch.StagedRequests()); got != 1 {
		t.Fatalf("staged = %d, want the unrung request to remain", got)
	}
	if ch.LastSubmittedRef != r1.Ref {
		t.Fatalf("LastSubmittedRef = %d, want %d", ch.LastSubmittedRef, r1.Ref)
	}
}

// TestClassSpeedScalesExecution: the same nominal request occupies a
// consumer-class engine twice as long and a nextgen engine half as long
// as the reference, and Forever never completes regardless of class.
func TestClassSpeedScalesExecution(t *testing.T) {
	runOne := func(class string) sim.Duration {
		e := sim.NewEngine()
		cfg := DefaultConfig()
		if class != "" {
			c, err := cost.ClassByName(class)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Class = c
		}
		d := New(e, cfg)
		ctx := mustCtx(t, d, 1)
		ch := mustChan(t, d, ctx, Compute)
		r := submit(e, ch, 100*time.Microsecond, Compute)
		e.RunFor(10 * time.Millisecond)
		if !r.IsDone() {
			t.Fatalf("class %q: request never completed", class)
		}
		return r.Completed.Sub(r.Started)
	}
	ref := runOne("")
	if got := runOne("k20"); got != ref {
		t.Errorf("k20 execution %v differs from zero-class reference %v", got, ref)
	}
	if got := runOne("consumer"); got != 2*ref {
		t.Errorf("consumer execution = %v, want %v", got, 2*ref)
	}
	if got := runOne("nextgen"); got != ref/2 {
		t.Errorf("nextgen execution = %v, want %v", got, ref/2)
	}

	// Forever on the fastest class still never finishes.
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Class, _ = cost.ClassByName("nextgen")
	d := New(e, cfg)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	r := submit(e, ch, Forever, Compute)
	e.RunFor(50 * time.Millisecond)
	if r.IsDone() {
		t.Fatal("Forever request completed on a fast class")
	}
	if d.ClassSpeed() != 2.0 {
		t.Fatalf("ClassSpeed = %v, want 2.0", d.ClassSpeed())
	}
}
