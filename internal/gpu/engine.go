package gpu

import "repro/internal/sim"

// engine is one execution unit of the device. The main engine runs
// compute and graphics requests, one at a time, cycling round-robin among
// channels with pending requests and paying a context-switch cost between
// contexts. The DMA engine runs transfers concurrently with the main
// engine, which is how direct-access concurrency efficiency can exceed
// 1.0 in the paper's Figure 7.
//
// The engine is an event-driven state machine, not a process: it is
// always in exactly one of four states — idle (kick schedules a
// dispatch), switching (a context-switch timer is in flight), executing
// (a completion timer is in flight, current != nil), or completing (the
// completion event for the current instant is already scheduled). The
// hot path therefore costs two events per request (completion timer +
// completion processing) and no goroutine handoffs.
//
// Completion is deliberately two events, mirroring the retired process
// version (completion timer opened a gate, whose broadcast scheduled the
// engine's wakeup at the same instant): bookkeeping must stay in the
// second event so that model code already queued at the completion
// instant — kernel polls reading RefCount, sampling watchers — still
// observes pre-completion state, and so that an abort landing between
// the two events still converts the request into an aborted one.
type engine struct {
	dev      *Device
	name     string
	mainUnit bool // true for the exec engine: context-switch costs + graphics penalty

	channels []*Channel
	rr       int

	idle            bool     // parked; the next kick schedules a dispatch
	switching       *Channel // context-switch target while its timer is in flight
	current         *Request
	completePending bool // completion event scheduled for the current instant
	curTimer        sim.Timer
	lastCtx         *Context

	busy      sim.Duration
	busyStart sim.Time

	// Pre-bound state-transition closures, allocated once here so the
	// per-request path schedules them without allocating.
	dispatchFn func()
	timerFn    func()
	completeFn func()
	switchFn   func()
}

func newEngine(dev *Device, name string, mainUnit bool) *engine {
	en := &engine{dev: dev, name: name, mainUnit: mainUnit, idle: true}
	en.dispatchFn = en.dispatch
	en.timerFn = en.onTimer
	en.completeFn = en.doComplete
	en.switchFn = en.switchDone
	return en
}

func (en *engine) addChannel(ch *Channel) {
	en.channels = append(en.channels, ch)
}

func (en *engine) removeChannel(ch *Channel) {
	for i, c := range en.channels {
		if c == ch {
			en.channels = append(en.channels[:i], en.channels[i+1:]...)
			break
		}
	}
	if en.rr >= len(en.channels) {
		en.rr = 0
	}
}

// kick wakes the engine after new work arrives. Only an idle engine
// reacts; in every other state the current timer or pending completion
// event re-enters dispatch on its own. A kick from the tail of a plain
// event (the async doorbell delivery) into an otherwise-empty instant
// folds the dispatch inline — unobservable, since the scheduled
// dispatch would have run immediately next with nothing in between; a
// kick from process context always schedules, because the running
// process's continuation belongs to this instant too.
func (en *engine) kick() {
	if !en.idle {
		return
	}
	en.idle = false
	e := en.dev.eng
	if !e.InProcContext() && e.NextAfterNow() {
		en.dispatch()
		return
	}
	e.Schedule(e.Now(), en.dispatchFn)
}

// dispatch picks the next channel and either starts its head request,
// begins a context switch toward it, or parks the engine.
func (en *engine) dispatch() {
	ch := en.pickNext()
	if ch == nil {
		en.idle = true
		return
	}
	if en.mainUnit && ch.Ctx != en.lastCtx {
		en.switching = ch
		en.dev.eng.After(en.dev.cost.ContextSwitch, en.switchFn)
		return
	}
	en.start(ch.popRing())
}

// switchDone completes a context switch. The world may have changed
// during the switch (context killed, ring drained); re-dispatch then.
func (en *engine) switchDone() {
	ch := en.switching
	en.switching = nil
	en.lastCtx = ch.Ctx
	if ch.Ctx.dead || len(ch.ring) == ch.head {
		en.dispatch()
		return
	}
	en.start(ch.popRing())
}

// ready reports whether a channel has runnable work.
func ready(ch *Channel) bool { return !ch.Ctx.dead && len(ch.ring) > ch.head }

// pickNext chooses the next channel to serve. Uniform round-robin, except
// that with GraphicsPenalty > 1 a graphics channel competing with
// non-graphics work is only served once per penalty passes — the
// non-uniform internal arbitration the paper observed for OpenGL clients.
func (en *engine) pickNext() *Channel {
	n := len(en.channels)
	if n == 0 {
		return nil
	}
	penalty := en.dev.cfg.GraphicsPenalty
	hasNonGfx := false
	if en.mainUnit && penalty > 1 {
		for _, ch := range en.channels {
			if ready(ch) && ch.Kind != Graphics {
				hasNonGfx = true
				break
			}
		}
	}
	fallback := -1
	for i := 0; i < n; i++ {
		idx := (en.rr + i) % n
		ch := en.channels[idx]
		if !ready(ch) {
			continue
		}
		if fallback < 0 {
			fallback = idx
		}
		if en.mainUnit && penalty > 1 && ch.Kind == Graphics && hasNonGfx {
			if ch.skips < penalty-1 {
				ch.skips++
				continue
			}
			ch.skips = 0
		}
		en.rr = (idx + 1) % n
		return ch
	}
	if fallback >= 0 {
		// Every ready channel was a penalized graphics channel this pass;
		// serve one anyway rather than idling a busy device.
		en.rr = (fallback + 1) % n
		return en.channels[fallback]
	}
	return nil
}

// start begins executing one request. The nominal request size is scaled
// by the device's class speed: a consumer-class card takes longer over
// the same request than the reference K20. Requests of size Forever
// never finish on their own: the engine occupies the device until the
// owning context is killed.
func (en *engine) start(r *Request) {
	r.Started = en.dev.eng.Now()
	en.current = r
	en.busyStart = r.Started
	if r.Size < Forever {
		en.curTimer = en.dev.eng.After(en.dev.scaled(r.Size), en.timerFn)
	} else {
		en.curTimer = sim.Timer{}
	}
}

// onTimer fires when the current request's execution time elapses. It
// only schedules the completion event at the same instant — see the
// two-event completion note on the engine type. When no other event is
// queued for this instant the deferral is unobservable (nothing could
// run in between), so completion processing runs inline instead.
func (en *engine) onTimer() {
	en.completePending = true
	if en.dev.eng.NextAfterNow() {
		en.doComplete()
		return
	}
	en.dev.eng.Schedule(en.dev.eng.Now(), en.completeFn)
}

// doComplete retires the current request (completed or aborted) and
// dispatches the next one.
func (en *engine) doComplete() {
	en.completePending = false
	r := en.current
	end := en.dev.eng.Now()
	en.busy += end.Sub(r.Started)
	r.ch.Ctx.BusyTime += end.Sub(r.Started)
	en.current = nil
	en.curTimer = sim.Timer{}
	if r.Aborted {
		r.finish()
	} else {
		r.Completed = end
		r.ch.RefCount = r.Ref
		r.ch.Completions++
		r.finish()
	}
	if ob := en.dev.CompletionObserver; ob != nil {
		// Between retirement and the next dispatch the ring/staged state
		// is settled, so an observer may detach idle contexts here.
		ob(r)
	}
	en.dispatch()
}

// abortIfContext aborts the in-flight request if it belongs to ctx. If
// the completion event is already queued for this instant, the abort
// flag alone is enough: doComplete re-checks it.
func (en *engine) abortIfContext(ctx *Context) {
	if en.current != nil && en.current.ch.Ctx == ctx {
		en.current.Aborted = true
		en.curTimer.Stop() // inert for Forever requests (zero Timer)
		if !en.completePending {
			en.completePending = true
			en.dev.eng.Schedule(en.dev.eng.Now(), en.completeFn)
		}
	}
}

func (en *engine) totalBusy() sim.Duration {
	b := en.busy
	if en.current != nil {
		b += en.dev.eng.Now().Sub(en.busyStart)
	}
	return b
}
