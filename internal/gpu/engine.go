package gpu

import "repro/internal/sim"

// engine is one execution unit of the device. The main engine runs
// compute and graphics requests, one at a time, cycling round-robin among
// channels with pending requests and paying a context-switch cost between
// contexts. The DMA engine runs transfers concurrently with the main
// engine, which is how direct-access concurrency efficiency can exceed
// 1.0 in the paper's Figure 7.
type engine struct {
	dev      *Device
	name     string
	mainUnit bool // true for the exec engine: context-switch costs + graphics penalty

	channels []*Channel
	rr       int
	work     *sim.Gate

	current  *Request
	curGate  *sim.Gate
	curTimer sim.Timer
	lastCtx  *Context

	busy      sim.Duration
	busyStart sim.Time

	proc *sim.Proc
}

func newEngine(dev *Device, name string, mainUnit bool) *engine {
	en := &engine{dev: dev, name: name, mainUnit: mainUnit}
	en.work = dev.eng.NewGate(name + "-work")
	en.proc = dev.eng.Spawn(name, en.run)
	return en
}

func (en *engine) addChannel(ch *Channel) {
	en.channels = append(en.channels, ch)
}

func (en *engine) removeChannel(ch *Channel) {
	for i, c := range en.channels {
		if c == ch {
			en.channels = append(en.channels[:i], en.channels[i+1:]...)
			break
		}
	}
	if en.rr >= len(en.channels) {
		en.rr = 0
	}
}

// kick wakes the engine after new work arrives.
func (en *engine) kick() { en.work.Broadcast() }

func (en *engine) run(p *sim.Proc) {
	for {
		ch := en.pickNext()
		if ch == nil {
			p.Wait(en.work)
			continue
		}
		if en.mainUnit && ch.Ctx != en.lastCtx {
			p.Sleep(en.dev.cost.ContextSwitch)
			en.lastCtx = ch.Ctx
			// The world may have changed during the switch (context
			// killed, ring drained); start over.
			if ch.Ctx.dead || len(ch.ring) == 0 {
				continue
			}
		}
		req := ch.ring[0]
		ch.ring = ch.ring[1:]
		en.execute(p, req)
	}
}

// ready reports whether a channel has runnable work.
func ready(ch *Channel) bool { return !ch.Ctx.dead && len(ch.ring) > 0 }

// pickNext chooses the next channel to serve. Uniform round-robin, except
// that with GraphicsPenalty > 1 a graphics channel competing with
// non-graphics work is only served once per penalty passes — the
// non-uniform internal arbitration the paper observed for OpenGL clients.
func (en *engine) pickNext() *Channel {
	n := len(en.channels)
	if n == 0 {
		return nil
	}
	penalty := en.dev.cfg.GraphicsPenalty
	hasNonGfx := false
	if en.mainUnit && penalty > 1 {
		for _, ch := range en.channels {
			if ready(ch) && ch.Kind != Graphics {
				hasNonGfx = true
				break
			}
		}
	}
	fallback := -1
	for i := 0; i < n; i++ {
		idx := (en.rr + i) % n
		ch := en.channels[idx]
		if !ready(ch) {
			continue
		}
		if fallback < 0 {
			fallback = idx
		}
		if en.mainUnit && penalty > 1 && ch.Kind == Graphics && hasNonGfx {
			if ch.skips < penalty-1 {
				ch.skips++
				continue
			}
			ch.skips = 0
		}
		en.rr = (idx + 1) % n
		return ch
	}
	if fallback >= 0 {
		// Every ready channel was a penalized graphics channel this pass;
		// serve one anyway rather than idling a busy device.
		en.rr = (fallback + 1) % n
		return en.channels[fallback]
	}
	return nil
}

// execute runs one request to completion (or abort). The nominal
// request size is scaled by the device's class speed: a consumer-class
// card takes longer over the same request than the reference K20.
// Requests of size Forever never finish on their own: the engine
// occupies the device until the owning context is killed.
func (en *engine) execute(p *sim.Proc, r *Request) {
	r.Started = p.Now()
	en.current = r
	en.busyStart = r.Started
	g := en.dev.eng.NewGate("exec-done")
	if r.Size < Forever {
		en.curTimer = en.dev.eng.After(en.dev.scaled(r.Size), g.Open)
	} else {
		en.curTimer = sim.Timer{}
	}
	en.curGate = g
	p.Wait(g)

	end := p.Now()
	en.busy += end.Sub(r.Started)
	r.ch.Ctx.BusyTime += end.Sub(r.Started)
	en.current = nil
	en.curGate = nil
	en.curTimer = sim.Timer{}
	if r.Aborted {
		r.finish()
		return
	}
	r.Completed = end
	r.ch.RefCount = r.Ref
	r.ch.Completions++
	r.finish()
}

// abortIfContext aborts the in-flight request if it belongs to ctx.
func (en *engine) abortIfContext(ctx *Context) {
	if en.current != nil && en.current.ch.Ctx == ctx {
		en.current.Aborted = true
		en.curTimer.Stop() // inert for Forever requests (zero Timer)
		en.curGate.Open()
	}
}

func (en *engine) totalBusy() sim.Duration {
	b := en.busy
	if en.current != nil {
		b += en.dev.eng.Now().Sub(en.busyStart)
	}
	return b
}
