// Package gpu models the computational accelerator of the paper: an
// Nvidia-Kepler-class GPU that accepts work through per-channel request
// queues mapped into application address spaces.
//
// The model reproduces every device behaviour the paper's schedulers
// depend on or are confounded by:
//
//   - per-context channels, each a FIFO of requests with a channel
//     register (doorbell) page and a reference counter the device writes
//     back at each request completion;
//   - an execution engine that cycles round-robin among channels with
//     pending requests, paying a context-switch cost between contexts —
//     including the configurable graphics-arbitration penalty that causes
//     the paper's glxgears anomaly under Disengaged Fair Queueing;
//   - a DMA engine that overlaps transfers with computation (the source
//     of >1.0 concurrency efficiency in Figure 7);
//   - Turing-complete requests: a request may run forever, and the only
//     remedy is the exit protocol (killing the owning context);
//   - finite resources: a 48-context limit and an onboard memory
//     allocator (the Section 6.3 denial-of-service surface).
package gpu

import (
	"errors"
	"fmt"

	"repro/internal/cost"
	"repro/internal/mmio"
	"repro/internal/sim"
)

// TaskID identifies the resource principal (OS process) owning a context.
type TaskID int

// Kind classifies requests and the channels that carry them.
type Kind int

const (
	// Compute is a CUDA/OpenCL-style compute request.
	Compute Kind = iota
	// Graphics is a rendering request.
	Graphics
	// DMA is a host/device transfer; it runs on the copy engine and may
	// overlap with Compute/Graphics execution.
	DMA
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Graphics:
		return "graphics"
	case DMA:
		return "dma"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Forever is a request size that never completes on its own — the
// infinite-loop kernel of the paper's denial-of-service discussion.
const Forever sim.Duration = 1 << 62

// Errors returned by resource allocation.
var (
	ErrNoContexts   = errors.New("gpu: out of contexts")
	ErrNoMemory     = errors.New("gpu: out of device memory")
	ErrContextDead  = errors.New("gpu: context is dead")
	ErrContextBusy  = errors.New("gpu: context has in-flight work")
	ErrDeviceClosed = errors.New("gpu: device closed")
)

// Config sets the device's capacity and arbitration behaviour.
type Config struct {
	// Name identifies the device instance in multi-device fleets
	// ("dev0", "dev1", ...); single-device stacks may leave it empty.
	Name string
	// Class is the device generation (cost.Classes); the zero value is
	// the reference class. Requests of nominal size S occupy a class-c
	// engine for S/c.Speed, and Costs is derived for the class at
	// construction (cost.Model.ForClass).
	Class cost.Class
	// MaxContexts is the number of hardware contexts (48 on the GTX670).
	MaxContexts int
	// MemoryBytes is onboard RAM (2 GiB on the GTX670).
	MemoryBytes int64
	// GraphicsPenalty models non-uniform internal arbitration: a graphics
	// channel is served once for every GraphicsPenalty passes over it when
	// competing with non-graphics channels. 1 means uniform round-robin.
	GraphicsPenalty int
	// Costs is the platform latency model.
	Costs cost.Model
}

// DefaultConfig returns the GTX670-calibrated configuration with uniform
// arbitration.
func DefaultConfig() Config {
	return Config{
		MaxContexts:     48,
		MemoryBytes:     2 << 30,
		GraphicsPenalty: 1,
		Costs:           cost.Default(),
	}
}

// Request is one unit of work submitted to a channel.
type Request struct {
	ID   uint64
	Ref  uint64 // reference-counter value written at completion
	Size sim.Duration
	Kind Kind

	Submitted sim.Time
	Started   sim.Time
	Completed sim.Time
	Aborted   bool

	// Stamp is scratch space for upper layers: the serving layer stores
	// the open-loop arrival time it measures sojourn latency from. The
	// device never reads or writes it.
	Stamp sim.Time

	// OnDone, if set, is invoked exactly once, in engine context, when
	// the request completes or aborts — immediately before the done gate
	// opens. It is the completion hook open-loop serving layers use to
	// stamp latencies without dedicating a waiter process per request.
	// Install it before the request can finish (for a request of nonzero
	// size, any time up to its completion instant).
	OnDone func(*Request)

	ch     *Channel
	done   *sim.Gate
	pinned bool // held beyond completion (sampling watcher); never recycled
	pooled bool // currently on the device free list
}

// finish invokes the completion hook (once) and opens the done gate.
func (r *Request) finish() {
	if fn := r.OnDone; fn != nil {
		r.OnDone = nil
		fn(r)
	}
	r.done.Open()
}

// Channel returns the channel the request was submitted to.
func (r *Request) Channel() *Channel { return r.ch }

// DoneGate returns the gate opened when the request completes or aborts.
// User-space completion polling is modeled as waiting on this gate: it
// costs nothing and involves no kernel interaction, exactly like spinning
// on the reference counter in shared memory.
func (r *Request) DoneGate() *sim.Gate { return r.done }

// IsDone reports whether the request has completed or been aborted.
func (r *Request) IsDone() bool { return r.Completed != 0 || r.Aborted }

// Pin marks the request as held beyond its completion instant — a
// sampling watcher keeps the pointer and reads timing fields after the
// done gate opens — so Release will never return it to the device pool.
func (r *Request) Pin() { r.pinned = true }

// Release returns the request to its device's free pool for reuse by a
// later Stage. The caller asserts that no other component still holds
// the pointer: completion has been fully processed (the done gate opened
// and its waiters ran, or the submitter owned the only reference).
// Pinned requests and double releases are no-ops.
func (r *Request) Release() {
	if r.pinned || r.pooled || r.ch == nil {
		return
	}
	r.pooled = true
	d := r.ch.Ctx.dev
	d.reqFree = append(d.reqFree, r)
}

// Context is a GPU address space holding channels whose requests may be
// causally related. It belongs to one task.
type Context struct {
	ID       int
	Owner    TaskID
	Label    string
	dev      *Device
	channels []*Channel
	dead     bool

	// BusyTime is cumulative engine time consumed by this context's
	// requests. This is the "hardware statistic" the paper wishes vendors
	// exported; only the oracle scheduler variant may read it.
	BusyTime sim.Duration
}

// Dead reports whether the context has been torn down.
func (c *Context) Dead() bool { return c.dead }

// Channels returns the context's channels.
func (c *Context) Channels() []*Channel { return c.channels }

// Channel is a GPU request queue: ring buffer, command buffer, channel
// register page, and reference counter.
type Channel struct {
	ID   int
	Ctx  *Context
	Kind Kind

	// Reg is the doorbell page. Stores to it (possibly faulting) are how
	// requests become visible to the device.
	Reg *mmio.Page

	// RefCount is the device-written reference counter: the Ref of the
	// most recently completed request. The kernel polling service reads
	// it; user space spins on it.
	RefCount uint64

	// LastSubmittedRef is the reference value of the most recent request
	// to actually reach the ring (doorbell rung). In the real system NEON
	// discovers it by scanning the command queue (paying
	// cost.ReengageScan); the field itself is ordinary shared memory.
	LastSubmittedRef uint64

	// Completions counts completed requests on this channel.
	Completions int64

	ring    []*Request // submitted, not yet executed: the live window is ring[head:]
	head    int        // ring consumer index; popped entries are dead, compacted on submit
	staged  []*Request // constructed, doorbell not yet rung
	nextRef uint64
	skips   int // graphics-penalty bookkeeping
}

// Pending returns the number of submitted-but-unfinished requests,
// including one currently executing.
func (ch *Channel) Pending() int {
	n := len(ch.ring) - ch.head
	if cur := ch.engine().current; cur != nil && cur.ch == ch {
		n++
	}
	return n
}

// Idle reports whether the channel is completely quiescent: nothing in
// the ring, nothing staged in the command buffer, not executing, and not
// the target of an in-progress context switch. Only an idle channel may
// be gracefully detached (Device.ReleaseContext).
func (ch *Channel) Idle() bool {
	if len(ch.ring) != ch.head || len(ch.staged) != 0 {
		return false
	}
	en := ch.engine()
	if cur := en.current; cur != nil && cur.ch == ch {
		return false
	}
	if en.switching == ch {
		return false
	}
	return true
}

// popRing removes and returns the head of the ring. The backing array is
// reused once drained, so a steady-state submit/serve cycle does not
// allocate.
func (ch *Channel) popRing() *Request {
	r := ch.ring[ch.head]
	ch.ring[ch.head] = nil
	ch.head++
	if ch.head == len(ch.ring) {
		ch.ring = ch.ring[:0]
		ch.head = 0
	}
	return r
}

func (ch *Channel) engine() *engine {
	if ch.Kind == DMA {
		return ch.Ctx.dev.dmaEngine
	}
	return ch.Ctx.dev.execEngine
}

// Stage constructs a request in the command buffer: user-space work that
// costs nothing at the device. Ring the doorbell (store to Reg) to submit.
// Request objects come from the device's free pool (see Request.Release)
// so the steady-state submit path does not allocate.
func (ch *Channel) Stage(size sim.Duration, kind Kind) *Request {
	d := ch.Ctx.dev
	ch.nextRef++
	r := d.getRequest()
	r.ID = d.nextReqID()
	r.Ref = ch.nextRef
	r.Size = size
	r.Kind = kind
	r.ch = ch
	ch.staged = append(ch.staged, r)
	return r
}

// StagedRequests returns requests constructed in the command buffer whose
// doorbell has not yet been rung. The kernel may inspect this — it is the
// command-buffer scan of paper Section 4 (costed via cost.FaultScan).
func (ch *Channel) StagedRequests() []*Request { return ch.staged }

// Device is the accelerator.
type Device struct {
	eng   *sim.Engine
	cfg   Config
	cost  cost.Model
	speed float64 // class speed factor, cached off cfg.Class

	contexts  map[int]*Context
	nextCtxID int
	nextChID  int
	reqID     uint64

	execEngine *engine // compute + graphics
	dmaEngine  *engine // copy engine

	mem *MemoryPool

	// reqFree is the Request free pool fed by Request.Release; Stage
	// draws from it, reusing the object and its done gate.
	reqFree []*Request

	// SubmitObserver, if set, is informed of every request that reaches
	// the device (after any interception). NEON uses it only in tests;
	// schedulers must not.
	SubmitObserver func(*Request)

	// CompletionObserver, if set, is informed after each request retires
	// on either engine (completion delivered, next dispatch not yet
	// chosen). The virtual-context mux uses it to hand freed hardware
	// contexts to attach waiters. The observer must not retain r: pooled
	// requests may be recycled by the completion it just saw.
	CompletionObserver func(r *Request)
}

// New creates a device and starts its engines on e.
func New(e *sim.Engine, cfg Config) *Device {
	if cfg.MaxContexts <= 0 {
		cfg.MaxContexts = 48
	}
	if cfg.GraphicsPenalty <= 0 {
		cfg.GraphicsPenalty = 1
	}
	cfg.Class = cfg.Class.OrReference()
	d := &Device{
		eng:      e,
		cfg:      cfg,
		cost:     cfg.Costs.ForClass(cfg.Class),
		speed:    cfg.Class.Speed,
		contexts: make(map[int]*Context),
		mem:      NewMemoryPool(cfg.MemoryBytes),
	}
	d.execEngine = newEngine(d, "gpu-exec", true)
	d.dmaEngine = newEngine(d, "gpu-dma", false)
	return d
}

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Name returns the device instance name from its Config.
func (d *Device) Name() string { return d.cfg.Name }

// Config returns the device's effective configuration (after
// construction-time defaulting).
func (d *Device) Config() Config { return d.cfg }

// Class returns the device's generation class.
func (d *Device) Class() cost.Class { return d.cfg.Class }

// ClassSpeed returns the class's relative speed factor: the rate this
// device retires nominal work relative to the reference class. Observed
// device time times ClassSpeed is normalized work.
func (d *Device) ClassSpeed() float64 { return d.speed }

// scaled converts a nominal request size into this device's execution
// time. Forever stays Forever: an infinite kernel does not finish
// faster on a better card.
func (d *Device) scaled(size sim.Duration) sim.Duration {
	if d.speed == 1 || size >= Forever {
		return size
	}
	return sim.Duration(float64(size) / d.speed)
}

// Costs returns the platform latency model in use.
func (d *Device) Costs() cost.Model { return d.cost }

// Memory returns the onboard memory pool.
func (d *Device) Memory() *MemoryPool { return d.mem }

// ContextCount returns the number of live contexts.
func (d *Device) ContextCount() int { return len(d.contexts) }

// Contexts returns the live contexts in creation order.
func (d *Device) Contexts() []*Context {
	out := make([]*Context, 0, len(d.contexts))
	for i := 0; i <= d.nextCtxID; i++ {
		if c, ok := d.contexts[i]; ok {
			out = append(out, c)
		}
	}
	return out
}

func (d *Device) nextReqID() uint64 {
	d.reqID++
	return d.reqID
}

// getRequest returns a zeroed request from the free pool, or a fresh one
// (with its done gate) when the pool is empty.
func (d *Device) getRequest() *Request {
	n := len(d.reqFree)
	if n == 0 {
		return &Request{done: d.eng.NewGate("reqdone")}
	}
	r := d.reqFree[n-1]
	d.reqFree = d.reqFree[:n-1]
	done := r.done
	done.Close() // reopen on next completion; waiters drained before Release
	*r = Request{done: done}
	return r
}

// CreateContext allocates a hardware context for owner. It fails when the
// device is out of contexts — the Section 6.3 denial-of-service surface.
func (d *Device) CreateContext(owner TaskID, label string) (*Context, error) {
	if len(d.contexts) >= d.cfg.MaxContexts {
		return nil, ErrNoContexts
	}
	c := &Context{ID: d.nextCtxID, Owner: owner, Label: label, dev: d}
	d.nextCtxID++
	d.contexts[c.ID] = c
	return c, nil
}

// CreateChannel adds a request queue of the given kind to the context.
// The returned channel's doorbell page is initially present (direct
// access), matching the vendor stack's default.
func (d *Device) CreateChannel(c *Context, kind Kind) (*Channel, error) {
	if c.dead {
		return nil, ErrContextDead
	}
	ch := &Channel{ID: d.nextChID, Ctx: c, Kind: kind}
	d.nextChID++
	ch.Reg = mmio.NewPage(fmt.Sprintf("chreg-%d", ch.ID), d.cost, func(value uint64) {
		d.doorbell(ch, value)
	})
	c.channels = append(c.channels, ch)
	ch.engine().addChannel(ch)
	return ch, nil
}

// doorbell is the device-side effect of a store to a channel register:
// staged requests up to the stored reference value enter the ring.
func (d *Device) doorbell(ch *Channel, value uint64) {
	if ch.Ctx.dead {
		return
	}
	now := d.eng.Now()
	if ch.head > 32 && ch.head*2 > len(ch.ring) {
		// Compact the consumed prefix so a never-empty ring under
		// sustained backlog cannot grow without bound.
		n := copy(ch.ring, ch.ring[ch.head:])
		ch.ring = ch.ring[:n]
		ch.head = 0
	}
	moved := 0
	for _, r := range ch.staged {
		if r.Ref > value {
			break
		}
		r.Submitted = now
		ch.ring = append(ch.ring, r)
		ch.LastSubmittedRef = r.Ref
		if d.SubmitObserver != nil {
			d.SubmitObserver(r)
		}
		moved++
	}
	if moved == len(ch.staged) {
		ch.staged = ch.staged[:0]
	} else {
		ch.staged = ch.staged[moved:]
	}
	ch.engine().kick()
}

// KillContext implements the exit protocol: the context is marked dead,
// queued requests are discarded, an in-flight request is aborted, and
// channels plus memory return to the free pool. The paper relies on this
// (via killing the owning process) to recover from over-long requests.
func (d *Device) KillContext(c *Context) {
	if c.dead {
		return
	}
	c.dead = true
	for _, ch := range c.channels {
		for _, r := range ch.ring[ch.head:] {
			r.Aborted = true
			r.finish()
		}
		ch.ring = nil
		ch.head = 0
		for _, r := range ch.staged {
			r.Aborted = true
			r.finish()
		}
		ch.staged = nil
		ch.engine().removeChannel(ch)
	}
	d.execEngine.abortIfContext(c)
	d.dmaEngine.abortIfContext(c)
	d.mem.FreeAll(c.Owner)
	delete(d.contexts, c.ID)
}

// ReleaseContext gracefully detaches a context, returning its hardware
// slot to the pool without disturbing in-flight work or freeing the
// owner's device memory (the working set survives a detach — that is the
// point of virtual-context multiplexing). Every channel must be Idle;
// otherwise ErrContextBusy is returned and nothing changes. Unlike
// KillContext there is no abort and no memory teardown: the caller is
// expected to recreate an equivalent context later and pay the paper's
// context-switch cost on reattach.
func (d *Device) ReleaseContext(c *Context) error {
	if c.dead {
		return ErrContextDead
	}
	for _, ch := range c.channels {
		if !ch.Idle() {
			return ErrContextBusy
		}
	}
	c.dead = true
	for _, ch := range c.channels {
		ch.engine().removeChannel(ch)
	}
	delete(d.contexts, c.ID)
	return nil
}

// KillOwner kills every context belonging to the task.
func (d *Device) KillOwner(owner TaskID) {
	for _, c := range d.Contexts() {
		if c.Owner == owner {
			d.KillContext(c)
		}
	}
}

// TotalBusy returns cumulative execution-engine busy time (including a
// partially executed in-flight request). Experiments snapshot this at
// window boundaries to compute utilization.
func (d *Device) TotalBusy() sim.Duration { return d.execEngine.totalBusy() }

// DMABusy returns cumulative copy-engine busy time.
func (d *Device) DMABusy() sim.Duration { return d.dmaEngine.totalBusy() }

// CurrentRequest returns the request executing on the main engine, if any.
func (d *Device) CurrentRequest() *Request { return d.execEngine.current }
