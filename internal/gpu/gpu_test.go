package gpu

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func testDev(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	e := sim.NewEngine()
	return e, New(e, DefaultConfig())
}

// submit stages a request and rings the doorbell from a helper process.
func submit(e *sim.Engine, ch *Channel, size sim.Duration, kind Kind) *Request {
	r := ch.Stage(size, kind)
	e.Spawn("submit", func(p *sim.Proc) { ch.Reg.Store(p, r.Ref) })
	return r
}

func mustCtx(t *testing.T, d *Device, owner TaskID) *Context {
	t.Helper()
	c, err := d.CreateContext(owner, "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustChan(t *testing.T, d *Device, c *Context, k Kind) *Channel {
	t.Helper()
	ch, err := d.CreateChannel(c, k)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestSingleRequestCompletes(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	r := submit(e, ch, 100*time.Microsecond, Compute)
	e.Run()
	if !r.IsDone() || r.Aborted {
		t.Fatal("request did not complete")
	}
	if got := r.Completed.Sub(r.Started); got != 100*time.Microsecond {
		t.Fatalf("service time %v, want 100us", got)
	}
	if ch.RefCount != r.Ref {
		t.Fatalf("RefCount = %d, want %d", ch.RefCount, r.Ref)
	}
	if ch.Completions != 1 {
		t.Fatalf("Completions = %d", ch.Completions)
	}
}

func TestInOrderProcessingPerChannel(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	var rs []*Request
	e.Spawn("submit", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r := ch.Stage(sim.Duration(10+i)*time.Microsecond, Compute)
			ch.Reg.Store(p, r.Ref)
			rs = append(rs, r)
		}
	})
	e.Run()
	for i := 1; i < len(rs); i++ {
		if rs[i].Started < rs[i-1].Completed {
			t.Fatalf("request %d started before %d completed", i, i-1)
		}
	}
}

func TestRoundRobinAcrossContexts(t *testing.T) {
	e, d := testDev(t)
	ctxA := mustCtx(t, d, 1)
	ctxB := mustCtx(t, d, 2)
	chA := mustChan(t, d, ctxA, Compute)
	chB := mustChan(t, d, ctxB, Compute)
	// Saturate both channels with equal-size requests.
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			r := chA.Stage(20*time.Microsecond, Compute)
			chA.Reg.Store(p, r.Ref)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			r := chB.Stage(20*time.Microsecond, Compute)
			chB.Reg.Store(p, r.Ref)
		}
	})
	e.Run()
	if ctxA.BusyTime != ctxB.BusyTime {
		t.Fatalf("uneven service: A=%v B=%v", ctxA.BusyTime, ctxB.BusyTime)
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	e, d := testDev(t)
	ctxA := mustCtx(t, d, 1)
	ctxB := mustCtx(t, d, 2)
	chA := mustChan(t, d, ctxA, Compute)
	chB := mustChan(t, d, ctxB, Compute)
	submit(e, chA, 10*time.Microsecond, Compute)
	submit(e, chB, 10*time.Microsecond, Compute)
	e.Run()
	// Two requests of 10us each plus at least two context switches
	// (idle->A, A->B).
	minTime := sim.Time(20*time.Microsecond + 2*d.Costs().ContextSwitch)
	if e.Now() < minTime {
		t.Fatalf("finished at %v, want >= %v (context switches unpaid)", e.Now(), minTime)
	}
}

func TestNoSwitchCostWithinContext(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	e.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			r := ch.Stage(10*time.Microsecond, Compute)
			ch.Reg.Store(p, r.Ref)
		}
	})
	e.Run()
	// One initial switch, then 10 back-to-back requests.
	want := sim.Time(100*time.Microsecond + d.Costs().ContextSwitch)
	slack := sim.Time(2 * time.Microsecond)
	if e.Now() > want+slack {
		t.Fatalf("took %v, want ~%v (spurious intra-context switches?)", e.Now(), want)
	}
}

func TestGraphicsPenaltyArbitration(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GraphicsPenalty = 3
	d := New(e, cfg)
	cg := mustCtx(t, d, 1)
	cc := mustCtx(t, d, 2)
	gfx := mustChan(t, d, cg, Graphics)
	cmp := mustChan(t, d, cc, Compute)
	// Keep both queues saturated so the arbiter always has a choice —
	// the penalty only applies when a graphics channel competes with
	// ready non-graphics work.
	e.Spawn("gfx", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			r := gfx.Stage(10*time.Microsecond, Graphics)
			gfx.Reg.Store(p, r.Ref)
		}
	})
	e.Spawn("cmp", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			r := cmp.Stage(10*time.Microsecond, Compute)
			cmp.Reg.Store(p, r.Ref)
		}
	})
	e.RunFor(4 * time.Millisecond) // mid-run: both still have backlog
	ratio := float64(cmp.Completions) / float64(gfx.Completions)
	if ratio < 2.3 || ratio > 3.7 {
		t.Fatalf("compute/graphics completion ratio = %.2f, want ~3 (penalty)", ratio)
	}
}

func TestUniformArbitrationWithoutPenalty(t *testing.T) {
	e, d := testDev(t) // GraphicsPenalty = 1
	cg := mustCtx(t, d, 1)
	cc := mustCtx(t, d, 2)
	gfx := mustChan(t, d, cg, Graphics)
	cmp := mustChan(t, d, cc, Compute)
	e.Spawn("gfx", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			r := gfx.Stage(10*time.Microsecond, Graphics)
			gfx.Reg.Store(p, r.Ref)
		}
	})
	e.Spawn("cmp", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			r := cmp.Stage(10*time.Microsecond, Compute)
			cmp.Reg.Store(p, r.Ref)
		}
	})
	e.RunFor(3 * time.Millisecond)
	ratio := float64(cmp.Completions) / float64(gfx.Completions)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("completion ratio = %.2f, want ~1 (uniform)", ratio)
	}
}

func TestDMAOverlapsCompute(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	cmp := mustChan(t, d, ctx, Compute)
	dma := mustChan(t, d, ctx, DMA)
	submit(e, cmp, 100*time.Microsecond, Compute)
	submit(e, dma, 100*time.Microsecond, DMA)
	e.Run()
	// With overlap, both finish in ~100us + switch, not 200us.
	if e.Now() > sim.Time(150*time.Microsecond) {
		t.Fatalf("finished at %v; DMA did not overlap compute", e.Now())
	}
}

func TestForeverRequestOccupiesDevice(t *testing.T) {
	e, d := testDev(t)
	ctxA := mustCtx(t, d, 1)
	ctxB := mustCtx(t, d, 2)
	chA := mustChan(t, d, ctxA, Compute)
	chB := mustChan(t, d, ctxB, Compute)
	submit(e, chA, Forever, Compute)
	victim := submit(e, chB, 10*time.Microsecond, Compute)
	e.RunFor(100 * time.Millisecond)
	if victim.IsDone() {
		t.Fatal("victim completed while an infinite request held the engine")
	}
	if d.CurrentRequest() == nil || d.CurrentRequest().ch != chA {
		t.Fatal("CurrentRequest should expose the hung request")
	}
}

func TestKillContextAbortsAndFrees(t *testing.T) {
	e, d := testDev(t)
	ctxA := mustCtx(t, d, 1)
	ctxB := mustCtx(t, d, 2)
	chA := mustChan(t, d, ctxA, Compute)
	chB := mustChan(t, d, ctxB, Compute)
	hung := submit(e, chA, Forever, Compute)
	queued := submit(e, chA, 10*time.Microsecond, Compute)
	victim := submit(e, chB, 10*time.Microsecond, Compute)
	e.RunFor(time.Millisecond)
	d.KillContext(ctxA)
	e.RunFor(time.Millisecond)
	if !hung.Aborted || !queued.Aborted {
		t.Fatal("attacker requests not aborted by exit protocol")
	}
	if !victim.IsDone() || victim.Aborted {
		t.Fatal("victim did not recover after kill")
	}
	if !ctxA.Dead() || d.ContextCount() != 1 {
		t.Fatalf("context not torn down: dead=%v count=%d", ctxA.Dead(), d.ContextCount())
	}
}

func TestKillOwnerKillsAllContexts(t *testing.T) {
	e, d := testDev(t)
	c1 := mustCtx(t, d, 7)
	c2 := mustCtx(t, d, 7)
	c3 := mustCtx(t, d, 8)
	_ = e
	d.KillOwner(7)
	if !c1.Dead() || !c2.Dead() || c3.Dead() {
		t.Fatal("KillOwner killed wrong contexts")
	}
}

func TestContextLimit(t *testing.T) {
	_, d := testDev(t)
	for i := 0; i < 48; i++ {
		if _, err := d.CreateContext(TaskID(i), "x"); err != nil {
			t.Fatalf("context %d failed early: %v", i, err)
		}
	}
	if _, err := d.CreateContext(99, "x"); err != ErrNoContexts {
		t.Fatalf("49th context error = %v, want ErrNoContexts", err)
	}
	// Killing one frees a slot.
	d.KillOwner(0)
	if _, err := d.CreateContext(99, "x"); err != nil {
		t.Fatalf("context after free failed: %v", err)
	}
}

func TestChannelOnDeadContext(t *testing.T) {
	_, d := testDev(t)
	c := mustCtx(t, d, 1)
	d.KillContext(c)
	if _, err := d.CreateChannel(c, Compute); err != ErrContextDead {
		t.Fatalf("err = %v, want ErrContextDead", err)
	}
}

func TestDoorbellBatchesStagedRequests(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	r1 := ch.Stage(10*time.Microsecond, Compute)
	r2 := ch.Stage(10*time.Microsecond, Compute)
	r3 := ch.Stage(10*time.Microsecond, Compute)
	e.Spawn("s", func(p *sim.Proc) {
		ch.Reg.Store(p, r2.Ref) // ring for the first two only
	})
	e.Run()
	if !r1.IsDone() || !r2.IsDone() {
		t.Fatal("batched submissions not executed")
	}
	if r3.IsDone() {
		t.Fatal("unsubmitted staged request executed")
	}
	if len(ch.StagedRequests()) != 1 {
		t.Fatalf("staged = %d, want 1", len(ch.StagedRequests()))
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	e, d := testDev(t)
	ctx := mustCtx(t, d, 1)
	ch := mustChan(t, d, ctx, Compute)
	submit(e, ch, 75*time.Microsecond, Compute)
	e.Run()
	if ctx.BusyTime != 75*time.Microsecond {
		t.Fatalf("BusyTime = %v, want 75us", ctx.BusyTime)
	}
	if d.TotalBusy() != 75*time.Microsecond {
		t.Fatalf("TotalBusy = %v", d.TotalBusy())
	}
}

// TestPropertyRefCountMonotonic: reference counters never decrease, and
// completions equal submissions for terminating workloads.
func TestPropertyRefCountMonotonic(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 60 {
			return true
		}
		e := sim.NewEngine()
		d := New(e, DefaultConfig())
		ctx, _ := d.CreateContext(1, "q")
		ch, _ := d.CreateChannel(ctx, Compute)
		var last uint64
		ok := true
		e.Spawn("s", func(p *sim.Proc) {
			for _, s := range sizes {
				r := ch.Stage(sim.Duration(s+1)*time.Microsecond, Compute)
				ch.Reg.Store(p, r.Ref)
				p.Wait(r.DoneGate())
				if ch.RefCount < last {
					ok = false
				}
				last = ch.RefCount
			}
		})
		e.Run()
		return ok && ch.Completions == int64(len(sizes)) && ch.RefCount == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPool(t *testing.T) {
	m := NewMemoryPool(1000)
	if err := m.Alloc(1, 600, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(2, 600, 0); err != ErrNoMemory {
		t.Fatalf("overcommit err = %v", err)
	}
	if err := m.Alloc(2, 300, 0); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 900 || m.UsedBy(1) != 600 {
		t.Fatalf("used=%d by1=%d", m.Used(), m.UsedBy(1))
	}
	m.Free(1, 100)
	if m.UsedBy(1) != 500 {
		t.Fatalf("after free: %d", m.UsedBy(1))
	}
	m.FreeAll(1)
	if m.Used() != 300 {
		t.Fatalf("after FreeAll: %d", m.Used())
	}
}

func TestMemoryPerTaskLimit(t *testing.T) {
	m := NewMemoryPool(1000)
	if err := m.Alloc(1, 400, 500); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(1, 200, 500); err != ErrNoMemory {
		t.Fatalf("limit not enforced: %v", err)
	}
	if err := m.Alloc(1, 100, 500); err != nil {
		t.Fatalf("within-limit alloc failed: %v", err)
	}
}

func TestMemoryFreeClampsToHeld(t *testing.T) {
	m := NewMemoryPool(1000)
	_ = m.Alloc(1, 100, 0)
	m.Free(1, 500) // more than held
	if m.Used() != 0 || m.UsedBy(1) != 0 {
		t.Fatalf("clamped free broken: used=%d", m.Used())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Compute: "compute", Graphics: "graphics", DMA: "dma"} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
