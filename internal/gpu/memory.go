package gpu

// MemoryPool is the device's onboard RAM accountant. The real device
// isolates address spaces via the IOMMU; what the OS additionally needs —
// and what Section 6.3 of the paper sketches — is per-task consumption
// accounting so one task cannot exhaust the pool.
type MemoryPool struct {
	total int64
	used  int64
	byOwn map[TaskID]int64
}

// NewMemoryPool returns a pool of the given capacity in bytes.
func NewMemoryPool(total int64) *MemoryPool {
	return &MemoryPool{total: total, byOwn: make(map[TaskID]int64)}
}

// Total returns pool capacity in bytes.
func (m *MemoryPool) Total() int64 { return m.total }

// Used returns allocated bytes.
func (m *MemoryPool) Used() int64 { return m.used }

// UsedBy returns bytes held by one task.
func (m *MemoryPool) UsedBy(owner TaskID) int64 { return m.byOwn[owner] }

// Alloc reserves size bytes for owner, or fails with ErrNoMemory.
// If limit > 0, the allocation also fails once the owner's total would
// exceed limit (the OS-level anti-hoarding policy).
func (m *MemoryPool) Alloc(owner TaskID, size, limit int64) error {
	if size < 0 {
		size = 0
	}
	if m.used+size > m.total {
		return ErrNoMemory
	}
	if limit > 0 && m.byOwn[owner]+size > limit {
		return ErrNoMemory
	}
	m.used += size
	m.byOwn[owner] += size
	return nil
}

// Free releases size bytes held by owner.
func (m *MemoryPool) Free(owner TaskID, size int64) {
	if size > m.byOwn[owner] {
		size = m.byOwn[owner]
	}
	m.byOwn[owner] -= size
	m.used -= size
}

// FreeAll releases everything owner holds (process-exit cleanup).
func (m *MemoryPool) FreeAll(owner TaskID) {
	m.used -= m.byOwn[owner]
	delete(m.byOwn, owner)
}
