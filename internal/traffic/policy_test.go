package traffic

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// churnPolicy is a hostile allocation policy for the re-weighting
// invariant: every round it hands back a fresh deterministic
// pseudo-random weight vector in [0.5, 4], so live tasks re-weight
// continually while traffic flows.
type churnPolicy struct{ round int }

func (c *churnPolicy) Name() string { return "churn" }

func (c *churnPolicy) Allocate(s policy.Snapshot) policy.Targets {
	c.round++
	w := make([]float64, len(s.Tenants))
	for i := range w {
		x := float64((c.round*2654435761 + i*40503) % 1000)
		w[i] = 0.5 + 3.5*(x/999)
	}
	return policy.Targets{Weight: w}
}

// TestReweightingPreservesLeadBound is the dynamic-weight half of the
// mechanism-equivalence satellite: randomized open-loop scenarios run
// under an allocator whose policy rewrites every tenant's weight each
// round, and the weighted DFQ lead bound must still hold — weights are
// read at every charging step, each episode's window term uses that
// episode's own lightest charged weight, and past charges are never
// restated (the dynamic-weight contract in core/dfq.go). Nobody may
// starve either: a churning weight is still a positive share.
func TestReweightingPreservesLeadBound(t *testing.T) {
	const scenarios = 6
	for i := 0; i < scenarios; i++ {
		i := i
		t.Run(fmt.Sprintf("scenario%d", i), func(t *testing.T) {
			rng := sim.NewRNG(sim.StreamSeed(1, "dfq-reweight-invariant", i))
			streams, load := randomScenario(rng)
			for j := range streams {
				streams[j].Tenant.Weight = 0.5 + 3.5*rng.Float64()
			}
			eng := sim.NewEngine()
			pol := &churnPolicy{}
			srv, err := New(eng, Config{
				Fleet: fleet.Config{Devices: 1, Sched: "dfq", RunLimit: time.Second,
					Seed:        int64(rng.Intn(1 << 30)),
					AllocPolicy: pol, AllocEvery: 2 * sim.Duration(time.Millisecond)},
				AdmitDepth: 256,
				Streams:    streams,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.RunFor(600 * time.Millisecond)
			if err := srv.SetupError(); err != nil {
				t.Fatal(err)
			}
			if rounds := srv.Fleet().AllocRounds; rounds < 100 {
				t.Fatalf("only %d allocator rounds; weights barely churned", rounds)
			}
			dfq := srv.Fleet().Nodes()[0].DFQ()
			if dfq == nil {
				t.Fatal("node scheduler is not DFQ")
			}
			if dfq.Cycles < 3 {
				t.Fatalf("only %d engagement episodes; scenario too idle to test anything", dfq.Cycles)
			}
			if dfq.LeadViolations != 0 {
				t.Errorf("load %.2f: %d lead-bound violations under re-weighting (max lead %v, bound %v)",
					load, dfq.LeadViolations, dfq.MaxLead, dfq.LeadBound())
			}
			if dfq.MaxLead > dfq.LeadBound() {
				t.Errorf("max observed lead %v exceeds bound %v under re-weighting",
					dfq.MaxLead, dfq.LeadBound())
			}
			for j := range streams {
				if srv.Stats(j).Completed == 0 {
					t.Errorf("stream %d starved under re-weighting: %d arrivals, 0 completions (load %.2f)",
						j, srv.Stats(j).Arrivals, load)
				}
			}
		})
	}
}

// TestNewRejectsInvalidStreamWeight: the serving front door validates
// tenant specs with a proper error — a malformed weight must never
// reach the fleet's panic or the ledgers' silent clamp.
func TestNewRejectsInvalidStreamWeight(t *testing.T) {
	ten := workload.OpenLoopTenant("bad", 100*us, 0)
	ten.Weight = -3
	_, err := New(sim.NewEngine(), Config{
		Fleet:   fleet.Config{Devices: 1, Seed: 1},
		Streams: []Stream{{Tenant: ten, Arrival: Deterministic{Rate: 100}}},
	})
	if err == nil {
		t.Fatal("negative stream weight accepted")
	}
	if !strings.Contains(err.Error(), "bad") || !strings.Contains(err.Error(), "weight") {
		t.Fatalf("error %q does not name the tenant and the weight", err)
	}
}

// TestPolicyDrivesTierBounds: with an allocation policy active, the
// admission controller's tier bounds follow the policy's target shares
// instead of the hard-coded MaxDepth ratios — and the static policy
// leaves the derived ratios exactly in place.
func TestPolicyDrivesTierBounds(t *testing.T) {
	build := func(pol policy.Policy) (*sim.Engine, *Server) {
		t.Helper()
		prem := workload.OpenLoopTenant("prem", 300*us, 0)
		prem.Tier = workload.TierPremium
		prem.Weight = 3
		std := workload.OpenLoopTenant("std", 300*us, 0)
		eng := sim.NewEngine()
		srv, err := New(eng, Config{
			Fleet: fleet.Config{Devices: 1, Sched: "dfq", RunLimit: time.Second,
				Seed: 1, AllocPolicy: pol},
			AdmitDepth: 64,
			Streams: []Stream{
				{Tenant: prem, Arrival: Deterministic{Rate: 2000}},
				{Tenant: std, Arrival: Deterministic{Rate: 2000}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng, srv
	}

	eng, srv := build(policy.MaxMin{})
	eng.RunFor(50 * time.Millisecond)
	adm := srv.Admission()
	// Max-min with weights 3:1 and equal saturating demands targets
	// shares 3/4 : 1/4 over two tiers → bounds 64×0.75×2 = 96 and
	// 64×0.25×2 = 32.
	if got := adm.Bound(workload.TierPremium); got != 96 {
		t.Errorf("premium bound = %d, want policy-derived 96", got)
	}
	if got := adm.Bound(workload.TierStandard); got != 32 {
		t.Errorf("standard bound = %d, want policy-derived 32", got)
	}

	eng, srv = build(policy.Static{})
	eng.RunFor(50 * time.Millisecond)
	adm = srv.Admission()
	// Static defers: the mechanism's own derivation (premium 64+16,
	// standard 64, best-effort 32) must be untouched.
	if got := adm.Bound(workload.TierPremium); got != 80 {
		t.Errorf("static premium bound = %d, want derived 80", got)
	}
	if got := adm.Bound(workload.TierStandard); got != 64 {
		t.Errorf("static standard bound = %d, want derived 64", got)
	}
	if got := adm.Bound(workload.TierBestEffort); got != 32 {
		t.Errorf("static best-effort bound = %d, want derived 32", got)
	}
}
