// Package traffic is the open-loop request-driven serving layer: the
// bridge from the paper's closed-loop co-runner evaluation to the
// ROADMAP's serving regime — open-loop arrivals, tail-latency
// percentiles, and explicit overload behavior.
//
// A Server owns a device fleet (internal/fleet) and a set of per-tenant
// Streams. Each stream's arrival process (deterministic, Poisson, MMPP
// bursty, diurnal-modulated) generates requests with open-loop
// semantics: arrivals never wait for completions, so offered load is a
// property of the source, not of the system's speed — exactly the
// regime where fair queueing, sticky placement, and throttling
// decisions get stressed. A front-door admission controller sheds
// arrivals when the fleet-wide queue depth exceeds a bound; admitted
// requests are placed per-request by the fleet's placement policy and
// drained by per-(tenant, device) dispatchers. Completion latencies
// (sojourn time: completion minus arrival) are stamped through the
// gpu.Request completion hook into a streaming quantile digest per
// tenant, alongside goodput and shed-rate counters.
package traffic

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/userlib"
	"repro/internal/workload"
)

// Stream is one tenant's open-loop request source: its fleet identity
// (name, request size, working set) and its arrival process.
type Stream struct {
	// Tenant carries the tenant's name, single-request service size
	// (Mix[0].Size), channel kinds, and working set — usually built with
	// workload.OpenLoopTenant.
	Tenant workload.TenantSpec
	// Arrival generates the stream's inter-arrival gaps. The instance is
	// owned by this stream: construct a fresh one per scenario.
	Arrival Arrival
}

// StreamStats is one stream's serving measurement since the last
// ResetStats.
type StreamStats struct {
	// Arrivals counts open-loop arrivals; Shed the ones refused at the
	// front door (a stream belongs to exactly one admission tier, so
	// this is the stream's per-tier shed counter — Admission.TierCounts
	// holds the cross-stream tier aggregates); Completed the ones that
	// finished service; Aborted the ones killed with their context.
	Arrivals  int64
	Shed      int64
	Completed int64
	Aborted   int64
	// Latency is the sojourn-time digest (completion minus arrival,
	// including dispatcher queueing, placement cold time, ring queueing,
	// and service).
	Latency metrics.Digest
	// ColdTime is device time spent rebuilding the tenant's working set
	// after placement moved it across devices.
	ColdTime sim.Duration
	// Flushes counts batched-drain doorbells and Batched the submissions
	// they carried (both zero unless Config.BatchDrain): Batched/Flushes
	// is the mean backlog-collapse factor, and Batched-Flushes the
	// doorbells the batching saved.
	Flushes int64
	Batched int64
}

// GoodputPerSec returns completed requests per second over the window.
func (s *StreamStats) GoodputPerSec(window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(s.Completed) / window.Seconds()
}

// ShedRate returns the stream's shed fraction of arrivals.
func (s *StreamStats) ShedRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Shed) / float64(s.Arrivals)
}

// Config assembles a Server.
type Config struct {
	// Fleet configures the device pool (devices, placement policy,
	// per-device scheduler). The fleet's Seed also feeds stream RNGs.
	Fleet fleet.Config
	// AdmitDepth is the standard tier's fleet queue-depth bound; each
	// stream is admitted against its tenant's tier bound derived from it
	// (best-effort sheds at half this depth, premium at 1.25x — see
	// Admission.Bound). <= 0 disables admission control unless
	// TierDepths is set.
	AdmitDepth int
	// BatchDrain switches the dispatchers' backlog drain to batch
	// staging: a whole queued backlog is staged on the channel in one
	// engine instant and submitted with a single doorbell (one
	// userlib.Batch flush, one device kick) instead of one store — and
	// one DirectWrite of pacing — per request. Requests then reach the
	// device together at now+DirectWrite, so batched drains trade the
	// per-request doorbell timeline for submission cost; the default
	// (off) reproduces the per-request event sequence exactly.
	BatchDrain bool
	// TierDepths overrides the derived per-tier admission bounds.
	TierDepths map[workload.Tier]int
	// Streams is the tenant population, one open-loop source each.
	Streams []Stream
}

// stream is the server's per-stream state.
type stream struct {
	spec  Stream
	ft    *fleet.Tenant
	rng   *sim.RNG
	stats StreamStats
	disp  map[*fleet.Node]*dispatcher
	size  sim.Duration
	kind  gpu.Kind
	tier  workload.Tier
}

// Server drives open-loop request streams through a placed, admitted,
// fair-shared device fleet.
type Server struct {
	eng     *sim.Engine
	fleet   *fleet.Fleet
	adm     Admission
	batch   bool
	streams []*stream

	// Same-tick completion coalescing: completion hooks append to
	// doneBuf and the first append of an instant schedules one flush
	// event at the back of that instant, so N same-tick completions cost
	// one digest/stats delivery pass instead of N callback hops. Only
	// commutative per-stream accounting is deferred; fleet queue-depth
	// release stays inline in the hook because same-tick admission
	// decisions read it.
	doneBuf     []doneRec
	flushQueued bool
	flushFn     func()
}

// doneRec is one completed request awaiting the tick-end stats flush.
type doneRec struct {
	st  *stream
	r   *gpu.Request
	lat sim.Duration
}

// New builds the fleet, registers one tenant per stream, and spawns the
// arrival generators. The simulation (engine Run/RunFor) then serves
// traffic until stopped.
//
// Stream tenant specs are validated here with a proper error (the
// serving front door is where user-shaped configuration enters), so a
// malformed weight or tier never reaches the fleet's panic. When the
// fleet runs an allocation policy (Fleet.AllocPolicy), the server
// refreshes its admission tier bounds from the policy's targets after
// every allocator round: tier headroom then follows the policy's
// allocation instead of the hard-coded depth ratios. Policies without
// an opinion (static) leave the derived bounds untouched.
func New(eng *sim.Engine, cfg Config) (*Server, error) {
	for i, spec := range cfg.Streams {
		if err := spec.Tenant.Validate(); err != nil {
			return nil, fmt.Errorf("traffic: stream %d: %w", i, err)
		}
	}
	f, err := fleet.New(eng, cfg.Fleet)
	if err != nil {
		return nil, err
	}
	s := &Server{eng: eng, fleet: f, batch: cfg.BatchDrain,
		adm: Admission{MaxDepth: cfg.AdmitDepth, TierDepths: cfg.TierDepths}}
	s.flushFn = s.flushDone
	if pol := f.AllocPolicy(); pol != nil {
		f.OnTargets(func(snap policy.Snapshot, tg policy.Targets) {
			if b := policy.TierBounds(pol, snap, tg, cfg.AdmitDepth); b != nil {
				s.adm.TierDepths = b
			}
		})
	}
	for i, spec := range cfg.Streams {
		st := &stream{
			spec: spec,
			ft:   f.NewTenant(spec.Tenant),
			rng:  sim.NewRNG(sim.StreamSeed(cfg.Fleet.Seed, "traffic", i)),
			disp: make(map[*fleet.Node]*dispatcher),
			size: spec.Tenant.Mix[0].Size,
			kind: spec.Tenant.Mix[0].Kind,
			tier: spec.Tenant.Tier.Normalize(),
		}
		s.streams = append(s.streams, st)
		eng.Spawn("arrivals/"+spec.Tenant.Name, s.generator(st))
	}
	return s, nil
}

// Fleet returns the device pool the server places onto.
func (s *Server) Fleet() *fleet.Fleet { return s.fleet }

// Admission returns the front-door controller (its counters are live).
func (s *Server) Admission() *Admission { return &s.adm }

// Stats returns stream i's measurement, in Config.Streams order.
func (s *Server) Stats(i int) *StreamStats { return &s.streams[i].stats }

// SetupError returns the first stream client setup failure, if any.
func (s *Server) SetupError() error {
	for _, st := range s.streams {
		for _, n := range s.fleet.Nodes() {
			if d := st.disp[n]; d != nil && d.err != nil {
				return d.err
			}
		}
	}
	return nil
}

// ResetStats clears stream, admission, and fleet counters (warmup
// exclusion). In-flight requests stay in flight; their latencies land
// in the new window, as on a live system.
func (s *Server) ResetStats() {
	s.adm.ResetStats()
	s.fleet.ResetStats()
	for _, st := range s.streams {
		st.stats = StreamStats{}
	}
}

// generator returns the stream's open-loop arrival loop: sleep the
// process gap, admit-or-shed, place, enqueue — never wait for service.
func (s *Server) generator(st *stream) func(*sim.Proc) {
	return func(p *sim.Proc) {
		for {
			p.Sleep(st.spec.Arrival.Next(p.Now(), st.rng))
			s.arrive(p, st)
		}
	}
}

// arrive handles one arrival at the front door. Admission is decided
// against the arriving tenant's tier bound, so under rising backlog
// best-effort streams shed first and premium streams last.
func (s *Server) arrive(p *sim.Proc, st *stream) {
	st.stats.Arrivals++
	if !s.adm.AdmitTier(st.tier, s.fleet.QueueDepth()) {
		st.stats.Shed++
		return
	}
	n, migrated := s.fleet.PlaceRequest(st.ft)
	d := st.disp[n]
	if d == nil {
		d = &dispatcher{srv: s, st: st, node: n,
			gate: p.Engine().NewGate("dispatch-" + st.spec.Tenant.Name)}
		d.doneFn = d.onDone
		st.disp[n] = d
		p.Engine().Spawn("dispatch/"+st.spec.Tenant.Name, d.run)
	}
	if d.err != nil {
		// The tenant's client on this node failed to set up; nothing will
		// ever drain here.
		s.fleet.RequestDone(n)
		st.stats.Aborted++
		return
	}
	d.queue = append(d.queue, item{
		arrival: p.Now(),
		cold:    migrated && st.spec.Tenant.WorkingSet > 0,
	})
	if d.ready && d.idle {
		// Edge-triggered wake: the drain parks only with an empty queue,
		// so only the idle-to-backlogged transition signals the gate —
		// same wake event position as a broadcast to the parked process,
		// without a (lost) broadcast per backlogged arrival.
		d.idle = false
		d.gate.Signal()
	}
}

// item is one admitted request waiting in a dispatcher queue.
type item struct {
	arrival sim.Time
	cold    bool
}

// dispatcher drains one (stream, node) queue: it submits requests in
// arrival order through the tenant's client on that node. Submission
// may block on the node scheduler's interception (that is how engaged
// schedulers delay tenants), but completion is never waited for — the
// channel FIFO and the completion hook carry the rest.
//
// The drain stays process-driven — unlike the closed-loop drivers'
// continuation machines (DESIGN.md §14) — because every serving client
// rides a virtual (multiplexed) context: each acquire orders the mux's
// LRU clock and attach queue by the event it runs in, and only a
// process can block through an attach, so an engine-context refusal
// hop would shift those orderings within the instant. The wake is
// edge-triggered instead of broadcast-per-arrival (gate signal only on
// the idle-to-backlogged transition), and Config.BatchDrain turns a
// drained backlog into one staged batch with a single doorbell.
type dispatcher struct {
	srv    *Server
	st     *stream
	node   *fleet.Node
	queue  []item
	err    error
	client *userlib.Client
	ready  bool // client setup finished; wakes may target the gate
	idle   bool // drain parked on the gate (implies empty queue)
	gate   *sim.Gate

	// doneFn is the completion hook, bound once: every request of this
	// (stream, node) pair shares it, so hooking a completion allocates
	// nothing.
	doneFn func(*gpu.Request)
}

// run opens the tenant's client on the node (anything queued during
// setup is drained right after), then serves wake-drain cycles.
func (d *dispatcher) run(p *sim.Proc) {
	client, err := d.st.ft.Client(p, d.node)
	if err != nil {
		d.err = err
		d.drainFailed()
		return
	}
	d.client = client
	d.ready = true
	for {
		if len(d.queue) == 0 {
			d.idle = true
			p.Wait(d.gate)
			continue
		}
		if d.srv.batch && d.batchDrain() {
			continue
		}
		it := d.queue[0]
		d.queue = d.queue[1:]
		if task := d.st.ft.Task(d.node); task == nil || !task.Alive {
			// The tenant's context on this node was killed (run-limit or
			// DoS protection): the queued request can never be served here.
			d.srv.fleet.RequestDone(d.node)
			d.st.stats.Aborted++
			continue
		}
		if it.cold {
			// Rebuild the warm working set ahead of the request, on the
			// same channel: FIFO ordering makes the reconstruction complete
			// first, and its device time is real capacity spent — counted
			// only when the rebuild was actually staged (the task can die
			// while the virtual context waits for a hardware slot).
			ws := d.st.spec.Tenant.WorkingSet
			if d.client.SubmitDetached(p, d.st.kind, ws) != nil {
				d.st.stats.ColdTime += ws
			}
		}
		r := d.client.SubmitDetached(p, d.st.kind, d.st.size)
		if r == nil {
			// The task died while the virtual context waited for a
			// hardware slot; the request can never be served here.
			d.srv.fleet.RequestDone(d.node)
			d.st.stats.Aborted++
			continue
		}
		r.Stamp = it.arrival
		if r.IsDone() {
			d.onDone(r)
		} else {
			r.OnDone = d.doneFn
		}
	}
}

// batchDrain stages the whole backlog on the channel and rings one
// doorbell (Config.BatchDrain): the drain pays one StoreAsync and one
// device kick — and the process one wake — for k requests, and the
// batch reaches the device in one event at now+DirectWrite. Returns
// false, staging nothing, when the batch fast path is unavailable
// (engaged register, detached context); the per-request blocking path
// then takes over for this drain, preserving the fault/trap sequence
// engaged schedulers depend on.
func (d *dispatcher) batchDrain() bool {
	b, ok := d.client.BeginBatch(d.st.kind)
	if !ok {
		return false
	}
	for len(d.queue) > 0 {
		it := d.queue[0]
		d.queue = d.queue[1:]
		if task := d.st.ft.Task(d.node); task == nil || !task.Alive {
			d.srv.fleet.RequestDone(d.node)
			d.st.stats.Aborted++
			continue
		}
		if it.cold {
			ws := d.st.spec.Tenant.WorkingSet
			b.Stage(ws, d.st.kind, nil)
			d.st.stats.ColdTime += ws
		}
		r := b.Stage(d.st.size, d.st.kind, d.doneFn)
		r.Stamp = it.arrival
	}
	if n := b.Len(); n > 0 {
		d.st.stats.Flushes++
		d.st.stats.Batched += int64(n)
	}
	b.Flush(d.srv.eng)
	return true
}

// onDone is the completion hook: it runs in engine context the instant
// the device finishes (or aborts) the request — no polling process per
// request. The fleet's queue-depth release and the abort counter are
// immediate; completed-request stats are batched into the server's
// tick-end flush.
func (d *dispatcher) onDone(r *gpu.Request) {
	d.srv.fleet.RequestDone(d.node)
	if r.Aborted {
		d.st.stats.Aborted++
		return
	}
	d.srv.enqueueDone(d.st, r)
}

// enqueueDone buffers a completed request for the tick-end stats flush,
// scheduling the flush event on the first completion of the instant.
func (s *Server) enqueueDone(st *stream, r *gpu.Request) {
	s.doneBuf = append(s.doneBuf, doneRec{st: st, r: r, lat: r.Completed.Sub(r.Stamp)})
	if !s.flushQueued {
		s.flushQueued = true
		s.eng.After(0, s.flushFn)
	}
}

// flushDone delivers the instant's coalesced completions: per-stream
// goodput counters and latency digest adds, in completion order. The
// requests are then recycled to their device pools — every holder is
// done with them by the end of the completion instant (sampling
// watchers pin theirs, which exempts them from recycling).
func (s *Server) flushDone() {
	s.flushQueued = false
	buf := s.doneBuf
	for i := range buf {
		rec := &buf[i]
		rec.st.stats.Completed++
		rec.st.stats.Latency.Add(rec.lat)
		rec.r.Release()
		*rec = doneRec{}
	}
	s.doneBuf = buf[:0]
}

// drainFailed retires items queued before a client setup failure so
// the fleet depth does not leak; once err is set, arrive retires new
// placements to this node directly.
func (d *dispatcher) drainFailed() {
	for range d.queue {
		d.srv.fleet.RequestDone(d.node)
		d.st.stats.Aborted++
	}
	d.queue = nil
}
