package traffic

import (
	"testing"

	"repro/internal/workload"
)

// Boundary: an arrival at exactly MaxDepth is shed (the bound is the
// first refused depth), one below is admitted.
func TestAdmissionDepthBoundary(t *testing.T) {
	a := Admission{MaxDepth: 4}
	if !a.Admit(3) {
		t.Error("depth MaxDepth-1 must be admitted")
	}
	if a.Admit(4) {
		t.Error("depth exactly MaxDepth must be shed")
	}
	if a.Admit(5) {
		t.Error("depth past MaxDepth must be shed")
	}
	if a.Admitted != 1 || a.Shed != 2 {
		t.Errorf("counters admitted=%d shed=%d, want 1/2", a.Admitted, a.Shed)
	}
	if got := a.ShedRate(); got != 2.0/3.0 {
		t.Errorf("ShedRate = %v, want 2/3", got)
	}
}

// Counter reset mid-window: ResetStats must zero every counter (global
// and per-tier) and subsequent decisions must count from scratch.
func TestAdmissionResetMidWindow(t *testing.T) {
	a := Admission{MaxDepth: 2}
	a.AdmitTier(workload.TierBestEffort, 0)
	a.AdmitTier(workload.TierBestEffort, 5)
	a.Admit(5)
	if a.Admitted != 1 || a.Shed != 2 {
		t.Fatalf("pre-reset admitted=%d shed=%d, want 1/2", a.Admitted, a.Shed)
	}
	a.ResetStats()
	if a.Admitted != 0 || a.Shed != 0 || a.ShedRate() != 0 {
		t.Errorf("reset left admitted=%d shed=%d rate=%v", a.Admitted, a.Shed, a.ShedRate())
	}
	for _, tier := range workload.Tiers() {
		if adm, shed := a.TierCounts(tier); adm != 0 || shed != 0 {
			t.Errorf("reset left %s counts %d/%d", tier, adm, shed)
		}
	}
	if !a.Admit(1) || a.Admit(2) {
		t.Error("post-reset decisions wrong")
	}
	if a.Admitted != 1 || a.Shed != 1 {
		t.Errorf("post-reset counters admitted=%d shed=%d, want 1/1", a.Admitted, a.Shed)
	}
}

// Disabled controllers (MaxDepth <= 0, no overrides) admit everything
// and count nothing, so an admission-off run is distinguishable from an
// enabled controller that simply never shed.
func TestAdmissionDisabledCountsNothing(t *testing.T) {
	a := Admission{}
	if a.Enabled() {
		t.Fatal("zero-value Admission must be disabled")
	}
	for depth := 0; depth < 1000; depth += 100 {
		if !a.Admit(depth) {
			t.Fatalf("disabled controller shed at depth %d", depth)
		}
	}
	if a.Admitted != 0 || a.Shed != 0 {
		t.Errorf("disabled controller counted decisions: admitted=%d shed=%d", a.Admitted, a.Shed)
	}
	if adm, shed := a.TierCounts(workload.TierStandard); adm != 0 || shed != 0 {
		t.Errorf("disabled controller counted tier decisions: %d/%d", adm, shed)
	}
}

// Tier ordering: best-effort sheds at half the standard bound, premium
// only past 1.25x of it — so a rising queue refuses best-effort first,
// then standard, then premium.
func TestAdmissionTierBoundsOrdered(t *testing.T) {
	a := Admission{MaxDepth: 96}
	be, std, prem := a.Bound(workload.TierBestEffort), a.Bound(workload.TierStandard), a.Bound(workload.TierPremium)
	if be != 48 || std != 96 || prem != 120 {
		t.Fatalf("bounds be=%d std=%d prem=%d, want 48/96/120", be, std, prem)
	}
	// Depth between the best-effort and standard bounds: only
	// best-effort is refused.
	depth := 60
	if a.AdmitTier(workload.TierBestEffort, depth) {
		t.Error("best-effort admitted past its bound")
	}
	if !a.AdmitTier(workload.TierStandard, depth) || !a.AdmitTier(workload.TierPremium, depth) {
		t.Error("standard/premium shed below their bounds")
	}
	// Depth between the standard and premium bounds: premium still goes.
	depth = 100
	if a.AdmitTier(workload.TierStandard, depth) {
		t.Error("standard admitted past its bound")
	}
	if !a.AdmitTier(workload.TierPremium, depth) {
		t.Error("premium shed below its bound")
	}
	if a.AdmitTier(workload.TierPremium, 120) {
		t.Error("premium admitted at its bound")
	}
	if adm, shed := a.TierCounts(workload.TierBestEffort); adm != 0 || shed != 1 {
		t.Errorf("best-effort counts %d/%d, want 0/1", adm, shed)
	}
	if adm, shed := a.TierCounts(workload.TierPremium); adm != 2 || shed != 1 {
		t.Errorf("premium counts %d/%d, want 2/1", adm, shed)
	}
	// The empty tier is the standard tier.
	if a.Bound(workload.Tier("")) != 96 {
		t.Error("empty tier must resolve to the standard bound")
	}
	// Even at tiny bounds the tiers stay strictly ordered: premium keeps
	// at least one slot of shed-last headroom over standard.
	tiny := Admission{MaxDepth: 3}
	if p, s := tiny.Bound(workload.TierPremium), tiny.Bound(workload.TierStandard); p <= s {
		t.Errorf("MaxDepth 3: premium bound %d not above standard %d", p, s)
	}
}

// Explicit overrides win over the derived defaults and enable the
// controller on their own.
func TestAdmissionTierDepthOverrides(t *testing.T) {
	a := Admission{TierDepths: map[workload.Tier]int{workload.TierBestEffort: 3}}
	if !a.Enabled() {
		t.Fatal("TierDepths alone must enable the controller")
	}
	if a.Bound(workload.TierBestEffort) != 3 {
		t.Errorf("override bound = %d, want 3", a.Bound(workload.TierBestEffort))
	}
	// Tiers without an override and without MaxDepth are unbounded.
	if a.Bound(workload.TierStandard) != 0 {
		t.Errorf("standard bound = %d, want 0 (unbounded)", a.Bound(workload.TierStandard))
	}
	if a.AdmitTier(workload.TierBestEffort, 3) {
		t.Error("override not applied")
	}
	if !a.AdmitTier(workload.TierStandard, 1000) {
		t.Error("unbounded tier must admit at any depth")
	}
}

// TierDepths keys normalize exactly like tier arguments do: a map built
// with the zero-value tier (the "standard" spelling used everywhere
// else in the workload package) must bound standard arrivals. This
// regressed silently before: Bound normalized its argument but looked
// the map up verbatim, so a zero-keyed override was never found and the
// controller fell back to the MaxDepth-derived default.
func TestAdmissionTierDepthKeyNormalization(t *testing.T) {
	a := Admission{MaxDepth: 96, TierDepths: map[workload.Tier]int{workload.Tier(""): 7}}
	if got := a.Bound(workload.TierStandard); got != 7 {
		t.Errorf("zero-keyed override ignored: Bound(standard) = %d, want 7", got)
	}
	if got := a.Bound(workload.Tier("")); got != 7 {
		t.Errorf("zero-keyed override ignored: Bound(\"\") = %d, want 7", got)
	}
	// The alias must not leak across tiers.
	if got := a.Bound(workload.TierBestEffort); got != 48 {
		t.Errorf("best-effort bound = %d, want the derived 48", got)
	}
	if a.AdmitTier(workload.TierStandard, 7) {
		t.Error("standard arrival at the overridden bound must shed")
	}
	// When both spellings are present the canonical key wins.
	both := Admission{TierDepths: map[workload.Tier]int{
		workload.Tier(""):       5,
		workload.TierStandard:   11,
		workload.TierBestEffort: 2,
	}}
	if got := both.Bound(workload.TierStandard); got != 11 {
		t.Errorf("canonical key must win over the alias: got %d, want 11", got)
	}
}
