package traffic

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// randomScenario draws one open-loop serving scenario from a forked RNG
// stream: 2-4 streams with random sizes, arrival process families, and
// a random aggregate load factor in [0.5, 1.4].
func randomScenario(rng *sim.RNG) (streams []Stream, load float64) {
	n := 2 + rng.Intn(3)
	load = 0.5 + 0.9*rng.Float64()
	weight := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		size := time.Duration(50+rng.Intn(750)) * time.Microsecond
		rate := load * weight / size.Seconds()
		var a Arrival
		switch rng.Intn(4) {
		case 0:
			a = Deterministic{Rate: rate}
		case 1:
			a = Poisson{Rate: rate}
		case 2:
			// On/off burst process with the same mean rate.
			a = NewMMPP(0, 4*rate, 30*time.Millisecond, 10*time.Millisecond)
		default:
			a = Diurnal{Base: rate, Amplitude: 0.8, Period: 80 * time.Millisecond}
		}
		streams = append(streams, Stream{
			Tenant:  workload.OpenLoopTenant(fmt.Sprintf("s%d", i), size, 0),
			Arrival: a,
		})
	}
	return streams, load
}

// TestNormalizedDFQLeadBoundMixedFleet extends the lead-bound property
// to heterogeneous fleets: randomized open-loop scenarios served by a
// mixed-class fleet (one device per class, per-device DFQ with
// normalized Work charges reconciling through the fleet board) must
// keep every device's observed lead within its LeadBound — the bound is
// stated in normalized work, so it is only meaningful because the
// ledger is. Streams must also keep completing on every scenario: the
// normalization must not starve anyone.
func TestNormalizedDFQLeadBoundMixedFleet(t *testing.T) {
	const scenarios = 6
	classMixes := [][]string{
		{"k20", "consumer"},
		{"k20", "nextgen"},
		{"k20", "consumer", "nextgen"},
	}
	for i := 0; i < scenarios; i++ {
		i := i
		t.Run(fmt.Sprintf("scenario%d", i), func(t *testing.T) {
			rng := sim.NewRNG(sim.StreamSeed(1, "dfq-hetero-invariant", i))
			classes := classMixes[rng.Intn(len(classMixes))]
			streams, load := randomScenario(rng)
			policy, err := fleet.NewPolicy("fastest-fit")
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngine()
			srv, err := New(eng, Config{
				Fleet: fleet.Config{
					Devices:  len(classes),
					Classes:  classes,
					Policy:   policy,
					Sched:    "dfq",
					RunLimit: time.Second,
					Seed:     int64(rng.Intn(1 << 30)),
				},
				AdmitDepth: 256,
				Streams:    streams,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.RunFor(600 * time.Millisecond)
			if err := srv.SetupError(); err != nil {
				t.Fatal(err)
			}

			var cycles int64
			for _, node := range srv.Fleet().Nodes() {
				dfq := node.DFQ()
				if dfq == nil {
					t.Fatal("node scheduler is not DFQ")
				}
				cycles += dfq.Cycles
				if dfq.LeadViolations != 0 {
					t.Errorf("%s (%s, load %.2f): %d lead-bound violations (max lead %v, bound %v)",
						node.Device.Name(), node.Class.Name, load,
						dfq.LeadViolations, dfq.MaxLead, dfq.LeadBound())
				}
				if dfq.MaxLead > dfq.LeadBound() {
					t.Errorf("%s: max observed lead %v exceeds bound %v",
						node.Device.Name(), dfq.MaxLead, dfq.LeadBound())
				}
			}
			if cycles < 3 {
				t.Fatalf("only %d engagement episodes fleet-wide; scenario too idle to test anything", cycles)
			}
			if srv.Fleet().Board().Episodes == 0 {
				t.Fatal("no board reconciliations: per-device DFQ is not reporting")
			}
			for j := range streams {
				if srv.Stats(j).Completed == 0 {
					t.Errorf("stream %d starved: %d arrivals, 0 completions (classes %v, load %.2f)",
						j, srv.Stats(j).Arrivals, classes, load)
				}
			}
		})
	}
}

// TestWeightedDFQLeadBoundInvariant extends the lead-bound property to
// weighted tenants: randomized open-loop scenarios whose streams carry
// random fair-share weights in [0.5, 4]. Virtual time is charged at
// charge/weight, so the bound's window term is the engagement window
// over the lightest charged weight (core's LeadBound tracks that);
// within it, no backlogged tenant may lead the system virtual time,
// and no stream may starve — a small weight buys a small share, not
// zero service.
func TestWeightedDFQLeadBoundInvariant(t *testing.T) {
	const scenarios = 6
	for i := 0; i < scenarios; i++ {
		i := i
		t.Run(fmt.Sprintf("scenario%d", i), func(t *testing.T) {
			rng := sim.NewRNG(sim.StreamSeed(1, "dfq-weighted-invariant", i))
			streams, load := randomScenario(rng)
			for j := range streams {
				streams[j].Tenant.Weight = 0.5 + 3.5*rng.Float64()
				if j == 0 {
					streams[j].Tenant.Weight = 4 // always one heavyweight in the mix
				}
			}
			eng := sim.NewEngine()
			srv, err := New(eng, Config{
				Fleet:      fleet.Config{Devices: 1, Sched: "dfq", RunLimit: time.Second, Seed: int64(rng.Intn(1 << 30))},
				AdmitDepth: 256,
				Streams:    streams,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.RunFor(600 * time.Millisecond)
			if err := srv.SetupError(); err != nil {
				t.Fatal(err)
			}

			dfq := srv.Fleet().Nodes()[0].DFQ()
			if dfq == nil {
				t.Fatal("node scheduler is not DFQ")
			}
			if dfq.Cycles < 3 {
				t.Fatalf("only %d engagement episodes; scenario too idle to test anything", dfq.Cycles)
			}
			if dfq.LeadViolations != 0 {
				t.Errorf("load %.2f: %d weighted lead-bound violations (max lead %v, bound %v)",
					load, dfq.LeadViolations, dfq.MaxLead, dfq.LeadBound())
			}
			if dfq.MaxLead > dfq.LeadBound() {
				t.Errorf("max observed lead %v exceeds weighted bound %v", dfq.MaxLead, dfq.LeadBound())
			}
			for j := range streams {
				if srv.Stats(j).Completed == 0 {
					t.Errorf("stream %d (weight %.2f) starved: %d arrivals, 0 completions (load %.2f)",
						j, streams[j].Tenant.ShareWeight(), srv.Stats(j).Arrivals, load)
				}
			}
		})
	}
}

// TestDFQLeadBoundInvariant is the property-based fairness invariant:
// across randomized open-loop scenarios (each from its own forked RNG
// stream), no backlogged tenant's virtual time may lead the minimum —
// the system virtual time — by more than the paper's bound of one
// free-run horizon plus one engagement window (core's LeadBound), and
// the device must never sit idle while work is queued in its rings
// (work conservation).
func TestDFQLeadBoundInvariant(t *testing.T) {
	const scenarios = 6
	for i := 0; i < scenarios; i++ {
		i := i
		t.Run(fmt.Sprintf("scenario%d", i), func(t *testing.T) {
			rng := sim.NewRNG(sim.StreamSeed(1, "dfq-invariant", i))
			streams, load := randomScenario(rng)
			eng := sim.NewEngine()
			srv, err := New(eng, Config{
				Fleet:      fleet.Config{Devices: 1, Sched: "dfq", RunLimit: time.Second, Seed: int64(rng.Intn(1 << 30))},
				AdmitDepth: 256,
				Streams:    streams,
			})
			if err != nil {
				t.Fatal(err)
			}
			node := srv.Fleet().Nodes()[0]

			// Work-conservation sampler: a violation is the device sitting
			// idle at two consecutive probes while requests wait in its
			// rings. (A single probe can legitimately catch the instant
			// between a doorbell and the engine picking the work up within
			// one tick; persistence across 100µs cannot.)
			idleWithWork := 0
			violations := 0
			var probe func()
			probe = func() {
				pending := 0
				for _, ctx := range node.Device.Contexts() {
					for _, ch := range ctx.Channels() {
						pending += ch.Pending()
					}
				}
				if node.Device.CurrentRequest() == nil && pending > 0 {
					idleWithWork++
					if idleWithWork >= 2 {
						violations++
					}
				} else {
					idleWithWork = 0
				}
				eng.After(100*time.Microsecond, probe)
			}
			eng.After(100*time.Microsecond, probe)

			eng.RunFor(600 * time.Millisecond)
			if err := srv.SetupError(); err != nil {
				t.Fatal(err)
			}

			dfq := node.DFQ()
			if dfq == nil {
				t.Fatal("node scheduler is not DFQ")
			}
			if dfq.Cycles < 3 {
				t.Fatalf("only %d engagement episodes; scenario too idle to test anything", dfq.Cycles)
			}
			if dfq.LeadViolations != 0 {
				t.Errorf("load %.2f: %d lead-bound violations (max lead %v, bound %v)",
					load, dfq.LeadViolations, dfq.MaxLead, dfq.LeadBound())
			}
			if dfq.MaxLead > dfq.LeadBound() {
				t.Errorf("max observed lead %v exceeds bound %v", dfq.MaxLead, dfq.LeadBound())
			}
			if violations != 0 {
				t.Errorf("work conservation: device idle with ring work at %d consecutive probes", violations)
			}
			for j := range streams {
				if srv.Stats(j).Completed == 0 {
					t.Errorf("stream %d starved: %d arrivals, 0 completions (load %.2f)",
						j, srv.Stats(j).Arrivals, load)
				}
			}
		})
	}
}
