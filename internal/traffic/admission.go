package traffic

import (
	"repro/internal/workload"
)

// Admission is the front-door admission controller: it sheds arriving
// requests while the fleet-wide queue depth (placed-but-unfinished
// requests, including those still waiting in dispatcher queues) is at
// or above the arriving tenant's tier bound. Bounding depth bounds
// queueing delay — under overload the system converts unbounded latency
// growth into an explicit shed rate, which is the difference between a
// brown-out and a melt-down.
//
// Admission is tier-aware: each workload.Tier has its own depth bound,
// so under rising backlog best-effort traffic is refused first, then
// standard, and premium last. MaxDepth is the standard tier's bound and
// the reference the other tiers derive from (see Bound); explicit
// per-tier overrides go in TierDepths. A controller with MaxDepth <= 0
// and no TierDepths is disabled: every arrival is admitted, queues grow
// without bound when offered load exceeds capacity (the serve
// experiment's admission-off rows demonstrate exactly that), and — so a
// disabled controller is never mistaken for an enabled one that simply
// never shed — no decisions are counted.
type Admission struct {
	// MaxDepth is the standard tier's fleet queue-depth bound; <= 0
	// disables shedding (unless TierDepths is set).
	MaxDepth int

	// TierDepths overrides the derived per-tier bounds; a tier absent
	// from the map keeps its MaxDepth-derived default. A non-empty map
	// enables the controller even when MaxDepth <= 0.
	TierDepths map[workload.Tier]int

	// Admitted and Shed count front-door decisions since the last
	// ResetStats. A disabled controller counts nothing.
	Admitted int64
	Shed     int64

	tierAdmitted map[workload.Tier]int64
	tierShed     map[workload.Tier]int64
}

// Enabled reports whether the controller is making admission decisions
// at all. Disabled controllers admit everything and keep all counters
// at zero.
func (a *Admission) Enabled() bool {
	return a.MaxDepth > 0 || len(a.TierDepths) > 0
}

// Bound returns the queue-depth bound applied to the given tier: the
// TierDepths override if present, otherwise a default derived from
// MaxDepth — best-effort at half of it (shed first), standard at
// exactly it (the pre-tier behavior), premium at 1.25x (a headroom
// band only premium may queue into, so it sheds last). A zero return
// means arrivals of that tier are never shed.
func (a *Admission) Bound(tier workload.Tier) int {
	tier = tier.Normalize()
	if d, ok := a.TierDepths[tier]; ok {
		return d
	}
	// The map's keys normalize too: a caller that builds TierDepths with
	// the zero-value tier (meaning standard, as everywhere else) must
	// bound standard arrivals, not silently fall through to the derived
	// default. A canonical key wins over an alias; among the rest only
	// "" aliases TierStandard, so the scan stays deterministic.
	for k, d := range a.TierDepths {
		if k.Normalize() == tier {
			return d
		}
	}
	if a.MaxDepth <= 0 {
		return 0
	}
	switch tier.Normalize() {
	case workload.TierPremium:
		head := a.MaxDepth / 4
		if head < 1 {
			head = 1 // premium keeps shed-last headroom even at tiny bounds
		}
		return a.MaxDepth + head
	case workload.TierBestEffort:
		d := a.MaxDepth / 2
		if d < 1 {
			d = 1
		}
		return d
	default:
		return a.MaxDepth
	}
}

// AdmitTier decides one arrival of the given tier at the current fleet
// queue depth and records the decision (unless the controller is
// disabled, in which case everything is admitted uncounted).
func (a *Admission) AdmitTier(tier workload.Tier, depth int) bool {
	if !a.Enabled() {
		return true
	}
	tier = tier.Normalize()
	if bound := a.Bound(tier); bound > 0 && depth >= bound {
		a.Shed++
		if a.tierShed == nil {
			a.tierShed = make(map[workload.Tier]int64)
		}
		a.tierShed[tier]++
		return false
	}
	a.Admitted++
	if a.tierAdmitted == nil {
		a.tierAdmitted = make(map[workload.Tier]int64)
	}
	a.tierAdmitted[tier]++
	return true
}

// Admit decides one arrival of the standard tier — the pre-tier entry
// point, kept for single-tier callers.
func (a *Admission) Admit(depth int) bool {
	return a.AdmitTier(workload.TierStandard, depth)
}

// TierCounts returns the tier's admitted and shed decision counts since
// the last ResetStats.
func (a *Admission) TierCounts(tier workload.Tier) (admitted, shed int64) {
	tier = tier.Normalize()
	return a.tierAdmitted[tier], a.tierShed[tier]
}

// ShedRate returns the shed fraction of all counted decisions (0 when
// idle or disabled).
func (a *Admission) ShedRate() float64 {
	total := a.Admitted + a.Shed
	if total == 0 {
		return 0
	}
	return float64(a.Shed) / float64(total)
}

// ResetStats clears the decision counters (warmup exclusion).
func (a *Admission) ResetStats() {
	a.Admitted, a.Shed = 0, 0
	a.tierAdmitted, a.tierShed = nil, nil
}
