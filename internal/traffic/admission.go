package traffic

// Admission is the front-door admission controller: it sheds arriving
// requests while the fleet-wide queue depth (placed-but-unfinished
// requests, including those still waiting in dispatcher queues) is at
// or above MaxDepth. Bounding depth bounds queueing delay — under
// overload the system converts unbounded latency growth into an
// explicit shed rate, which is the difference between a brown-out and
// a melt-down. MaxDepth <= 0 disables control: every arrival is
// admitted and queues grow without bound when offered load exceeds
// capacity (the serve experiment's admission-off rows demonstrate
// exactly that).
type Admission struct {
	// MaxDepth is the fleet queue-depth bound; <= 0 disables shedding.
	MaxDepth int

	// Admitted and Shed count front-door decisions since the last
	// ResetStats.
	Admitted int64
	Shed     int64
}

// Admit decides one arrival given the current fleet queue depth and
// records the decision.
func (a *Admission) Admit(depth int) bool {
	if a.MaxDepth > 0 && depth >= a.MaxDepth {
		a.Shed++
		return false
	}
	a.Admitted++
	return true
}

// ShedRate returns the shed fraction of all decisions (0 when idle).
func (a *Admission) ShedRate() float64 {
	total := a.Admitted + a.Shed
	if total == 0 {
		return 0
	}
	return float64(a.Shed) / float64(total)
}

// ResetStats clears the decision counters (warmup exclusion).
func (a *Admission) ResetStats() { a.Admitted, a.Shed = 0, 0 }
