package traffic

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// drawArrivals advances a process from time zero for the window and
// returns the arrival times.
func drawArrivals(a Arrival, rng *sim.RNG, window sim.Duration) []sim.Time {
	var out []sim.Time
	now := sim.Time(0)
	for {
		now = now.Add(a.Next(now, rng))
		if now.Sub(0) > window {
			return out
		}
		out = append(out, now)
	}
}

// TestArrivalMeanRates: every process family must realize its declared
// MeanRate over a long window.
func TestArrivalMeanRates(t *testing.T) {
	const window = 20 * time.Second
	cases := []struct {
		name string
		mk   func() Arrival
		tol  float64
	}{
		{"deterministic", func() Arrival { return Deterministic{Rate: 500} }, 0.01},
		{"poisson", func() Arrival { return Poisson{Rate: 500} }, 0.05},
		{"mmpp", func() Arrival {
			return NewMMPP(100, 2000, 30*time.Millisecond, 10*time.Millisecond)
		}, 0.15},
		{"diurnal", func() Arrival {
			return Diurnal{Base: 500, Amplitude: 0.8, Period: 100 * time.Millisecond}
		}, 0.05},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := c.mk()
			rng := sim.NewRNG(11)
			got := float64(len(drawArrivals(a, rng, window))) / window.Seconds()
			want := a.MeanRate()
			if got < want*(1-c.tol) || got > want*(1+c.tol) {
				t.Fatalf("empirical rate %.1f/s, declared %.1f/s (tol %.0f%%)", got, want, 100*c.tol)
			}
		})
	}
}

// TestArrivalDeterminism: identical seeds must produce identical
// arrival sequences — the property the parallel harness rests on.
func TestArrivalDeterminism(t *testing.T) {
	mk := func() []sim.Time {
		a := NewMMPP(50, 3000, 20*time.Millisecond, 5*time.Millisecond)
		return drawArrivals(a, sim.NewRNG(7), 2*time.Second)
	}
	x, y := mk(), mk()
	if len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}

// TestMMPPBurstiness: an on/off MMPP must concentrate arrivals far
// beyond a Poisson process of the same mean — measured as the maximum
// arrivals in any burst-sized window.
func TestMMPPBurstiness(t *testing.T) {
	const window = 5 * time.Second
	const bin = 10 * time.Millisecond
	peak := func(a Arrival) int {
		counts := map[int64]int{}
		for _, at := range drawArrivals(a, sim.NewRNG(3), window) {
			counts[int64(at)/int64(bin)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	mmpp := NewMMPP(0, 4000, 30*time.Millisecond, 10*time.Millisecond)
	pois := Poisson{Rate: mmpp.MeanRate()}
	if mp, pp := peak(mmpp), peak(pois); mp < 2*pp {
		t.Fatalf("MMPP peak bin %d not bursty vs Poisson peak bin %d", mp, pp)
	}
}

// TestDiurnalModulation: arrivals in the rising half-period must
// outnumber the falling half by roughly the modulation depth.
func TestDiurnalModulation(t *testing.T) {
	period := 100 * time.Millisecond
	a := Diurnal{Base: 2000, Amplitude: 0.8, Period: period}
	highs, lows := 0, 0
	for _, at := range drawArrivals(a, sim.NewRNG(5), 10*time.Second) {
		if int64(at)%int64(period) < int64(period)/2 {
			highs++ // sin positive: above-base rate
		} else {
			lows++
		}
	}
	if highs < lows*2 {
		t.Fatalf("diurnal modulation invisible: %d high-half vs %d low-half arrivals", highs, lows)
	}
}
