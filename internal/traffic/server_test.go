package traffic

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/workload"
)

const us = time.Microsecond

// oneStream builds a single-device server with one open-loop stream.
func oneStream(t *testing.T, sched string, admitDepth int, size sim.Duration, a Arrival) (*sim.Engine, *Server) {
	t.Helper()
	eng := sim.NewEngine()
	srv, err := New(eng, Config{
		Fleet:      fleet.Config{Devices: 1, Sched: sched, RunLimit: time.Second, Seed: 1},
		AdmitDepth: admitDepth,
		Streams: []Stream{
			{Tenant: workload.OpenLoopTenant("web", size, 0), Arrival: a},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, srv
}

// TestOpenLoopLatencyStamping: under direct access at light load, every
// completion carries a sojourn close to its service time, and goodput
// matches the offered rate.
func TestOpenLoopLatencyStamping(t *testing.T) {
	eng, srv := oneStream(t, "direct", 0, 200*us, Deterministic{Rate: 1000})
	eng.RunFor(500 * time.Millisecond)
	if err := srv.SetupError(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats(0)
	if st.Completed < 450 {
		t.Fatalf("completed %d of ~500 offered", st.Completed)
	}
	if st.Shed != 0 || st.Aborted != 0 {
		t.Fatalf("unexpected shed=%d aborted=%d at 20%% load", st.Shed, st.Aborted)
	}
	p50, p99 := st.Latency.Quantile(0.5), st.Latency.Quantile(0.99)
	if p50 < 200*us || p50 > 260*us {
		t.Fatalf("p50 sojourn %v, want ~service time 200µs", p50)
	}
	if p99 > 400*us {
		t.Fatalf("p99 sojourn %v at 20%% load, want well under 2x service", p99)
	}
}

// TestOpenLoopArrivalsIgnoreCompletions: open-loop means the source
// never slows down under overload — arrivals track the offered rate
// even when the device can serve a fraction of them.
func TestOpenLoopArrivalsIgnoreCompletions(t *testing.T) {
	// 3x overload: size 300µs at 10000/s offered on one device.
	eng, srv := oneStream(t, "direct", 0, 300*us, Deterministic{Rate: 10000})
	eng.RunFor(300 * time.Millisecond)
	st := srv.Stats(0)
	if st.Arrivals < 2900 || st.Arrivals > 3100 {
		t.Fatalf("arrivals %d, want ~3000: the source must not close the loop", st.Arrivals)
	}
	// Service keeps up with at most capacity (~3333/s -> ~1000).
	if st.Completed > 1100 {
		t.Fatalf("completed %d exceeds device capacity", st.Completed)
	}
	// No admission control: the backlog is the difference.
	if depth := srv.Fleet().QueueDepth(); depth < 1500 {
		t.Fatalf("queue depth %d, want ~2000 unserved requests queued", depth)
	}
}

// TestAdmissionBoundsQueueDepth: with a depth bound, overload turns
// into shed rate instead of unbounded queues, and sojourns stay
// bounded by the backlog the bound allows.
func TestAdmissionBoundsQueueDepth(t *testing.T) {
	eng, srv := oneStream(t, "direct", 32, 300*us, Deterministic{Rate: 10000})
	probe := func() {
		if depth := srv.Fleet().QueueDepth(); depth > 32 {
			t.Fatalf("queue depth %d exceeded admission bound 32", depth)
		}
	}
	for at := 10 * time.Millisecond; at < 300*time.Millisecond; at += 10 * time.Millisecond {
		eng.After(at, probe)
	}
	eng.RunFor(300 * time.Millisecond)
	st := srv.Stats(0)
	if st.ShedRate() < 0.5 {
		t.Fatalf("shed rate %.2f under 3x overload, want >= 0.5", st.ShedRate())
	}
	if st.Completed < 900 {
		t.Fatalf("completed %d: admission must not starve goodput", st.Completed)
	}
	// 32 queued requests of 300µs bound the sojourn at ~10ms.
	if p99 := st.Latency.Quantile(0.99); p99 > 15*time.Millisecond {
		t.Fatalf("p99 %v: admission should bound latency at depth*size", p99)
	}
}

// TestServeResetStats: warmup exclusion must clear counters but keep
// the system serving.
func TestServeResetStats(t *testing.T) {
	eng, srv := oneStream(t, "dfq", 64, 200*us, Poisson{Rate: 2000})
	eng.RunFor(100 * time.Millisecond)
	srv.ResetStats()
	if st := srv.Stats(0); st.Arrivals != 0 || st.Completed != 0 || st.Latency.N() != 0 {
		t.Fatal("ResetStats left stream counters behind")
	}
	eng.RunFor(200 * time.Millisecond)
	if st := srv.Stats(0); st.Completed == 0 {
		t.Fatal("no completions after ResetStats")
	}
}

// TestStickyPlacementServesFromWarmDevice: with sticky placement and
// light load, a tenant's requests stay on one device and pay no cold
// reconstruction; round-robin pays it nearly every request.
func TestStickyPlacementServesFromWarmDevice(t *testing.T) {
	build := func(policy string) *StreamStats {
		eng := sim.NewEngine()
		pol, err := fleet.NewPolicy(policy)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(eng, Config{
			Fleet:      fleet.Config{Devices: 2, Policy: pol, Sched: "direct", RunLimit: time.Second, Seed: 1},
			AdmitDepth: 0,
			Streams: []Stream{
				{Tenant: workload.OpenLoopTenant("warm", 200*us, 400*us), Arrival: Deterministic{Rate: 1000}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunFor(200 * time.Millisecond)
		return srv.Stats(0)
	}
	sticky := build("sticky")
	rr := build("rr")
	if sticky.ColdTime > 0 {
		t.Fatalf("sticky placement paid %v cold time at light load", sticky.ColdTime)
	}
	if rr.ColdTime == 0 {
		t.Fatal("round-robin paid no cold time; the working-set model is not wired")
	}
	if sticky.Latency.Quantile(0.5) >= rr.Latency.Quantile(0.5) {
		t.Fatalf("sticky p50 %v not better than round-robin p50 %v",
			sticky.Latency.Quantile(0.5), rr.Latency.Quantile(0.5))
	}
}
