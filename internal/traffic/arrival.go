package traffic

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// never is the gap returned when a process's current rate is zero: far
// enough out that the stream is silent for any experiment window, small
// enough that Time.Add never saturates.
const never = sim.Duration(1) << 55

// Arrival is an open-loop arrival process: a source of inter-arrival
// gaps that does not depend on request completions (no think time, no
// closed-loop coupling). Implementations may keep state (MMPP phase),
// so an Arrival instance belongs to exactly one stream of one scenario
// — construct fresh instances per scenario, never share them.
//
// Next must be deterministic given (now, the stream's RNG state, the
// process's own state); all randomness must come from rng.
type Arrival interface {
	// Name identifies the process family in reports.
	Name() string
	// MeanRate returns the long-run average arrival rate, in requests
	// per second — the quantity load-factor calibration divides by.
	MeanRate() float64
	// Next returns the gap from now to the next arrival.
	Next(now sim.Time, rng *sim.RNG) sim.Duration
}

// expGap draws an exponential inter-arrival gap for the given rate in
// events/second (a homogeneous Poisson step). Zero or negative rates
// yield never; gaps are floored at 1 ns so open-loop generators always
// advance virtual time.
func expGap(rng *sim.RNG, rate float64) sim.Duration {
	if rate <= 0 {
		return never
	}
	u := rng.Float64()
	gap := sim.Duration(-math.Log(1-u) / rate * 1e9)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Deterministic arrivals tick at exactly 1/Rate intervals — the
// cleanest probe stream for latency percentiles, since every variance
// in its sojourn times comes from the system, not the source.
type Deterministic struct {
	Rate float64 // arrivals per second
}

// Name implements Arrival.
func (Deterministic) Name() string { return "deterministic" }

// MeanRate implements Arrival.
func (d Deterministic) MeanRate() float64 { return d.Rate }

// Next implements Arrival.
func (d Deterministic) Next(now sim.Time, rng *sim.RNG) sim.Duration {
	if d.Rate <= 0 {
		return never
	}
	gap := sim.Duration(1e9 / d.Rate)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Poisson arrivals have exponential inter-arrival gaps — the memoryless
// baseline for aggregate user traffic.
type Poisson struct {
	Rate float64 // arrivals per second
}

// Name implements Arrival.
func (Poisson) Name() string { return "poisson" }

// MeanRate implements Arrival.
func (p Poisson) MeanRate() float64 { return p.Rate }

// Next implements Arrival.
func (p Poisson) Next(now sim.Time, rng *sim.RNG) sim.Duration {
	return expGap(rng, p.Rate)
}

// MMPP is a two-state Markov-modulated Poisson process: Poisson
// arrivals at BurstRate during exponentially distributed bursts of mean
// BurstDwell, and at BaseRate (often zero) between them. This is the
// bursty adversary shape: long-run rate within its fair share, burst
// rate far above capacity.
type MMPP struct {
	BaseRate   float64      // arrivals/second between bursts
	BurstRate  float64      // arrivals/second during bursts
	BaseDwell  sim.Duration // mean time between bursts
	BurstDwell sim.Duration // mean burst length

	// phase state: the process starts in the base state at time zero and
	// lazily initializes on first use.
	burst    bool
	stateEnd sim.Time
	started  bool
}

// NewMMPP returns a two-state burst process with the given parameters.
func NewMMPP(baseRate, burstRate float64, baseDwell, burstDwell sim.Duration) *MMPP {
	return &MMPP{BaseRate: baseRate, BurstRate: burstRate, BaseDwell: baseDwell, BurstDwell: burstDwell}
}

// Name implements Arrival.
func (*MMPP) Name() string { return "mmpp" }

// MeanRate implements Arrival: the dwell-weighted average of the two
// state rates.
func (m *MMPP) MeanRate() float64 {
	total := float64(m.BaseDwell + m.BurstDwell)
	if total <= 0 {
		return 0
	}
	return (m.BaseRate*float64(m.BaseDwell) + m.BurstRate*float64(m.BurstDwell)) / total
}

// Next implements Arrival: exponential steps at the current state's
// rate; steps that would cross the state boundary restart from it at
// the other state's rate (the memoryless property makes the restart
// exact, not an approximation).
func (m *MMPP) Next(now sim.Time, rng *sim.RNG) sim.Duration {
	if !m.started {
		m.started = true
		m.burst = false
		m.stateEnd = now.Add(m.dwell(rng))
	}
	t := now
	for {
		rate := m.BaseRate
		if m.burst {
			rate = m.BurstRate
		}
		gap := expGap(rng, rate)
		if next := t.Add(gap); next <= m.stateEnd {
			return next.Sub(now)
		}
		t = m.stateEnd
		m.burst = !m.burst
		m.stateEnd = t.Add(m.dwell(rng))
	}
}

// dwell draws the current state's exponential holding time.
func (m *MMPP) dwell(rng *sim.RNG) sim.Duration {
	mean := m.BaseDwell
	if m.burst {
		mean = m.BurstDwell
	}
	if mean <= 0 {
		return 1
	}
	return expGap(rng, 1e9/float64(mean))
}

// Staggered arrivals fire once at Phase, then every Gap thereafter — a
// deterministic comb with a per-stream offset. Storm populations use
// it: spreading Phase evenly over one Gap across 10^4 streams gives a
// uniform arrival front instead of a synchronized spike at time zero,
// while still guaranteeing every stream fires in every Gap-wide window.
// The process is stateful (the first gap differs from the rest), so
// construct a fresh instance per stream, never share one.
type Staggered struct {
	Phase sim.Duration // offset of the first arrival
	Gap   sim.Duration // steady inter-arrival gap after the first

	started bool
}

// Name implements Arrival.
func (*Staggered) Name() string { return "staggered" }

// MeanRate implements Arrival: the steady rate once past the phase-in.
func (s *Staggered) MeanRate() float64 {
	if s.Gap <= 0 {
		return 0
	}
	return 1e9 / float64(s.Gap)
}

// Next implements Arrival.
func (s *Staggered) Next(now sim.Time, rng *sim.RNG) sim.Duration {
	if !s.started {
		s.started = true
		if s.Phase >= 1 {
			return s.Phase
		}
		return 1
	}
	if s.Gap < 1 {
		return never
	}
	return s.Gap
}

// Diurnal is a nonhomogeneous Poisson process whose rate follows a
// sinusoidal day/night cycle: rate(t) = Base * (1 + Amplitude *
// sin(2*pi*t/Period)). Arrivals are generated by Lewis-Shedler
// thinning against the peak rate, so the process is exact, not a
// stepwise approximation.
type Diurnal struct {
	Base      float64      // mean arrivals per second
	Amplitude float64      // modulation depth in [0, 0.95]
	Period    sim.Duration // cycle length
}

// Name implements Arrival.
func (Diurnal) Name() string { return "diurnal" }

// MeanRate implements Arrival: the sinusoid integrates to zero over a
// period, so the mean is Base.
func (d Diurnal) MeanRate() float64 { return d.Base }

// Next implements Arrival.
func (d Diurnal) Next(now sim.Time, rng *sim.RNG) sim.Duration {
	amp := d.Amplitude
	if amp < 0 {
		amp = 0
	}
	if amp > 0.95 {
		amp = 0.95
	}
	peak := d.Base * (1 + amp)
	if peak <= 0 || d.Period <= 0 {
		return never
	}
	t := now
	for {
		t = t.Add(expGap(rng, peak))
		phase := 2 * math.Pi * float64(t) / float64(d.Period)
		rate := d.Base * (1 + amp*math.Sin(phase))
		if rng.Float64()*peak <= rate {
			return t.Sub(now)
		}
	}
}

// Describe renders an arrival process for notes and debugging.
func Describe(a Arrival) string {
	return fmt.Sprintf("%s(%.0f/s)", a.Name(), a.MeanRate())
}
