package traffic

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// regWrites sums the direct (doorbell) writes across every channel
// register on the node's device — one per un-batched submission, one
// per flushed batch.
func regWrites(n *fleet.Node) int64 {
	var writes int64
	for _, ctx := range n.Device.Contexts() {
		for _, ch := range ctx.Channels() {
			writes += ch.Reg.DirectWrites
		}
	}
	return writes
}

// TestBatchDrainOneDoorbellPerBacklog is the batch-staging contract at
// its sharpest: a dispatcher that wakes to a k-item backlog stages all
// k on the channel and rings exactly one doorbell, where the
// per-request drain rings k. The backlog is hand-fed before the drain
// spawns so the doorbell count is exact, not statistical.
func TestBatchDrainOneDoorbellPerBacklog(t *testing.T) {
	const backlog = 8
	run := func(batch bool) (writes, completed int64) {
		eng := sim.NewEngine()
		srv, err := New(eng, Config{
			Fleet:      fleet.Config{Devices: 1, Sched: "direct", Seed: 1},
			BatchDrain: batch,
			Streams: []Stream{
				// Arrival far beyond the horizon: the queue is fed by hand.
				{Tenant: workload.OpenLoopTenant("b", 50*us, 0), Arrival: Deterministic{Rate: 1}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		node := srv.Fleet().Nodes()[0]
		st := srv.streams[0]
		d := &dispatcher{srv: srv, st: st, node: node, gate: eng.NewGate("dispatch-test")}
		d.doneFn = d.onDone
		st.disp[node] = d
		for i := 0; i < backlog; i++ {
			srv.Fleet().PlaceRequest(st.ft)
			d.queue = append(d.queue, item{arrival: eng.Now()})
		}
		eng.Spawn("dispatch", d.run)
		eng.RunFor(10 * time.Millisecond)
		if err := srv.SetupError(); err != nil {
			t.Fatal(err)
		}
		return regWrites(node), st.stats.Completed
	}

	plainWrites, plainDone := run(false)
	batchWrites, batchDone := run(true)
	if plainDone != backlog || batchDone != backlog {
		t.Fatalf("completed %d un-batched / %d batched, want %d each", plainDone, batchDone, backlog)
	}
	if plainWrites != backlog {
		t.Errorf("un-batched drain rang %d doorbells for %d requests, want one each", plainWrites, backlog)
	}
	if batchWrites != 1 {
		t.Errorf("batched drain rang %d doorbells for a %d-item backlog, want exactly 1", batchWrites, backlog)
	}
}

// TestBatchDrainUnderDFQEngagement runs batched and per-request drains
// under Disengaged Fair Queueing at overload. While the register is
// engaged the batch path must refuse — each submission still blocks in
// its own fault, which is the interposition the scheduler's sampling
// depends on — and the backlog that piles up behind those faults
// collapses into single doorbells once the free run disengages the
// register. Goodput must not change: batching amortizes submission,
// never capacity.
func TestBatchDrainUnderDFQEngagement(t *testing.T) {
	run := func(batch bool) (completed, arrivals, writes, cycles, flushes, staged int64) {
		eng := sim.NewEngine()
		srv, err := New(eng, Config{
			Fleet: fleet.Config{
				Devices: 1, Sched: "dfq", RunLimit: time.Second, Seed: 1,
				DFQ: core.DFQConfig{SamplePeriod: 2 * time.Millisecond, SampleRequests: 64, FreeRunMultiplier: 1},
			},
			BatchDrain: batch,
			Streams: []Stream{
				{Tenant: workload.OpenLoopTenant("a", 300*us, 0), Arrival: Deterministic{Rate: 3000}},
				{Tenant: workload.OpenLoopTenant("b", 300*us, 0), Arrival: Poisson{Rate: 3000}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunFor(300 * time.Millisecond)
		if err := srv.SetupError(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			completed += srv.Stats(i).Completed
			arrivals += srv.Stats(i).Arrivals
			flushes += srv.Stats(i).Flushes
			staged += srv.Stats(i).Batched
		}
		return completed, arrivals, regWrites(srv.Fleet().Nodes()[0]),
			srv.Fleet().Nodes()[0].DFQ().Cycles, flushes, staged
	}
	plain, plainArrivals, plainWrites, _, _, _ := run(false)
	batched, _, batchWrites, batchCycles, flushes, staged := run(true)
	t.Logf("arrivals %d, doorbells un-batched %d vs batched %d, %d flushes carried %d submissions, %d DFQ cycles",
		plainArrivals, plainWrites, batchWrites, flushes, staged, batchCycles)

	if batched < plain*9/10 {
		t.Errorf("batched goodput %d vs %d un-batched: batching must not cost capacity", batched, plain)
	}
	// Engaged-path submissions ring no doorbell in either mode (the
	// fault carries them); the direct remainder rings one each
	// un-batched, so batching must save exactly what the multi-item
	// flushes collapse.
	if saved := staged - flushes; saved <= 0 {
		t.Errorf("%d flushes carried %d submissions: no backlog ever collapsed", flushes, staged)
	}
	if batchWrites >= plainWrites {
		t.Errorf("batched doorbells %d vs %d un-batched: batching saved nothing", batchWrites, plainWrites)
	}
	// Engagement interposition survives batching: the DFQ cycle
	// machinery (barrier, sampling, free-run) keeps running.
	if batchCycles < 3 {
		t.Errorf("only %d DFQ cycles under batched drain: engagement path not exercised", batchCycles)
	}
}

// TestBatchDrainStampsSojourns: batching must not lose per-request
// arrival stamps — sojourn latencies stay per-request even when the
// whole backlog is delivered in one doorbell event.
func TestBatchDrainStampsSojourns(t *testing.T) {
	eng := sim.NewEngine()
	srv, err := New(eng, Config{
		Fleet:      fleet.Config{Devices: 1, Sched: "direct", RunLimit: time.Second, Seed: 1},
		BatchDrain: true,
		Streams: []Stream{
			{Tenant: workload.OpenLoopTenant("b", 200*us, 0), Arrival: Deterministic{Rate: 1000}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(300 * time.Millisecond)
	st := srv.Stats(0)
	if st.Completed < 250 {
		t.Fatalf("completed %d of ~300 offered", st.Completed)
	}
	p50 := st.Latency.Quantile(0.5)
	if p50 < 200*us || p50 > 260*us {
		t.Fatalf("p50 sojourn %v under batched drain, want ~service time 200µs", p50)
	}
}

// benchDispatcherDrain measures one 32-item backlog drain end to end —
// wake, submission, device execution, completion accounting — with
// per-request doorbells vs one batched flush. The batched drain saves
// two events and a DirectWrite of pacing per request; the delta is the
// dispatcher-side submission cost the batch amortizes.
func benchDispatcherDrain(b *testing.B, batch bool) {
	const backlog = 32
	eng := sim.NewEngine()
	srv, err := New(eng, Config{
		Fleet:      fleet.Config{Devices: 1, Sched: "direct", Seed: 1},
		BatchDrain: batch,
		Streams: []Stream{
			// Rate 0 never fires: every backlog is fed by hand.
			{Tenant: workload.OpenLoopTenant("b", us, 0), Arrival: Deterministic{Rate: 0}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	node := srv.Fleet().Nodes()[0]
	st := srv.streams[0]
	d := &dispatcher{srv: srv, st: st, node: node, gate: eng.NewGate("dispatch-bench")}
	d.doneFn = d.onDone
	st.disp[node] = d
	eng.Spawn("dispatch", d.run)
	eng.RunFor(time.Millisecond)
	fill := func() {
		for j := 0; j < backlog; j++ {
			srv.Fleet().PlaceRequest(st.ft)
			d.queue = append(d.queue, item{arrival: eng.Now()})
		}
		if d.ready && d.idle {
			d.idle = false
			d.gate.Signal()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(0, fill)
		eng.RunFor(200 * time.Microsecond)
	}
	if st.stats.Completed < int64(b.N*backlog) {
		b.Fatalf("completed %d of %d submitted", st.stats.Completed, b.N*backlog)
	}
}

func BenchmarkDispatcherDrain(b *testing.B)        { benchDispatcherDrain(b, false) }
func BenchmarkDispatcherDrainBatched(b *testing.B) { benchDispatcherDrain(b, true) }

// TestColdRebuildNotCountedWhenTaskDies is the regression test for the
// dispatcher's cold-rebuild accounting: when the tenant's task dies
// while its virtual context waits for a hardware slot, the rebuild
// submission returns nil and its working-set time must NOT be charged
// to ColdTime — the rebuild never reached the device.
//
// The death window is built by hand: a hog tenant pins the device's
// only hardware context forever, so the victim dispatcher's cold
// submission parks in the mux attach queue, where the kill lands.
func TestColdRebuildNotCountedWhenTaskDies(t *testing.T) {
	eng := sim.NewEngine()
	srv, err := New(eng, Config{
		Fleet: fleet.Config{Devices: 1, GPU: gpu.Config{MaxContexts: 1}, Sched: "direct", Seed: 1},
		Streams: []Stream{
			// Arrival far beyond the horizon: the queue is fed by hand.
			{Tenant: workload.OpenLoopTenant("victim", 100*us, 400*us), Arrival: Deterministic{Rate: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	node := srv.Fleet().Nodes()[0]

	// The hog attaches and pins the only hardware context, forever.
	hog := srv.Fleet().NewTenant(workload.OpenLoopTenant("hog", 100*us, 0))
	hold := eng.NewGate("hold")
	eng.Spawn("hog", func(p *sim.Proc) {
		c, err := hog.Client(p, node)
		if err != nil {
			t.Errorf("hog client: %v", err)
			return
		}
		if _, err := c.VC.Acquire(p, gpu.Compute); err != nil {
			t.Errorf("hog acquire: %v", err)
			return
		}
		p.Wait(hold)
	})
	eng.RunFor(time.Millisecond)

	// Hand-feed the victim's dispatcher one cold item and spawn its
	// drain; the client opens detached (pool exhausted) and the cold
	// rebuild parks waiting for a slot.
	st := srv.streams[0]
	d := &dispatcher{srv: srv, st: st, node: node, gate: eng.NewGate("dispatch-test")}
	d.doneFn = d.onDone
	st.disp[node] = d
	srv.Fleet().PlaceRequest(st.ft)
	d.queue = append(d.queue, item{arrival: eng.Now(), cold: true})
	eng.Spawn("dispatch", d.run)
	eng.RunFor(time.Millisecond)

	task := st.ft.Task(node)
	if task == nil || !task.Alive {
		t.Fatal("victim task not set up, or died early")
	}
	node.Kernel.KillTask(task, "test: die while waiting for a slot")
	eng.RunFor(time.Millisecond)

	if st.stats.ColdTime != 0 {
		t.Errorf("ColdTime = %v for a rebuild that was never submitted, want 0", st.stats.ColdTime)
	}
	if st.stats.Aborted != 1 {
		t.Errorf("Aborted = %d, want 1: the queued request can never be served", st.stats.Aborted)
	}
	if depth := srv.Fleet().QueueDepth(); depth != 0 {
		t.Errorf("fleet queue depth %d after abort, want 0", depth)
	}
}
