package neon

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/mmio"
	"repro/internal/sim"
)

// recordingSched is a minimal Scheduler that records events and lets
// everything run, optionally keeping channels engaged.
type recordingSched struct {
	engageAll bool
	admitted  []*Task
	exited    []*Task
	activated []*ChannelState
	faults    int
	blockers  map[*Task]bool // tasks whose faults should block
}

func (r *recordingSched) Name() string         { return "recording" }
func (r *recordingSched) Start(*Kernel)        {}
func (r *recordingSched) TaskAdmitted(t *Task) { r.admitted = append(r.admitted, t) }
func (r *recordingSched) TaskExited(t *Task)   { r.exited = append(r.exited, t) }
func (r *recordingSched) ChannelActivated(cs *ChannelState) {
	r.activated = append(r.activated, cs)
	cs.Ch.Reg.SetPresent(!r.engageAll)
}
func (r *recordingSched) HandleFault(p *sim.Proc, t *Task, cs *ChannelState) {
	r.faults++
	if r.blockers != nil && r.blockers[t] {
		p.WaitFor(t.Gate(), func() bool { return !t.Alive || !r.blockers[t] })
	}
}

func testKernel(t *testing.T, sched Scheduler) (*sim.Engine, *gpu.Device, *Kernel) {
	t.Helper()
	e := sim.NewEngine()
	d := gpu.New(e, gpu.DefaultConfig())
	return e, d, NewKernel(d, sched)
}

// openChannel creates a task with one compute channel, from inside a
// task process, and returns both once setup completes.
func openChannel(t *testing.T, e *sim.Engine, k *Kernel) (*Task, *ChannelState) {
	t.Helper()
	task := k.NewTask("t")
	var cs *ChannelState
	task.Go("setup", func(p *sim.Proc) {
		ctx, err := k.CreateContext(p, task, "ctx")
		if err != nil {
			t.Errorf("CreateContext: %v", err)
			return
		}
		cs, err = k.CreateChannel(p, task, ctx, gpu.Compute)
		if err != nil {
			t.Errorf("CreateChannel: %v", err)
		}
	})
	e.RunFor(time.Millisecond)
	if cs == nil {
		t.Fatal("channel setup did not finish")
	}
	return task, cs
}

func TestInitializationPhaseTracksChannels(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	if len(sched.admitted) != 1 || sched.admitted[0] != task {
		t.Fatal("TaskAdmitted not delivered")
	}
	if len(sched.activated) != 1 || sched.activated[0] != cs {
		t.Fatal("ChannelActivated not delivered")
	}
	if !cs.Active {
		t.Fatal("channel not marked active after init phase")
	}
	if len(task.Channels()) != 1 || len(task.Contexts()) != 1 {
		t.Fatal("task bookkeeping wrong")
	}
}

func TestEngagedSubmissionFaultsIntoScheduler(t *testing.T) {
	sched := &recordingSched{engageAll: true}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		r := cs.Ch.Stage(10*time.Microsecond, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
	})
	e.RunFor(time.Millisecond)
	if sched.faults != 1 || cs.Faults != 1 || k.TotalFaults != 1 {
		t.Fatalf("fault counts: sched=%d cs=%d kernel=%d", sched.faults, cs.Faults, k.TotalFaults)
	}
}

func TestDisengagedSubmissionBypassesKernel(t *testing.T) {
	sched := &recordingSched{engageAll: false}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r := cs.Ch.Stage(10*time.Microsecond, gpu.Compute)
			cs.Ch.Reg.Store(p, r.Ref)
			p.Wait(r.DoneGate())
		}
	})
	e.RunFor(time.Millisecond)
	if k.TotalFaults != 0 {
		t.Fatalf("disengaged task faulted %d times", k.TotalFaults)
	}
	if cs.Ch.Completions != 5 {
		t.Fatalf("completions = %d", cs.Ch.Completions)
	}
}

func TestEngageDisengageFlipsProtection(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	if !cs.Ch.Reg.Present() {
		t.Fatal("channel should start direct-mapped under this policy")
	}
	k.Engage(task)
	if cs.Ch.Reg.Present() {
		t.Fatal("Engage did not protect the page")
	}
	k.Disengage(task)
	if !cs.Ch.Reg.Present() {
		t.Fatal("Disengage did not unprotect the page")
	}
}

func TestFaultCostsChargedToSubmitter(t *testing.T) {
	sched := &recordingSched{engageAll: true}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	var took sim.Duration
	task.Go("work", func(p *sim.Proc) {
		start := p.Now()
		r := cs.Ch.Stage(10*time.Microsecond, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
		took = p.Now().Sub(start)
	})
	e.RunFor(time.Millisecond)
	want := k.Costs().InterceptCost()
	if took != want {
		t.Fatalf("intercepted store took %v, want %v", took, want)
	}
}

func TestDrainWaitsForOutstanding(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		r := cs.Ch.Stage(500*time.Microsecond, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
	})
	var res DrainResult
	e.Spawn("sched", func(p *sim.Proc) {
		p.Sleep(50 * time.Microsecond) // let the request start
		res = k.Drain(p, []*Task{task})
	})
	e.RunFor(10 * time.Millisecond)
	at, ok := res.DrainedAt[task]
	if !ok {
		t.Fatal("drain never completed")
	}
	// Completion at ~500us, observed at the next poll tick.
	if at < sim.Time(500*time.Microsecond) {
		t.Fatalf("drained at %v, before the request finished", at)
	}
	if at > sim.Time(500*time.Microsecond+2*k.Costs().PollInterval) {
		t.Fatalf("drained at %v, more than 2 poll ticks late", at)
	}
}

func TestDrainImmediateWhenIdle(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	task, _ := openChannel(t, e, k)
	var took sim.Duration
	e.Spawn("sched", func(p *sim.Proc) {
		start := p.Now()
		k.Drain(p, []*Task{task})
		took = p.Now().Sub(start)
	})
	e.RunFor(time.Millisecond)
	if took > 100*time.Microsecond {
		t.Fatalf("idle drain took %v; should complete immediately", took)
	}
}

func TestDrainOveruseCharge(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		r := cs.Ch.Stage(2*time.Millisecond, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
	})
	var res DrainResult
	var deadline sim.Time
	e.Spawn("sched", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond)
		deadline = p.Now() // pretend the slice ended now
		res = k.Drain(p, []*Task{task})
	})
	e.RunFor(10 * time.Millisecond)
	over := res.Overuse(task, deadline)
	// The request runs ~1.9ms past the deadline.
	if over < 1800*time.Microsecond || over > 2*time.Millisecond+2*k.Costs().PollInterval {
		t.Fatalf("overuse = %v, want ~1.9ms", over)
	}
	if res.Overuse(task, deadline+sim.Time(time.Hour)) != 0 {
		t.Fatal("overuse after generous deadline should be 0")
	}
}

func TestDrainKillsHungTask(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	k.RequestRunLimit = 5 * time.Millisecond
	attacker, acs := openChannel(t, e, k)
	victim, vcs := openChannel(t, e, k)
	attacker.Go("attack", func(p *sim.Proc) {
		r := acs.Ch.Stage(gpu.Forever, gpu.Compute)
		acs.Ch.Reg.Store(p, r.Ref)
	})
	victim.Go("work", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		r := vcs.Ch.Stage(10*time.Microsecond, gpu.Compute)
		vcs.Ch.Reg.Store(p, r.Ref)
	})
	var res DrainResult
	e.Spawn("sched", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		res = k.Drain(p, []*Task{attacker, victim})
	})
	e.RunFor(100 * time.Millisecond)
	if attacker.Alive {
		t.Fatal("hung task not killed")
	}
	if len(res.Killed) != 1 || res.Killed[0] != attacker {
		t.Fatalf("Killed = %v", res.Killed)
	}
	if !victim.Alive {
		t.Fatal("innocent task killed")
	}
	if _, ok := res.DrainedAt[victim]; !ok {
		t.Fatal("victim never drained after the kill")
	}
	if k.Kills != 1 {
		t.Fatalf("Kills = %d", k.Kills)
	}
}

func TestSampleMeasuresServiceTimes(t *testing.T) {
	sched := &recordingSched{engageAll: true}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		for i := 0; i < 100 && task.Alive; i++ {
			r := cs.Ch.Stage(50*time.Microsecond, gpu.Compute)
			cs.Ch.Reg.Store(p, r.Ref)
			p.Wait(r.DoneGate())
		}
	})
	var res SampleResult
	e.Spawn("sched", func(p *sim.Proc) {
		res = k.Sample(p, task, 5*time.Millisecond, 8)
	})
	e.RunFor(20 * time.Millisecond)
	if len(res.Sizes) != 8 {
		t.Fatalf("sampled %d requests, want 8 (early stop)", len(res.Sizes))
	}
	if res.Mean() != 50*time.Microsecond {
		t.Fatalf("mean = %v, want 50us", res.Mean())
	}
}

func TestSampleTimesOutOnIdleTask(t *testing.T) {
	sched := &recordingSched{engageAll: true}
	e, _, k := testKernel(t, sched)
	task, _ := openChannel(t, e, k)
	var res SampleResult
	e.Spawn("sched", func(p *sim.Proc) {
		res = k.Sample(p, task, 2*time.Millisecond, 8)
	})
	e.RunFor(10 * time.Millisecond)
	if len(res.Sizes) != 0 {
		t.Fatalf("sampled %d from an idle task", len(res.Sizes))
	}
	if res.Elapsed != 2*time.Millisecond {
		t.Fatalf("Elapsed = %v, want the full window", res.Elapsed)
	}
	if res.Mean() != 0 {
		t.Fatal("mean of nothing should be 0")
	}
	if e.LiveProcs() > 2 { // task setup proc finished; work proc none
		t.Fatalf("leaked watcher procs: %d live", e.LiveProcs())
	}
}

func TestKillTaskCleansUp(t *testing.T) {
	sched := &recordingSched{}
	e, d, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		r := cs.Ch.Stage(gpu.Forever, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
		p.Sleep(time.Hour)
		t.Error("killed task kept running")
	})
	e.RunFor(time.Millisecond)
	k.KillTask(task, "test")
	e.RunFor(time.Millisecond)
	if task.Alive {
		t.Fatal("task still alive")
	}
	if task.ExitReason != "killed: test" {
		t.Fatalf("ExitReason = %q", task.ExitReason)
	}
	if d.ContextCount() != 0 {
		t.Fatal("contexts not freed")
	}
	if len(sched.exited) != 1 {
		t.Fatal("TaskExited not delivered")
	}
	if len(k.Tasks()) != 0 {
		t.Fatal("dead task still listed")
	}
	// Idempotent.
	k.KillTask(task, "again")
	if k.Kills != 1 {
		t.Fatalf("Kills = %d after double kill", k.Kills)
	}
}

func TestVoluntaryExit(t *testing.T) {
	sched := &recordingSched{}
	e, d, k := testKernel(t, sched)
	task, _ := openChannel(t, e, k)
	task.Exit()
	e.RunFor(time.Millisecond)
	if task.Alive || task.ExitReason != "exited" {
		t.Fatalf("alive=%v reason=%q", task.Alive, task.ExitReason)
	}
	if d.ContextCount() != 0 {
		t.Fatal("contexts not freed on exit")
	}
	if k.Kills != 0 {
		t.Fatal("voluntary exit counted as kill")
	}
}

func TestChannelPolicyQuotas(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	k.Policy = &ChannelPolicy{MaxChannelsPerTask: 2, MaxTasks: 1}
	hog := k.NewTask("hog")
	second := k.NewTask("second")
	var hogErr, secondErr error
	hog.Go("main", func(p *sim.Proc) {
		ctx, _ := k.CreateContext(p, hog, "c")
		if _, err := k.CreateChannel(p, hog, ctx, gpu.Compute); err != nil {
			hogErr = err
			return
		}
		if _, err := k.CreateChannel(p, hog, ctx, gpu.DMA); err != nil {
			hogErr = err
			return
		}
		_, hogErr = k.CreateChannel(p, hog, ctx, gpu.Compute) // third: over quota
	})
	e.RunFor(time.Millisecond)
	second.Go("main", func(p *sim.Proc) {
		_, secondErr = k.CreateContext(p, second, "c")
	})
	e.RunFor(time.Millisecond)
	if hogErr != ErrChannelQuota {
		t.Fatalf("hog's third channel err = %v, want quota", hogErr)
	}
	if secondErr != ErrChannelQuota {
		t.Fatalf("second task's context err = %v, want quota (MaxTasks=1)", secondErr)
	}
}

func TestBlockedFaultDelaysSubmission(t *testing.T) {
	sched := &recordingSched{engageAll: true, blockers: map[*Task]bool{}}
	e, _, k := testKernel(t, sched)
	task, cs := openChannel(t, e, k)
	sched.blockers[task] = true
	var r *gpu.Request
	task.Go("work", func(p *sim.Proc) {
		r = cs.Ch.Stage(10*time.Microsecond, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
	})
	e.RunFor(5 * time.Millisecond)
	if r.IsDone() {
		t.Fatal("blocked submission reached the device")
	}
	sched.blockers[task] = false
	task.Gate().Broadcast()
	e.RunFor(5 * time.Millisecond)
	if !r.IsDone() {
		t.Fatal("released submission never completed")
	}
}

func TestMMIOWriteTypeVisible(t *testing.T) {
	// Compile-time sanity: the kernel handler signature matches mmio.
	var h mmio.FaultHandler = func(p *sim.Proc, w mmio.Write) {}
	_ = h
}
