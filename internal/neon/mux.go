package neon

import (
	"repro/internal/gpu"
	"repro/internal/sim"
)

// This file is the virtual-context multiplexing front-end: a per-device
// table of logical contexts that lets the kernel host far more clients
// than the device's fixed pool of hardware contexts (48 on the paper's
// GTX670). A logical context (VContext) is bound to a task for its
// lifetime and lazily attached to a hardware context on first use. When
// the pool is exhausted, an idle logical context is detached LRU-style
// — its hardware slot (context plus channels) is gracefully released
// back to the device without disturbing the task's device memory — and
// the next attach of that logical context recreates the hardware state,
// paying the setup syscalls plus the paper's ContextSwitch cost.
//
// Attach order under exhaustion is FIFO: a blocked attach enqueues a
// waiter, and freed slots (request completions that leave a context
// idle, or task exits) are granted to waiters in arrival order. Waiters
// block on their task's gate, so the machinery adds no simulation
// events unless it is actually exercised — kernels whose clients all
// fit in the hardware pool run an event sequence byte-identical to the
// un-multiplexed stack.

// MuxStats are the kernel's virtual-context multiplexing counters.
type MuxStats struct {
	// Opens counts logical contexts created via OpenVirtual.
	Opens int64
	// Attaches counts hardware attaches (first attach and reattach).
	Attaches int64
	// Reattaches counts attaches that recreated previously evicted
	// hardware state (each pays cost.ContextSwitch on top of setup).
	Reattaches int64
	// Evictions counts LRU detaches of idle logical contexts.
	Evictions int64
	// AttachWaits counts attaches that had to queue for a free slot.
	AttachWaits int64
	// MaxAttached is the high-water mark of concurrently attached
	// logical contexts; it can never exceed the device's MaxContexts.
	MaxAttached int
}

// muxState is the kernel's multiplexing state, nil until the first
// OpenVirtual call so non-multiplexed kernels pay nothing.
type muxState struct {
	vcs      map[*gpu.Context]*VContext // attached, by hardware context
	attached []*VContext                // attach order (unordered set; LRU is by lastUsed)
	waiters  []*muxWaiter               // FIFO attach queue
	reserved int                        // slots granted to waiters not yet consumed
	clock    uint64                     // logical LRU clock, bumped per use
	stats    MuxStats
}

// muxWaiter is one queued attach. The waiting process blocks on its
// task's gate until granted (or the task dies).
type muxWaiter struct {
	vc      *VContext
	granted bool
}

// VContext is a logical (virtual) GPU context: the handle user-level
// clients hold instead of a raw *gpu.Context. It is created once per
// client and survives detach/reattach cycles transparently.
type VContext struct {
	k     *Kernel
	task  *Task
	label string
	kinds []gpu.Kind

	hw    *gpu.Context    // nil while detached
	chans []*ChannelState // hardware channels while attached, one per kind

	pins         int    // active users; a pinned context is not evictable
	lastUsed     uint64 // mux clock at last Acquire
	everAttached bool   // reattaches (everAttached && attach) pay ContextSwitch
	attaching    bool   // an attach is in flight; concurrent users wait
	closed       bool   // task exited
	waiter       *muxWaiter

	reattaches int64
}

// OpenVirtual creates a logical context for the task with one channel
// per kind. If a hardware slot is free it attaches eagerly — paying
// exactly the setup syscalls a raw context creation would, so
// populations within the hardware pool are indistinguishable from the
// un-multiplexed stack. Otherwise the logical context starts detached
// and the first Acquire attaches it (queueing for a slot if needed).
func (k *Kernel) OpenVirtual(p *sim.Proc, t *Task, label string, kinds ...gpu.Kind) (*VContext, error) {
	if !t.Alive {
		return nil, gpu.ErrContextDead
	}
	if k.mux == nil {
		k.mux = &muxState{vcs: make(map[*gpu.Context]*VContext)}
		prev := k.dev.CompletionObserver
		k.dev.CompletionObserver = func(r *gpu.Request) {
			if prev != nil {
				prev(r)
			}
			k.muxPump()
		}
	}
	vc := &VContext{k: k, task: t, label: label, kinds: kinds}
	t.vctxs = append(t.vctxs, vc)
	k.mux.stats.Opens++
	if k.muxFree() > 0 {
		if err := vc.attach(p); err != nil {
			return nil, err
		}
		vc.unpin()
	}
	return vc, nil
}

// MuxStatus returns a snapshot of the multiplexing counters (zero value
// when the kernel has never multiplexed).
func (k *Kernel) MuxStatus() MuxStats {
	if k.mux == nil {
		return MuxStats{}
	}
	return k.mux.stats
}

// muxFree returns the number of hardware context slots available to the
// mux: pool size minus live contexts minus slots already granted to
// queued waiters.
func (k *Kernel) muxFree() int {
	return k.dev.Config().MaxContexts - k.dev.ContextCount() - k.mux.reserved
}

// Task returns the owning task.
func (vc *VContext) Task() *Task { return vc.task }

// Attached reports whether the logical context currently holds a
// hardware context.
func (vc *VContext) Attached() bool { return vc.hw != nil }

// HW returns the current hardware context (nil while detached).
func (vc *VContext) HW() *gpu.Context { return vc.hw }

// Reattaches counts how many times this logical context was re-attached
// after an eviction.
func (vc *VContext) Reattaches() int64 { return vc.reattaches }

// ChannelIf returns the attached hardware channel of the given kind
// without attaching or pinning; nil while detached.
func (vc *VContext) ChannelIf(kind gpu.Kind) *gpu.Channel {
	for _, cs := range vc.chans {
		if cs.Ch.Kind == kind {
			return cs.Ch
		}
	}
	return nil
}

// Acquire returns the hardware channel of the given kind, attaching the
// logical context first if necessary (which may block p waiting for a
// slot). The context is pinned — ineligible for eviction — until the
// matching Release. Returns an error only when the task is dead or a
// protection policy denies the attach.
func (vc *VContext) Acquire(p *sim.Proc, kind gpu.Kind) (*gpu.Channel, error) {
	if err := vc.ensure(p); err != nil {
		return nil, err
	}
	for _, cs := range vc.chans {
		if cs.Ch.Kind == kind {
			return cs.Ch, nil
		}
	}
	vc.unpin()
	return nil, gpu.ErrContextDead
}

// AcquireIf is the non-blocking form of Acquire for the engine-driven
// submission fast path: if the logical context is currently attached and
// usable it pins it — bumping the LRU clock exactly as Acquire would —
// and returns the hardware channel of the given kind. It never attaches,
// never waits, and consumes no process context; it reports false when
// the context is detached, mid-attach, or dead, and callers fall back to
// the blocking Acquire from a real process.
func (vc *VContext) AcquireIf(kind gpu.Kind) (*gpu.Channel, bool) {
	if vc.closed || !vc.task.Alive || vc.hw == nil || vc.attaching {
		return nil, false
	}
	for _, cs := range vc.chans {
		if cs.Ch.Kind == kind {
			m := vc.k.mux
			vc.pins++
			m.clock++
			vc.lastUsed = m.clock
			return cs.Ch, true
		}
	}
	return nil, false
}

// Peek is the side-effect-free form of AcquireIf: it reports whether the
// logical context is currently attached and usable and returns the
// hardware channel of the given kind, without pinning and — critically —
// without bumping the LRU clock. Refusal checks (is the fast path even
// available? is the register engaged?) must use Peek, not AcquireIf:
// a submission that ends up on the blocking path must charge exactly one
// LRU use, the Acquire it retries with, or the mux's eviction order
// drifts from the blocking-only timeline. The channel pointer is only
// valid within the current engine instant.
func (vc *VContext) Peek(kind gpu.Kind) (*gpu.Channel, bool) {
	if vc.closed || !vc.task.Alive || vc.hw == nil || vc.attaching {
		return nil, false
	}
	for _, cs := range vc.chans {
		if cs.Ch.Kind == kind {
			return cs.Ch, true
		}
	}
	return nil, false
}

// Release unpins the logical context after an Acquire. Channel pointers
// obtained from Acquire must not be stored across a Release: the next
// attach may produce fresh ones.
func (vc *VContext) Release() { vc.unpin() }

// ensure attaches (or joins an in-flight attach) and pins. On success
// the caller owns one pin.
func (vc *VContext) ensure(p *sim.Proc) error {
	for {
		if vc.closed || !vc.task.Alive {
			return gpu.ErrContextDead
		}
		m := vc.k.mux
		if vc.hw != nil {
			vc.pins++
			m.clock++
			vc.lastUsed = m.clock
			return nil
		}
		if !vc.attaching {
			return vc.attach(p)
		}
		// Another process of this task is attaching; wait for it.
		p.WaitFor(vc.task.gate, func() bool {
			return !vc.attaching || vc.closed || !vc.task.Alive
		})
	}
}

// attach binds the logical context to a hardware context, creating the
// context and its channels through the normal setup syscalls. It blocks
// p while the pool is exhausted and nothing is evictable. On success
// the context is pinned once and, if this is a reattach, the paper's
// ContextSwitch cost has been charged.
func (vc *VContext) attach(p *sim.Proc) error {
	k := vc.k
	m := k.mux
	vc.attaching = true
	defer func() {
		vc.attaching = false
		vc.task.gate.Broadcast()
	}()
	for {
		if vc.closed || !vc.task.Alive {
			return gpu.ErrContextDead
		}
		if k.muxFree() <= 0 && !k.muxEvictLRU() {
			w := &muxWaiter{vc: vc}
			vc.waiter = w
			m.waiters = append(m.waiters, w)
			m.stats.AttachWaits++
			p.WaitFor(vc.task.gate, func() bool {
				return w.granted || vc.closed || !vc.task.Alive
			})
			vc.waiter = nil
			if !w.granted {
				k.muxRemoveWaiter(w)
				return gpu.ErrContextDead
			}
			m.reserved--
			if vc.closed || !vc.task.Alive {
				k.muxPump() // hand the slot on
				return gpu.ErrContextDead
			}
		}
		ctx, err := k.CreateContext(p, vc.task, vc.label)
		if err == gpu.ErrNoContexts {
			// A non-multiplexed client took the slot during the syscall
			// sleep; go around again.
			continue
		}
		if err != nil {
			k.muxPump()
			return err
		}
		chans := make([]*ChannelState, 0, len(vc.kinds))
		var cherr error
		for _, kind := range vc.kinds {
			cs, err := k.CreateChannel(p, vc.task, ctx, kind)
			if err != nil {
				cherr = err
				break
			}
			chans = append(chans, cs)
		}
		if cherr != nil {
			// Roll the partial attach back and release the slot.
			for _, cs := range chans {
				delete(k.byPage, cs.Ch.Reg)
				vc.task.removeChannel(cs)
			}
			vc.task.removeContext(ctx)
			if !ctx.Dead() {
				if err := k.dev.ReleaseContext(ctx); err != nil {
					panic("neon: mux rollback of busy context: " + err.Error())
				}
			}
			k.muxPump()
			return cherr
		}
		vc.hw = ctx
		vc.chans = chans
		m.vcs[ctx] = vc
		m.attached = append(m.attached, vc)
		if n := len(m.attached); n > m.stats.MaxAttached {
			m.stats.MaxAttached = n
		}
		m.stats.Attaches++
		vc.pins++
		m.clock++
		vc.lastUsed = m.clock
		if vc.everAttached {
			vc.reattaches++
			m.stats.Reattaches++
			p.Sleep(k.costs.ContextSwitch)
		}
		vc.everAttached = true
		return nil
	}
}

func (vc *VContext) unpin() {
	if vc.pins > 0 {
		vc.pins--
	}
	if vc.pins == 0 && len(vc.k.mux.waiters) > 0 {
		vc.k.muxPump()
	}
}

// evictable reports whether the attached logical context can be
// detached right now: unpinned, every channel quiescent, none sampling.
func (vc *VContext) evictable() bool {
	if vc.hw == nil || vc.pins > 0 || vc.attaching {
		return false
	}
	for _, cs := range vc.chans {
		if cs.sampling || !cs.Ch.Idle() {
			return false
		}
	}
	return true
}

// muxEvictLRU detaches the least-recently-used evictable logical
// context, freeing its hardware slot. Returns false when nothing is
// evictable.
func (k *Kernel) muxEvictLRU() bool {
	m := k.mux
	var victim *VContext
	for _, vc := range m.attached {
		if !vc.evictable() {
			continue
		}
		if victim == nil || vc.lastUsed < victim.lastUsed {
			victim = vc
		}
	}
	if victim == nil {
		return false
	}
	k.muxDetach(victim)
	return true
}

// muxDetach gracefully releases an idle logical context's hardware
// state. The task keeps its identity, accounting history, and device
// memory; only the context and channels go back to the pool.
func (k *Kernel) muxDetach(vc *VContext) {
	m := k.mux
	for _, cs := range vc.chans {
		vc.task.retiredDone += cs.Ch.Completions
		delete(k.byPage, cs.Ch.Reg)
		vc.task.removeChannel(cs)
	}
	vc.task.removeContext(vc.hw)
	if err := k.dev.ReleaseContext(vc.hw); err != nil {
		panic("neon: mux detach of busy context: " + err.Error())
	}
	delete(m.vcs, vc.hw)
	for i, x := range m.attached {
		if x == vc {
			m.attached = append(m.attached[:i], m.attached[i+1:]...)
			break
		}
	}
	vc.hw = nil
	vc.chans = nil
	m.stats.Evictions++
}

// muxPump grants freed hardware slots to queued attach waiters in FIFO
// order, evicting idle LRU contexts as needed. Called after request
// completions, task exits, and unpins; a kernel with no waiters returns
// immediately.
func (k *Kernel) muxPump() {
	m := k.mux
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		if w.vc.closed || !w.vc.task.Alive {
			m.waiters = m.waiters[1:]
			continue
		}
		if k.muxFree() <= 0 && !k.muxEvictLRU() {
			return
		}
		m.waiters = m.waiters[1:]
		m.reserved++
		w.granted = true
		w.vc.task.gate.Broadcast()
	}
}

// muxRemoveWaiter drops a cancelled waiter from the queue, if present.
func (k *Kernel) muxRemoveWaiter(w *muxWaiter) {
	m := k.mux
	for i, x := range m.waiters {
		if x == w {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// muxTaskExited unlinks a dead task's logical contexts (their hardware
// contexts were already destroyed by the device exit protocol) and
// recycles any slots or grants the task held.
func (k *Kernel) muxTaskExited(t *Task) {
	m := k.mux
	if m == nil {
		return
	}
	for _, vc := range t.vctxs {
		vc.closed = true
		if w := vc.waiter; w != nil {
			if w.granted {
				// Granted but never consumed; the slot goes back.
				m.reserved--
				w.granted = false
			} else {
				k.muxRemoveWaiter(w)
			}
			vc.waiter = nil
		}
		if vc.hw != nil {
			delete(m.vcs, vc.hw)
			for i, x := range m.attached {
				if x == vc {
					m.attached = append(m.attached[:i], m.attached[i+1:]...)
					break
				}
			}
			vc.hw = nil
			vc.chans = nil
		}
	}
	t.vctxs = nil
	k.muxPump()
}
