package neon

import (
	"repro/internal/gpu"
	"repro/internal/sim"
)

// SampleResult is what a sampling run learned about a task.
type SampleResult struct {
	// Sizes are the observed service times of requests that completed
	// within the sampling window, in completion order.
	Sizes []sim.Duration
	// Elapsed is how long the sampling window lasted.
	Elapsed sim.Duration
}

// Mean returns the average observed service time, or 0 if none completed.
func (s SampleResult) Mean() sim.Duration {
	if len(s.Sizes) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, d := range s.Sizes {
		sum += d
	}
	return sum / sim.Duration(len(s.Sizes))
}

// sampleState tracks an in-progress sampling run.
type sampleState struct {
	active   bool
	want     int
	sizes    []sim.Duration
	gate     *sim.Gate
	watchers []*sim.Proc
}

// Sample gives the scheduler a measured look at task t's requests: with
// the task engaged (every submission intercepted), observed requests'
// service times are recorded until either maxReqs requests complete or
// maxDur elapses, whichever comes first. The caller must have arranged
// exclusive device access for t (that is the point of the engagement
// episode in Disengaged Fair Queueing).
//
// Completion times are observed per request; the prototype achieves this
// by running its polling service at high rate during the short sampling
// window, so no additional cost is charged beyond the per-request
// interception already paid by the fault path.
func (k *Kernel) Sample(p *sim.Proc, t *Task, maxDur sim.Duration, maxReqs int) SampleResult {
	st := &sampleState{active: true, want: maxReqs, gate: k.eng.NewGate("sample-" + t.Name)}
	start := p.Now()
	t.sample = st
	for _, cs := range t.channels {
		cs.sampling = true
		cs.watchedRef = cs.Ch.LastSubmittedRef
	}
	p.WaitTimeout(st.gate, maxDur)
	st.active = false
	if t.Alive {
		for _, cs := range t.channels {
			cs.sampling = false
		}
	}
	t.sample = nil
	for _, w := range st.watchers {
		if !w.Finished() {
			w.Kill()
		}
	}
	return SampleResult{Sizes: st.sizes, Elapsed: p.Now().Sub(start)}
}

// watchStaged registers completion watchers for requests newly staged on
// a sampled channel. Called from the fault handler.
func (k *Kernel) watchStaged(cs *ChannelState) {
	st := cs.Task.sample
	if st == nil || !st.active {
		return
	}
	for _, r := range cs.Ch.StagedRequests() {
		if r.Ref <= cs.watchedRef {
			continue
		}
		cs.watchedRef = r.Ref
		req := r
		// The watcher reads timing fields after the done gate opens, so
		// the request must survive any completion-time recycling.
		req.Pin()
		w := k.eng.Spawn("sample-watch", func(p *sim.Proc) {
			p.Wait(req.DoneGate())
			st.observe(req)
		})
		st.watchers = append(st.watchers, w)
	}
}

func (st *sampleState) observe(r *gpu.Request) {
	if !st.active || r.Aborted {
		return
	}
	st.sizes = append(st.sizes, r.Completed.Sub(r.Started))
	if len(st.sizes) >= st.want {
		st.gate.Open()
	}
}
