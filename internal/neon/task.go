package neon

import (
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Task is the resource principal to which fair service is provided — an
// OS process in the prototype. It owns GPU contexts and channels, runs
// one or more simulated processes (threads), and carries the accounting
// state the schedulers maintain for it.
type Task struct {
	ID    gpu.TaskID
	Name  string
	Alive bool

	// Weight is the task's fair-share weight: under contention a
	// fair-queueing scheduler grants service in proportion to it (a
	// weight-4 task receives four times a weight-1 task's share), because
	// every ledger charges the task's virtual time at charge/Weight. Zero
	// or negative means the default weight of 1 — equal shares, the
	// paper's regime. Set it before the task submits work; schedulers
	// read it through ShareWeight at every charging step.
	Weight float64

	// ExitReason records how the task ended ("exited" or "killed: ...").
	ExitReason string

	kernel   *Kernel
	procs    []*sim.Proc
	contexts []*gpu.Context
	channels []*ChannelState

	// vctxs are the task's logical contexts under virtual-context
	// multiplexing (mux.go); empty for raw clients.
	vctxs []*VContext

	// retiredBusy and retiredDone preserve busy time and completion
	// counts of hardware contexts that were gracefully detached by the
	// mux, so BusyTime and CompletedRequests stay monotone across
	// detach/reattach cycles.
	retiredBusy sim.Duration
	retiredDone int64

	// gate is broadcast whenever scheduler state affecting this task
	// changes; blocked fault handlers re-check their predicates on it.
	gate *sim.Gate

	// sample is the in-progress sampling run, if any.
	sample *sampleState

	// Sched is scratch space for the attached scheduler's per-task state
	// (virtual times, overuse, token bookkeeping). Owned by the scheduler.
	Sched any
}

// Go spawns a thread of this task. Threads are registered so that killing
// the task unwinds them.
func (t *Task) Go(name string, body func(p *sim.Proc)) *sim.Proc {
	p := t.kernel.eng.Spawn(t.Name+"/"+name, body)
	t.procs = append(t.procs, p)
	return p
}

// Gate returns the task's scheduler wait gate. Scheduler implementations
// block faulting processes on it and broadcast it on state changes.
func (t *Task) Gate() *sim.Gate { return t.gate }

// ShareWeight returns the task's effective fair-share weight: Weight, or
// 1 when Weight is unset (zero or negative). Schedulers divide every
// virtual-time charge by it, so service under contention is proportional
// to it.
func (t *Task) ShareWeight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Channels returns the kernel's per-channel state for this task.
func (t *Task) Channels() []*ChannelState { return t.channels }

// Virtualized reports whether the task's GPU access goes through the
// virtual-context mux. A virtualized task with no channels is detached
// (holding no hardware context), not uninitialized.
func (t *Task) Virtualized() bool { return len(t.vctxs) > 0 }

// removeChannel drops the kernel channel state from the task (mux
// detach path).
func (t *Task) removeChannel(cs *ChannelState) {
	for i, x := range t.channels {
		if x == cs {
			t.channels = append(t.channels[:i], t.channels[i+1:]...)
			return
		}
	}
}

// removeContext drops a hardware context from the task, banking its
// busy time (mux detach path).
func (t *Task) removeContext(ctx *gpu.Context) {
	for i, x := range t.contexts {
		if x == ctx {
			t.retiredBusy += ctx.BusyTime
			t.contexts = append(t.contexts[:i], t.contexts[i+1:]...)
			return
		}
	}
}

// Contexts returns the task's GPU contexts.
func (t *Task) Contexts() []*gpu.Context { return t.contexts }

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.kernel }

// Exit ends the task voluntarily, releasing all its resources.
func (t *Task) Exit() { t.exit("exited") }

// exit tears the task down with the given reason.
func (t *Task) exit(reason string) {
	if !t.Alive {
		return
	}
	t.Alive = false
	t.ExitReason = reason
	for _, p := range t.procs {
		p.Kill()
	}
	t.kernel.dev.KillOwner(t.ID)
	for _, cs := range t.channels {
		delete(t.kernel.byPage, cs.Ch.Reg)
	}
	t.channels = nil
	t.contexts = nil
	t.kernel.muxTaskExited(t)
	// Wake anything blocked on scheduler state for this task.
	t.gate.Broadcast()
	t.kernel.sched.TaskExited(t)
}

// BusyTime returns the task's cumulative device busy time across its
// contexts. This is the hardware statistic the paper asks vendors to
// export; only oracle scheduler variants and experiment reporting may
// read it.
func (t *Task) BusyTime() sim.Duration {
	b := t.retiredBusy
	for _, ctx := range t.contexts {
		b += ctx.BusyTime
	}
	return b
}

// CompletedRequests returns the cumulative completion count across the
// task's channels, as observable from reference counters.
func (t *Task) CompletedRequests() int64 {
	n := t.retiredDone
	for _, cs := range t.channels {
		n += cs.Ch.Completions
	}
	return n
}

// PendingRequests returns the number of submitted-but-unfinished requests
// across the task's channels.
func (t *Task) PendingRequests() int {
	n := 0
	for _, cs := range t.channels {
		n += cs.Ch.Pending()
	}
	return n
}
