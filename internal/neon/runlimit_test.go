package neon

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/sim"
)

func TestEnforceRunLimitKillsLongRunner(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	k.RequestRunLimit = 2 * time.Millisecond
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		r := cs.Ch.Stage(gpu.Forever, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
	})
	e.RunFor(time.Millisecond)
	if k.EnforceRunLimit() != nil {
		t.Fatal("killed before the limit elapsed")
	}
	e.RunFor(5 * time.Millisecond)
	if got := k.EnforceRunLimit(); got != task {
		t.Fatalf("EnforceRunLimit = %v, want the hung task", got)
	}
	if task.Alive {
		t.Fatal("task still alive")
	}
}

func TestEnforceRunLimitIgnoresShortRequests(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	k.RequestRunLimit = 2 * time.Millisecond
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		for task.Alive {
			r := cs.Ch.Stage(100*time.Microsecond, gpu.Compute)
			cs.Ch.Reg.Store(p, r.Ref)
			p.Wait(r.DoneGate())
		}
	})
	for i := 1; i <= 20; i++ {
		e.After(sim.Duration(i)*time.Millisecond, func() {
			if k.EnforceRunLimit() != nil {
				t.Error("well-behaved task killed")
			}
		})
	}
	e.RunFor(25 * time.Millisecond)
	if !task.Alive {
		t.Fatal("task died")
	}
}

func TestEnforceRunLimitDisabledByZero(t *testing.T) {
	sched := &recordingSched{}
	e, _, k := testKernel(t, sched)
	k.RequestRunLimit = 0
	task, cs := openChannel(t, e, k)
	task.Go("work", func(p *sim.Proc) {
		r := cs.Ch.Stage(gpu.Forever, gpu.Compute)
		cs.Ch.Reg.Store(p, r.Ref)
	})
	e.RunFor(50 * time.Millisecond)
	if k.EnforceRunLimit() != nil {
		t.Fatal("limit 0 must disable killing")
	}
}

func TestEnforceRunLimitIdleDevice(t *testing.T) {
	sched := &recordingSched{}
	_, _, k := testKernel(t, sched)
	k.RequestRunLimit = time.Millisecond
	if k.EnforceRunLimit() != nil {
		t.Fatal("nothing to kill on an idle device")
	}
}
