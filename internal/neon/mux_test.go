package neon

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// muxKernel builds a kernel on a device with the given hardware-context
// pool size, under the permissive recording scheduler.
func muxKernel(t *testing.T, maxCtx int) (*sim.Engine, *gpu.Device, *Kernel) {
	t.Helper()
	e := sim.NewEngine()
	cfg := gpu.DefaultConfig()
	cfg.MaxContexts = maxCtx
	d := gpu.New(e, cfg)
	return e, d, NewKernel(d, &recordingSched{})
}

// TestMuxHostsStormPastContextCap is the tentpole acceptance test at
// the neon layer: 10^4 logical contexts — 200x the hardware pool — all
// simultaneously open on one 48-context device, every one submitting
// real requests through attach/evict/reattach cycles. Every submission
// must complete, no open or acquire may ever surface ErrNoContexts, and
// the attached high-water mark must respect the hardware cap.
func TestMuxHostsStormPastContextCap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 10^4-task storm (~seconds)")
	}
	const tasks = 10_000
	e, d, k := muxKernel(t, 48)

	var completed int64
	var errs []error
	for i := 0; i < tasks; i++ {
		i := i
		task := k.NewTask(fmt.Sprintf("t%d", i))
		task.Go("storm", func(p *sim.Proc) {
			// Stagger starts so arrival pressure is a front, not a spike.
			p.Sleep(sim.Duration(i) * 100)
			vc, err := k.OpenVirtual(p, task, "v", gpu.Compute)
			if err != nil {
				errs = append(errs, fmt.Errorf("open t%d: %w", i, err))
				return
			}
			for rep := 0; rep < 2; rep++ {
				ch, err := vc.Acquire(p, gpu.Compute)
				if err != nil {
					errs = append(errs, fmt.Errorf("acquire t%d rep %d: %w", i, rep, err))
					return
				}
				r := ch.Stage(time.Microsecond, gpu.Compute)
				ch.Reg.Store(p, r.Ref)
				vc.Release()
				p.Wait(r.DoneGate())
				completed++
				// Idle long enough to be evicted by the rest of the storm,
				// so the second round reattaches.
				p.Sleep(5 * time.Millisecond)
			}
		})
	}
	e.RunFor(time.Second)

	for _, err := range errs {
		t.Error(err)
	}
	if completed != 2*tasks {
		t.Fatalf("completed %d submissions, want %d", completed, 2*tasks)
	}
	st := k.MuxStatus()
	if st.Opens != tasks {
		t.Errorf("opens = %d, want %d", st.Opens, tasks)
	}
	if st.MaxAttached > 48 {
		t.Errorf("attached high-water mark %d exceeds the 48-context pool", st.MaxAttached)
	}
	if d.ContextCount() > 48 {
		t.Errorf("device holds %d hardware contexts, cap 48", d.ContextCount())
	}
	if st.Reattaches == 0 || st.Evictions == 0 {
		t.Errorf("storm never cycled the pool: %d reattaches, %d evictions", st.Reattaches, st.Evictions)
	}
	if got := len(k.Tasks()); got != tasks {
		t.Errorf("%d live tasks at end, want %d — the population must stay hosted", got, tasks)
	}
}

// TestMuxKillMidBacklogRecyclesSlot kills a task whose hardware context
// holds a deep request backlog while another logical context is queued
// waiting for a slot. The exit protocol must abort the backlog, the
// freed slot must be granted to the waiter, and the mux bookkeeping
// (waiter queue, reserved slots) must come out clean.
func TestMuxKillMidBacklogRecyclesSlot(t *testing.T) {
	e, d, k := muxKernel(t, 2)

	// A and B fill the two-slot pool with multi-request backlogs.
	busy := func(name string) *Task {
		task := k.NewTask(name)
		task.Go("fill", func(p *sim.Proc) {
			vc, err := k.OpenVirtual(p, task, name, gpu.Compute)
			if err != nil {
				t.Errorf("open %s: %v", name, err)
				return
			}
			ch, err := vc.Acquire(p, gpu.Compute)
			if err != nil {
				t.Errorf("acquire %s: %v", name, err)
				return
			}
			for i := 0; i < 3; i++ {
				r := ch.Stage(5*time.Millisecond, gpu.Compute)
				ch.Reg.Store(p, r.Ref)
			}
			vc.Release()
		})
		return task
	}
	a := busy("a")
	busy("b")
	e.RunFor(time.Millisecond)

	// C arrives with both slots held by non-idle contexts: its attach
	// must queue, not fail.
	cDone := false
	c := k.NewTask("c")
	c.Go("wait", func(p *sim.Proc) {
		vc, err := k.OpenVirtual(p, c, "c", gpu.Compute)
		if err != nil {
			t.Errorf("open c: %v", err)
			return
		}
		ch, err := vc.Acquire(p, gpu.Compute)
		if err != nil {
			t.Errorf("acquire c: %v", err)
			return
		}
		r := ch.Stage(time.Microsecond, gpu.Compute)
		ch.Reg.Store(p, r.Ref)
		vc.Release()
		p.Wait(r.DoneGate())
		cDone = true
	})
	e.RunFor(time.Millisecond)
	if cDone {
		t.Fatal("c ran before a slot was free; the backlogs did not hold the pool")
	}
	if st := k.MuxStatus(); st.AttachWaits == 0 {
		t.Fatal("c's attach did not queue")
	}

	// Kill A mid-backlog: two of its three 5 ms requests are still
	// queued. The slot must recycle to C.
	k.KillTask(a, "test")
	// B's surviving backlog (~15 ms) still occupies the shared exec
	// engine; C's request completes behind it.
	e.RunFor(30 * time.Millisecond)
	if a.Alive {
		t.Fatal("killed task still alive")
	}
	if !cDone {
		t.Fatal("c never got the killed task's slot")
	}
	if d.ContextCount() > 2 {
		t.Fatalf("device holds %d contexts, cap 2", d.ContextCount())
	}
	if n := len(k.mux.waiters); n != 0 {
		t.Errorf("%d waiters left queued", n)
	}
	if k.mux.reserved != 0 {
		t.Errorf("%d slots left reserved", k.mux.reserved)
	}
}

// TestMuxTightPoolStorm hammers the FIFO waiter machinery: 300 logical
// contexts on a 4-context pool, three submission rounds each. The point
// is that ErrNoContexts is unreachable through the mux no matter how
// oversubscribed the pool gets — exhaustion means waiting, not failing.
func TestMuxTightPoolStorm(t *testing.T) {
	const tasks = 300
	e, _, k := muxKernel(t, 4)

	var completed int64
	var errs []error
	for i := 0; i < tasks; i++ {
		i := i
		task := k.NewTask(fmt.Sprintf("t%d", i))
		task.Go("storm", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * sim.Duration(time.Microsecond))
			vc, err := k.OpenVirtual(p, task, "v", gpu.Compute)
			if err != nil {
				errs = append(errs, fmt.Errorf("open t%d: %w", i, err))
				return
			}
			for rep := 0; rep < 3; rep++ {
				ch, err := vc.Acquire(p, gpu.Compute)
				if err != nil {
					errs = append(errs, fmt.Errorf("acquire t%d rep %d: %w", i, rep, err))
					return
				}
				r := ch.Stage(sim.Duration(1+i%3)*sim.Duration(time.Microsecond), gpu.Compute)
				ch.Reg.Store(p, r.Ref)
				vc.Release()
				p.Wait(r.DoneGate())
				completed++
				p.Sleep(time.Millisecond)
			}
		})
	}
	e.RunFor(100 * time.Millisecond)

	for _, err := range errs {
		t.Error(err)
	}
	if completed != 3*tasks {
		t.Fatalf("completed %d submissions, want %d", completed, 3*tasks)
	}
	if st := k.MuxStatus(); st.MaxAttached > 4 {
		t.Errorf("attached high-water mark %d exceeds the 4-context pool", st.MaxAttached)
	}
}
