// Package neon models the paper's prototype kernel module of the same
// name: the OS-resident machinery that makes disengaged scheduling
// possible without cooperation from the (black-box) GPU stack.
//
// It provides, against the simulated MMIO/GPU substrate, the same three
// functional components as the real module (paper Section 4):
//
//   - an initialization phase that learns about every channel when it is
//     created (channel setup is a syscall, so it cannot be missed even
//     while disengaged);
//   - a page-fault handling mechanism that catches channel-register
//     writes while a channel is engaged, charges the per-fault buffer
//     scanning cost, and passes control to the attached scheduler, which
//     may delay the faulting process arbitrarily;
//   - a polling-thread service that detects request completion by reading
//     device-written reference counters at a configurable granularity —
//     the granularity is the source of draining idleness in the paper's
//     overhead measurements.
//
// On top of these it offers the primitives schedulers are built from:
// engage/disengage, drain barriers with overuse accounting and over-long
// request killing, sampling runs that measure per-request service times,
// and protected channel allocation (Section 6.3).
package neon

import (
	"errors"
	"fmt"

	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/mmio"
	"repro/internal/sim"
)

// ErrChannelQuota is returned when the channel-allocation protection
// policy denies a context or channel request.
var ErrChannelQuota = errors.New("neon: channel allocation quota exceeded")

// Scheduler is the event-based scheduling interface the kernel exposes.
// Implementations live in package core.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Start is called once, after the kernel is constructed. The
	// scheduler may spawn control processes and install initial
	// protection state.
	Start(k *Kernel)
	// TaskAdmitted is called when a task first becomes known.
	TaskAdmitted(t *Task)
	// TaskExited is called when a task exits or is killed.
	TaskExited(t *Task)
	// ChannelActivated is called when a channel completes its
	// initialization phase. The scheduler decides its protection state.
	ChannelActivated(cs *ChannelState)
	// HandleFault is called, in the faulting process's context, for every
	// intercepted request submission. It may block the process (that is
	// how requests are delayed); when it returns the submission proceeds
	// to the device.
	HandleFault(p *sim.Proc, t *Task, cs *ChannelState)
}

// ChannelState is the kernel's per-channel bookkeeping: the channel
// identity plus what interception has learned about it.
type ChannelState struct {
	Ch   *gpu.Channel
	Task *Task

	// Active is set when the initialization state machine has identified
	// the channel's three VMAs and can intercept it.
	Active bool

	// Faults counts intercepted submissions on this channel.
	Faults int64

	sampling    bool
	watchedRef  uint64
	drainTarget uint64
}

// ChannelPolicy is the Section 6.3 protected-allocation policy: no task
// may hold more than MaxChannelsPerTask channels, and no more than
// MaxTasks tasks may hold channels at once.
type ChannelPolicy struct {
	MaxChannelsPerTask int
	MaxTasks           int
}

// Kernel is the NEON module: it owns tasks, channel state, the fault
// handler and the polling service, and drives the attached scheduler.
type Kernel struct {
	eng   *sim.Engine
	dev   *gpu.Device
	costs cost.Model
	sched Scheduler

	tasks      map[gpu.TaskID]*Task
	taskOrder  []*Task
	nextTaskID gpu.TaskID
	byPage     map[*mmio.Page]*ChannelState

	// mux is the virtual-context multiplexing front-end (mux.go), nil
	// until the first OpenVirtual call.
	mux *muxState

	// Label identifies this kernel instance in multi-device fleets; it
	// defaults to the device's configured name and is what per-device
	// schedulers report to fleet-wide reconciliation.
	Label string

	// Policy, when non-nil, enables protected channel allocation.
	Policy *ChannelPolicy

	// RequestRunLimit is the documented maximum time any request may run;
	// tasks exceeding it during a drain are killed. Zero disables killing.
	RequestRunLimit sim.Duration

	// Counters for experiments.
	TotalFaults int64
	Kills       int64
}

// NewKernel attaches a kernel to the device and starts the scheduler.
func NewKernel(dev *gpu.Device, sched Scheduler) *Kernel {
	k := &Kernel{
		eng:    dev.Engine(),
		dev:    dev,
		costs:  dev.Costs(),
		sched:  sched,
		tasks:  make(map[gpu.TaskID]*Task),
		byPage: make(map[*mmio.Page]*ChannelState),
		Label:  dev.Name(),
	}
	sched.Start(k)
	return k
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Device returns the managed device.
func (k *Kernel) Device() *gpu.Device { return k.dev }

// Costs returns the platform latency model.
func (k *Kernel) Costs() cost.Model { return k.costs }

// Scheduler returns the attached scheduling policy.
func (k *Kernel) Scheduler() Scheduler { return k.sched }

// Tasks returns live tasks in admission order.
func (k *Kernel) Tasks() []*Task {
	out := make([]*Task, 0, len(k.taskOrder))
	for _, t := range k.taskOrder {
		if t.Alive {
			out = append(out, t)
		}
	}
	return out
}

// NewTask admits a new resource principal (an OS process).
func (k *Kernel) NewTask(name string) *Task {
	t := &Task{
		ID:     k.nextTaskID,
		Name:   name,
		Alive:  true,
		kernel: k,
		gate:   k.eng.NewGate("task-" + name),
	}
	k.nextTaskID++
	k.tasks[t.ID] = t
	k.taskOrder = append(k.taskOrder, t)
	k.sched.TaskAdmitted(t)
	return t
}

// CreateContext is the context-setup syscall. It pays the trap plus
// driver-work cost and applies the protection policy.
func (k *Kernel) CreateContext(p *sim.Proc, t *Task, label string) (*gpu.Context, error) {
	p.Sleep(k.costs.SyscallTrap + k.costs.SyscallDriverWork)
	if !t.Alive {
		return nil, gpu.ErrContextDead
	}
	if k.Policy != nil && len(t.channels) == 0 && k.holdersCount() >= k.Policy.MaxTasks {
		return nil, ErrChannelQuota
	}
	ctx, err := k.dev.CreateContext(t.ID, label)
	if err != nil {
		return nil, err
	}
	t.contexts = append(t.contexts, ctx)
	return ctx, nil
}

// CreateChannel is the channel-setup syscall: the initialization phase of
// the paper. The kernel identifies the channel's VMAs, installs the fault
// handler, marks the channel active, and lets the scheduler choose its
// initial protection.
func (k *Kernel) CreateChannel(p *sim.Proc, t *Task, ctx *gpu.Context, kind gpu.Kind) (*ChannelState, error) {
	p.Sleep(k.costs.SyscallTrap + k.costs.SyscallDriverWork)
	if !t.Alive {
		return nil, gpu.ErrContextDead
	}
	if k.Policy != nil && len(t.channels) >= k.Policy.MaxChannelsPerTask {
		return nil, ErrChannelQuota
	}
	ch, err := k.dev.CreateChannel(ctx, kind)
	if err != nil {
		return nil, err
	}
	cs := &ChannelState{Ch: ch, Task: t, Active: true}
	t.channels = append(t.channels, cs)
	k.byPage[ch.Reg] = cs
	ch.Reg.SetHandler(k.onFault)
	k.sched.ChannelActivated(cs)
	return cs, nil
}

// holdersCount returns the number of live tasks currently holding
// channels.
func (k *Kernel) holdersCount() int {
	n := 0
	for _, t := range k.taskOrder {
		if t.Alive && len(t.channels) > 0 {
			n++
		}
	}
	return n
}

// onFault is the page-fault handler: every store to an engaged channel
// register lands here, in the faulting process's context.
func (k *Kernel) onFault(p *sim.Proc, w mmio.Write) {
	cs, ok := k.byPage[w.Page]
	if !ok {
		return
	}
	k.TotalFaults++
	cs.Faults++
	// Manipulation cost: scan the channel's buffers to locate the
	// reference counter for this request and map it into kernel space.
	p.Sleep(k.costs.FaultScan)
	if cs.sampling {
		k.watchStaged(cs)
	}
	k.sched.HandleFault(p, cs.Task, cs)
}

// Engage protects every channel of the task: subsequent submissions
// fault into the kernel.
func (k *Kernel) Engage(t *Task) {
	for _, cs := range t.channels {
		cs.Ch.Reg.SetPresent(false)
	}
}

// Disengage unprotects every channel of the task: submissions go straight
// to the device at direct-access cost.
func (k *Kernel) Disengage(t *Task) {
	for _, cs := range t.channels {
		cs.Ch.Reg.SetPresent(true)
	}
}

// EngageAll engages every live task (a barrier precondition).
func (k *Kernel) EngageAll() {
	for _, t := range k.Tasks() {
		k.Engage(t)
	}
}

// KillTask terminates a task: its processes are unwound, its contexts are
// destroyed through the device exit protocol, and the scheduler is
// informed. reason is recorded for reports.
func (k *Kernel) KillTask(t *Task, reason string) {
	if !t.Alive {
		return
	}
	k.Kills++
	t.exit(fmt.Sprintf("killed: %s", reason))
}

// TaskFor returns the kernel task for a device-level owner ID.
func (k *Kernel) TaskFor(id gpu.TaskID) *Task { return k.tasks[id] }
