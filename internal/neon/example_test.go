package neon_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExampleNewKernel is the kernel-attach flow: build the simulation
// engine and the device, pick a scheduling policy by name, attach the
// NEON kernel, and run a workload under it. This is the stack every
// experiment assembles (see exp.NewRig) and the starting point for
// driving the simulation by hand.
func ExampleNewKernel() {
	eng := sim.NewEngine()
	dev := gpu.New(eng, gpu.DefaultConfig())

	sched, err := core.New("dfq")
	if err != nil {
		fmt.Println(err)
		return
	}
	kernel := neon.NewKernel(dev, sched)
	kernel.RequestRunLimit = time.Second

	app := workload.Launch(kernel, workload.Throttle(100*time.Microsecond, 0), sim.NewRNG(1))
	eng.RunFor(50 * time.Millisecond)

	fmt.Println("scheduler:", kernel.Scheduler().Name())
	fmt.Println("task alive:", app.Task.Alive)
	fmt.Println("made progress:", app.Rounds > 0)
	// Output:
	// scheduler: disengaged-fair-queueing
	// task alive: true
	// made progress: true
}
