package neon

import (
	"repro/internal/sim"
)

// DrainResult reports the outcome of a drain barrier.
type DrainResult struct {
	// Started is when the barrier began.
	Started sim.Time
	// DrainedAt maps each task to the virtual time at which its last
	// outstanding request was observed complete (quantized to the polling
	// granularity, as in the prototype).
	DrainedAt map[*Task]sim.Time
	// Killed lists tasks terminated for exceeding the request run limit.
	Killed []*Task
}

// Overuse returns how far past deadline the task's outstanding requests
// ran, or zero. Timeslice schedulers charge this against future slices.
func (r DrainResult) Overuse(t *Task, deadline sim.Time) sim.Duration {
	at, ok := r.DrainedAt[t]
	if !ok || at <= deadline {
		return 0
	}
	return at.Sub(deadline)
}

// Drain waits until every outstanding request of the given tasks has
// completed, as observed through reference counters at the kernel's
// polling granularity. Callers must first have arranged (via engagement
// and scheduler policy) that the tasks submit no new work.
//
// The post-re-engagement status update is charged here: one ReengageScan
// per active channel to discover the last submitted reference values.
//
// If RequestRunLimit is non-zero and a request occupies the device beyond
// it, the task owning the currently running context is killed through the
// exit protocol. The prototype identifies that context as the last token
// holder (timeslice) or the sampled task; here we consult the device's
// current request, standing in for the Section 6.2 vendor mechanism to
// "identify and kill the currently running context".
func (k *Kernel) Drain(p *sim.Proc, tasks []*Task) DrainResult {
	res := DrainResult{Started: p.Now(), DrainedAt: make(map[*Task]sim.Time)}

	// Status update: scan every active channel for its last submitted
	// reference value.
	targets := make(map[*ChannelState]uint64)
	for _, t := range tasks {
		for _, cs := range t.channels {
			p.Sleep(k.costs.ReengageScan)
			targets[cs] = cs.Ch.LastSubmittedRef
		}
	}

	remaining := make([]*Task, 0, len(tasks))
	remaining = append(remaining, tasks...)
	lastProgress := p.Now()
	var lastSnapshot = k.refSnapshot(remaining)

	for {
		// Check immediately: draining completes at once if the device is
		// not working on the tasks' requests.
		still := remaining[:0]
		for _, t := range remaining {
			if !t.Alive {
				res.DrainedAt[t] = p.Now()
				continue
			}
			if k.taskDrained(t, targets) {
				res.DrainedAt[t] = p.Now()
				continue
			}
			still = append(still, t)
		}
		remaining = still
		if len(remaining) == 0 {
			return res
		}

		if snap := k.refSnapshot(remaining); snap != lastSnapshot {
			lastSnapshot = snap
			lastProgress = p.Now()
		}
		if k.RequestRunLimit > 0 && p.Now().Sub(lastProgress) > k.RequestRunLimit {
			if victim := k.runningTask(); victim != nil {
				k.KillTask(victim, "request exceeded run limit")
				res.Killed = append(res.Killed, victim)
			}
			lastProgress = p.Now()
		}
		p.Sleep(k.costs.PollInterval)
	}
}

// taskDrained reports whether all of the task's channels have reached
// their scan targets.
func (k *Kernel) taskDrained(t *Task, targets map[*ChannelState]uint64) bool {
	for _, cs := range t.channels {
		if cs.Ch.RefCount < targets[cs] {
			return false
		}
	}
	return true
}

// refSnapshot folds the tasks' reference counters into a single progress
// fingerprint.
func (k *Kernel) refSnapshot(tasks []*Task) uint64 {
	var h uint64 = 1469598103934665603
	for _, t := range tasks {
		for _, cs := range t.channels {
			h ^= cs.Ch.RefCount + uint64(cs.Ch.ID)<<32
			h *= 1099511628211
		}
	}
	return h
}

// runningTask returns the task owning the request currently executing on
// the device's main engine, if any.
func (k *Kernel) runningTask() *Task {
	cur := k.dev.CurrentRequest()
	if cur == nil {
		return nil
	}
	return k.tasks[cur.Channel().Ctx.Owner]
}

// EnforceRunLimit kills the task owning the currently executing request
// if that request has occupied the engine beyond RequestRunLimit. This is
// the barrier-free enforcement path used by schedulers that never drain
// (oracle fair queueing); it relies on the same identify-the-running-
// context mechanism as Drain. Returns the killed task, if any.
func (k *Kernel) EnforceRunLimit() *Task {
	if k.RequestRunLimit <= 0 {
		return nil
	}
	cur := k.dev.CurrentRequest()
	if cur == nil || k.eng.Now().Sub(cur.Started) <= k.RequestRunLimit {
		return nil
	}
	t := k.runningTask()
	if t != nil {
		k.KillTask(t, "request exceeded run limit")
	}
	return t
}
