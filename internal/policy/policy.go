// Package policy is the declarative allocation layer of the
// policy/mechanism split: a Policy consumes a Snapshot of the
// tenant×class throughput matrix (device classes and their speeds from
// the cost registry, tenant contract terms and offered demand from the
// fleet) and returns Targets — allocation fractions per (tenant,
// class) plus the effective fair-share weights that enforce them.
//
// The split follows "Heterogeneity-Aware Cluster Scheduling Policies"
// (Gavel): policies *decide* allocations over the throughput matrix;
// a round-based mechanism — the fleet's allocator translating targets
// into DFQ weights and placement hints, and traffic admission reading
// tier bounds off the targets — *enforces* them. One enforcement
// engine therefore serves max-min fairness, hierarchical proportional
// shares, and cost objectives, and the paper's disengaged schedulers
// stay pure mechanism underneath.
//
// Policies here are pure functions of the snapshot: no clocks, no
// RNGs, no references into fleet state. That keeps every allocation
// round deterministic and lets the differential tests replay policies
// against synthetic matrices.
package policy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Tenant is one row of the throughput-matrix snapshot: the contract
// terms the policy allocates against.
type Tenant struct {
	// Name is the tenant's fleet identity.
	Name string
	// Org is the tenant's organization (sibling group) for hierarchical
	// policies; empty means the tenant stands alone at the top level.
	Org string
	// Weight is the tenant's spec fair-share weight (ShareWeight: the
	// unset default is 1, never zero).
	Weight float64
	// Tier is the tenant's admission service tier, normalized.
	Tier workload.Tier
	// Demand is the tenant's offered-load ceiling in normalized work
	// per second: the most reference-class device time it can consume
	// per wall second, given its duty cycle and the fastest class it
	// could be placed on. Saturating tenants on a fleet whose fastest
	// class runs at speed v have Demand v.
	Demand float64
}

// Class is one column of the snapshot: a device generation present in
// the fleet and how many devices of it there are.
type Class struct {
	// Name identifies the class (cost.Class.Name).
	Name string
	// Speed is the class's relative throughput factor.
	Speed float64
	// Devices is how many fleet devices are of this class.
	Devices int
}

// Capacity returns the class's normalized-work throughput: devices
// times speed, in reference-device-seconds per second.
func (c Class) Capacity() float64 { return float64(c.Devices) * c.Speed }

// Snapshot is the tenant×class matrix a policy allocates over.
type Snapshot struct {
	Tenants []Tenant
	Classes []Class
}

// Capacity returns the fleet's total normalized-work throughput.
func (s Snapshot) Capacity() float64 {
	var sum float64
	for _, c := range s.Classes {
		sum += c.Capacity()
	}
	return sum
}

// Targets is a policy's answer: who should get how much, where, and
// the weights that make the mechanism deliver it.
type Targets struct {
	// Alloc[i][c] is the fraction of class c's capacity targeted at
	// tenant i (rows parallel Snapshot.Tenants, columns
	// Snapshot.Classes). Each column sums to at most 1. A policy with
	// no placement opinion splits every class proportionally, which
	// yields no class preference (see ClassPreference).
	Alloc [][]float64
	// Weight[i] is the effective fair-share weight enforcing tenant
	// i's aggregate share through the weighted-DFQ mechanism. Zero
	// means "no opinion": the mechanism keeps the tenant's spec
	// weight. The static policy passes spec weights through verbatim —
	// bit-for-bit, not reconstructed from shares — because DFQ's
	// denial compares absolute leads against the free-run horizon, so
	// weights are not scale-invariant.
	Weight []float64
}

// Share returns tenant i's aggregate target fraction of fleet
// normalized throughput implied by the allocation matrix.
func (t Targets) Share(s Snapshot, i int) float64 {
	total := s.Capacity()
	if total <= 0 || i >= len(t.Alloc) {
		return 0
	}
	var got float64
	for c, frac := range t.Alloc[i] {
		got += frac * s.Classes[c].Capacity()
	}
	return got / total
}

// ClassPreference returns the speeds of the classes the targets
// concentrate tenant i in: classes where the tenant's fraction of the
// class exceeds its aggregate share. A proportionally split row (the
// no-opinion allocation) returns nil, so policies without placement
// preferences leave the placement mechanism exactly as it was.
func ClassPreference(s Snapshot, t Targets, i int) []float64 {
	if i >= len(t.Alloc) {
		return nil
	}
	share := t.Share(s, i)
	var speeds []float64
	for c, frac := range t.Alloc[i] {
		if frac > share+1e-9 {
			speeds = append(speeds, s.Classes[c].Speed)
		}
	}
	return speeds
}

// Policy computes target allocations from a snapshot. Allocate must be
// deterministic and side-effect free.
type Policy interface {
	// Name identifies the policy in configs, flags, and reports.
	Name() string
	// Allocate returns the targets for the snapshot. Alloc and Weight
	// are sized to the snapshot's tenants (both may be shorter only if
	// the snapshot is empty).
	Allocate(s Snapshot) Targets
}

// TierBounder is optionally implemented by policies that derive
// admission tier bounds from their targets. A nil return keeps the
// mechanism's own MaxDepth-derived bounds (what static does, for exact
// legacy behavior).
type TierBounder interface {
	TierBounds(s Snapshot, t Targets, maxDepth int) map[workload.Tier]int
}

// TierBounds returns the per-tier admission depth bounds the policy
// implies: the policy's own TierBounds when it implements TierBounder,
// otherwise bounds proportional to each tier's aggregate target share —
// a tier holding twice the allocation gets twice the queue headroom.
// Nil means "leave the mechanism's derived bounds in place"; maxDepth
// <= 0 (admission disabled) always returns nil.
func TierBounds(p Policy, s Snapshot, t Targets, maxDepth int) map[workload.Tier]int {
	if b, ok := p.(TierBounder); ok {
		return b.TierBounds(s, t, maxDepth)
	}
	return shareTierBounds(s, t, maxDepth)
}

// shareTierBounds derives tier depth bounds from aggregate target
// shares: bound(tier) = maxDepth × tierShare × tiersPresent, clamped
// to [1, 4×maxDepth]. With equal per-tier shares every tier gets
// maxDepth; a tier the policy favors queues deeper before shedding.
func shareTierBounds(s Snapshot, t Targets, maxDepth int) map[workload.Tier]int {
	if maxDepth <= 0 || len(s.Tenants) == 0 {
		return nil
	}
	tierShare := map[workload.Tier]float64{}
	var total float64
	for i, ten := range s.Tenants {
		sh := t.Share(s, i)
		tierShare[ten.Tier.Normalize()] += sh
		total += sh
	}
	if total <= 0 {
		return nil
	}
	bounds := make(map[workload.Tier]int, len(tierShare))
	n := float64(len(tierShare))
	for tier, sh := range tierShare {
		b := int(math.Round(float64(maxDepth) * (sh / total) * n))
		if b < 1 {
			b = 1
		}
		if max := 4 * maxDepth; b > max {
			b = max
		}
		bounds[tier] = b
	}
	return bounds
}

// Names lists the selectable allocation policies in presentation
// order.
func Names() []string { return []string{"static", "maxmin", "hier", "cost"} }

// Parse resolves a policy by name, as typed on a command line:
// "static", "maxmin" ("max-min"), "hier" ("hierarchical", with
// optional org weights as "hier:acme=3,bitco=1"), or "cost". The empty
// string is static — the legacy flat-weight behavior. Unknown names
// are an error listing the valid policies.
func Parse(name string) (Policy, error) {
	base, spec := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, spec = name[:i], name[i+1:]
	}
	if spec != "" && base != "hier" && base != "hierarchical" {
		return nil, fmt.Errorf("policy: %q takes no %q parameter", base, spec)
	}
	switch base {
	case "", "static":
		return Static{}, nil
	case "maxmin", "max-min":
		return MaxMin{}, nil
	case "hier", "hierarchical":
		h := Hierarchical{}
		if spec != "" {
			h.OrgWeights = map[string]float64{}
			for _, kv := range strings.Split(spec, ",") {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					return nil, fmt.Errorf("policy: bad org weight %q (want org=weight)", kv)
				}
				w, err := strconv.ParseFloat(kv[eq+1:], 64)
				if err != nil || w <= 0 || math.IsInf(w, 0) {
					return nil, fmt.Errorf("policy: bad org weight %q (want a positive finite number)", kv)
				}
				h.OrgWeights[kv[:eq]] = w
			}
		}
		return h, nil
	case "cost":
		return CostMin{}, nil
	default:
		return nil, fmt.Errorf("policy: unknown allocation policy %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// proportionalAlloc splits every class among the tenants in proportion
// to the given per-tenant shares (which need not be normalized): the
// no-placement-opinion allocation matrix.
func proportionalAlloc(s Snapshot, shares []float64) [][]float64 {
	var total float64
	for _, sh := range shares {
		total += sh
	}
	alloc := make([][]float64, len(shares))
	for i, sh := range shares {
		row := make([]float64, len(s.Classes))
		if total > 0 {
			frac := sh / total
			for c := range row {
				row[c] = frac
			}
		}
		alloc[i] = row
	}
	return alloc
}

// normalizeWeights scales shares into DFQ weights with the minimum
// positive weight pinned to 1: the weighted lead bound's window term is
// the engagement window over the lightest charged weight, so min-1
// normalization keeps the bound equal to the unweighted scheduler's no
// matter how skewed the shares are. Non-positive shares (idle tenants
// the policy allocated nothing) get weight 1 — they charge like an
// unweighted tenant for whatever little they run.
func normalizeWeights(shares []float64) []float64 {
	min := math.Inf(1)
	for _, sh := range shares {
		if sh > 0 && sh < min {
			min = sh
		}
	}
	w := make([]float64, len(shares))
	for i, sh := range shares {
		if sh <= 0 || math.IsInf(min, 1) {
			w[i] = 1
			continue
		}
		w[i] = sh / min
	}
	return w
}

// Static reproduces the flat-weight behavior that predates the policy
// layer: every tenant keeps its spec weight, every class splits
// weight-proportionally (no placement preference), and tier bounds stay
// the mechanism's own derivation. Running static through the allocator
// must be byte-identical to running no allocator at all — the
// differential tests pin that.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Allocate implements Policy: spec weights verbatim, proportional
// allocation rows.
func (Static) Allocate(s Snapshot) Targets {
	shares := make([]float64, len(s.Tenants))
	weights := make([]float64, len(s.Tenants))
	for i, t := range s.Tenants {
		shares[i] = t.Weight
		weights[i] = t.Weight
	}
	return Targets{Alloc: proportionalAlloc(s, shares), Weight: weights}
}

// TierBounds implements TierBounder: nil keeps the mechanism's
// MaxDepth-derived bounds exactly (premium 1.25×, best-effort half).
func (Static) TierBounds(Snapshot, Targets, int) map[workload.Tier]int { return nil }

// MaxMin is heterogeneity-aware weighted max-min fairness: water-fill
// the fleet's normalized-work capacity over tenant demands, each tenant
// capped at its own demand, surplus recirculating to the still-hungry
// in weight proportion. The classic outcome: no tenant can gain
// without a poorer (per weight) tenant losing. Allocation rows pack
// the largest allocations onto the fastest classes, so placement
// steers heavy tenants where their share costs the fewest devices.
type MaxMin struct{}

// Name implements Policy.
func (MaxMin) Name() string { return "max-min" }

// Allocate implements Policy by weighted water-filling.
func (MaxMin) Allocate(s Snapshot) Targets {
	n := len(s.Tenants)
	alloc := make([]float64, n)
	capacity := s.Capacity()
	// Water-fill: raise the per-weight level L, satisfying tenants in
	// ascending demand-per-weight order, until capacity runs out or
	// every demand is met.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := s.Tenants[order[a]], s.Tenants[order[b]]
		return ta.Demand/ta.Weight < tb.Demand/tb.Weight
	})
	var sumW float64
	for _, t := range s.Tenants {
		sumW += t.Weight
	}
	level, remaining := 0.0, capacity
	for _, i := range order {
		t := s.Tenants[i]
		fill := t.Demand / t.Weight
		need := (fill - level) * sumW
		if need > remaining {
			level += remaining / sumW
			remaining = 0
			break
		}
		remaining -= need
		level = fill
		alloc[i] = t.Demand
		sumW -= t.Weight
	}
	if sumW > 0 {
		for _, i := range order {
			if alloc[i] == 0 && s.Tenants[i].Demand/s.Tenants[i].Weight > level {
				alloc[i] = s.Tenants[i].Weight * level
			}
		}
	}
	return Targets{Alloc: packFastestFirst(s, alloc), Weight: normalizeWeights(alloc)}
}

// packFastestFirst turns per-tenant normalized-work allocations into an
// allocation matrix by bin-packing: tenants in descending allocation
// order (ties to the lower index) fill classes in descending speed
// order (ties to the lower index), straddling class boundaries as
// needed. Heavy tenants therefore land on the fastest classes — the
// class-preference hints placement consumes.
func packFastestFirst(s Snapshot, alloc []float64) [][]float64 {
	rows := make([][]float64, len(alloc))
	for i := range rows {
		rows[i] = make([]float64, len(s.Classes))
	}
	classes := make([]int, len(s.Classes))
	for i := range classes {
		classes[i] = i
	}
	sort.SliceStable(classes, func(a, b int) bool {
		return s.Classes[classes[a]].Speed > s.Classes[classes[b]].Speed
	})
	order := make([]int, len(alloc))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return alloc[order[a]] > alloc[order[b]] })
	ci := 0
	var used float64 // capacity consumed of classes[ci]
	for _, i := range order {
		need := alloc[i]
		for need > 1e-12 && ci < len(classes) {
			c := classes[ci]
			room := s.Classes[c].Capacity() - used
			take := need
			if take > room {
				take = room
			}
			if cap := s.Classes[c].Capacity(); cap > 0 {
				rows[i][c] += take / cap
			}
			need -= take
			used += take
			if used >= s.Classes[c].Capacity()-1e-12 {
				ci++
				used = 0
			}
		}
	}
	return rows
}

// Hierarchical is proportional shares down an org → tenant tree:
// org weights split the fleet first (every org absent from OrgWeights
// weighs 1, so an org's share is independent of how many tenants it
// enrolls — the org-level isolation flat weights cannot express), then
// each org's share splits among its tenants by their spec weights.
// Weights multiply down the tree and normalize per sibling group. A
// tenant with no org stands alone at the top level carrying its own
// weight, so an all-flat population reproduces flat proportional
// shares.
type Hierarchical struct {
	// OrgWeights overrides top-level org weights; absent orgs weigh 1.
	OrgWeights map[string]float64
}

// Name implements Policy.
func (Hierarchical) Name() string { return "hierarchical" }

// Allocate implements Policy.
func (h Hierarchical) Allocate(s Snapshot) Targets {
	// Top-level sibling groups in first-appearance order: named orgs
	// once each, plus one singleton group per org-less tenant.
	type group struct {
		weight  float64
		members []int
		sumW    float64
	}
	var groups []*group
	byOrg := map[string]*group{}
	for i, t := range s.Tenants {
		if t.Org == "" {
			groups = append(groups, &group{weight: t.Weight, members: []int{i}, sumW: t.Weight})
			continue
		}
		g := byOrg[t.Org]
		if g == nil {
			g = &group{weight: 1}
			if w, ok := h.OrgWeights[t.Org]; ok {
				g.weight = w
			}
			byOrg[t.Org] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, i)
		g.sumW += t.Weight
	}
	var topW float64
	for _, g := range groups {
		topW += g.weight
	}
	shares := make([]float64, len(s.Tenants))
	for _, g := range groups {
		if topW <= 0 || g.sumW <= 0 {
			continue
		}
		orgShare := g.weight / topW
		for _, i := range g.members {
			shares[i] = orgShare * (s.Tenants[i].Weight / g.sumW)
		}
	}
	return Targets{Alloc: proportionalAlloc(s, shares), Weight: normalizeWeights(shares)}
}

// DefaultPrices is the per-class price per device-second the cost
// policy minimizes against, loosely tracking real fleets: the consumer
// card is cheapest per normalized work, the reference card the
// baseline, and the next-generation part fastest but at a premium.
func DefaultPrices() map[string]float64 {
	return map[string]float64{"k20": 1.0, "consumer": 0.45, "nextgen": 2.4}
}

// CostMin is the cost/makespan-style objective: serve the aggregate
// offered demand at minimum dollar cost by filling the cheapest
// class (price per normalized work) first and spilling upward only
// when demand exceeds its capacity. Tenants split each filled class in
// demand proportion; DFQ weights follow demand so relative service
// tracks offered load. Under slack this concentrates work on cheap
// devices — the opposite placement of max-min's fastest-first — which
// is exactly the policy disagreement the policy experiment shows.
type CostMin struct {
	// Prices overrides DefaultPrices; classes absent from the map cost
	// their speed (price per work 1).
	Prices map[string]float64
}

// Name implements Policy.
func (CostMin) Name() string { return "cost" }

// price returns the class's price per device-second.
func (p CostMin) price(c Class) float64 {
	prices := p.Prices
	if prices == nil {
		prices = DefaultPrices()
	}
	if pr, ok := prices[c.Name]; ok {
		return pr
	}
	return c.Speed
}

// Allocate implements Policy.
func (p CostMin) Allocate(s Snapshot) Targets {
	var demand float64
	for _, t := range s.Tenants {
		demand += t.Demand
	}
	if cap := s.Capacity(); demand > cap {
		demand = cap
	}
	// Fill classes in ascending price-per-normalized-work order.
	classes := make([]int, len(s.Classes))
	for i := range classes {
		classes[i] = i
	}
	sort.SliceStable(classes, func(a, b int) bool {
		ca, cb := s.Classes[classes[a]], s.Classes[classes[b]]
		return p.price(ca)/ca.Speed < p.price(cb)/cb.Speed
	})
	classFrac := make([]float64, len(s.Classes))
	left := demand
	for _, c := range classes {
		if left <= 0 {
			break
		}
		cap := s.Classes[c].Capacity()
		take := left
		if take > cap {
			take = cap
		}
		if cap > 0 {
			classFrac[c] = take / cap
		}
		left -= take
	}
	// Tenants split every filled class in demand proportion.
	var sumD float64
	for _, t := range s.Tenants {
		sumD += t.Demand
	}
	rows := make([][]float64, len(s.Tenants))
	shares := make([]float64, len(s.Tenants))
	for i, t := range s.Tenants {
		rows[i] = make([]float64, len(s.Classes))
		if sumD <= 0 {
			continue
		}
		frac := t.Demand / sumD
		shares[i] = t.Demand
		for c := range rows[i] {
			rows[i][c] = classFrac[c] * frac
		}
	}
	return Targets{Alloc: rows, Weight: normalizeWeights(shares)}
}

// FleetCost returns the dollar cost per second of the capacity the
// targets actually reserve: per class, the allocated fraction times
// devices times price. The policy experiment's cost column divides it
// by delivered work.
func (p CostMin) FleetCost(s Snapshot, t Targets) float64 {
	var cost float64
	for c, class := range s.Classes {
		var frac float64
		for i := range t.Alloc {
			if c < len(t.Alloc[i]) {
				frac += t.Alloc[i][c]
			}
		}
		cost += frac * float64(class.Devices) * p.price(class)
	}
	return cost
}
