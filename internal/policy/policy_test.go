package policy

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// mixedFleet is the three-class snapshot most tests allocate over:
// one reference device, one consumer card, one next-generation part —
// total capacity 3.5 normalized-work/s.
func mixedFleet(tenants ...Tenant) Snapshot {
	return Snapshot{
		Tenants: tenants,
		Classes: []Class{
			{Name: "k20", Speed: 1.0, Devices: 1},
			{Name: "consumer", Speed: 0.5, Devices: 1},
			{Name: "nextgen", Speed: 2.0, Devices: 1},
		},
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestStaticPassthrough pins the static policy's whole contract: spec
// weights come back verbatim (bit-for-bit — the byte-identity of the
// legacy goldens depends on no float round-trip), allocation rows are
// proportional (no class preference), and tier bounds defer to the
// mechanism.
func TestStaticPassthrough(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "a", Weight: 4, Demand: 2},
		Tenant{Name: "b", Weight: 1, Demand: 2},
		Tenant{Name: "c", Weight: 0.25, Demand: 2},
	)
	tg := Static{}.Allocate(s)
	for i, want := range []float64{4, 1, 0.25} {
		if tg.Weight[i] != want {
			t.Errorf("Weight[%d] = %v, want exactly %v", i, tg.Weight[i], want)
		}
	}
	for i := range s.Tenants {
		if pref := ClassPreference(s, tg, i); pref != nil {
			t.Errorf("static gave tenant %d a class preference %v", i, pref)
		}
		want := s.Tenants[i].Weight / 5.25
		if got := tg.Share(s, i); !approx(got, want) {
			t.Errorf("Share(%d) = %v, want %v", i, got, want)
		}
	}
	if b := TierBounds(Static{}, s, tg, 64); b != nil {
		t.Errorf("static TierBounds = %v, want nil (keep mechanism defaults)", b)
	}
}

// TestMaxMinWaterFilling checks the water-fill against a hand-computed
// scenario: a small tenant capped at its own demand, the rest
// splitting the surplus level — and the whole capacity spoken for.
func TestMaxMinWaterFilling(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "small", Weight: 1, Demand: 0.5},
		Tenant{Name: "big1", Weight: 1, Demand: 2},
		Tenant{Name: "big2", Weight: 1, Demand: 2},
	)
	tg := MaxMin{}.Allocate(s)
	// Level: small satisfied at 0.5, remaining 3.0 splits over the two
	// big tenants → 1.5 each.
	wantShares := []float64{0.5 / 3.5, 1.5 / 3.5, 1.5 / 3.5}
	var total float64
	for i, want := range wantShares {
		got := tg.Share(s, i)
		if !approx(got, want) {
			t.Errorf("Share(%d) = %v, want %v", i, got, want)
		}
		total += got
	}
	if !approx(total, 1) {
		t.Errorf("shares sum to %v, want 1 (capacity fully allocated)", total)
	}
	// Min-1 weight normalization: 0.5 : 1.5 : 1.5 → 1 : 3 : 3.
	for i, want := range []float64{1, 3, 3} {
		if !approx(tg.Weight[i], want) {
			t.Errorf("Weight[%d] = %v, want %v", i, tg.Weight[i], want)
		}
	}
}

// TestMaxMinRespectsWeights: with demands unbounded the water level is
// weight-proportional.
func TestMaxMinRespectsWeights(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "a", Weight: 4, Demand: 10},
		Tenant{Name: "b", Weight: 1, Demand: 10},
		Tenant{Name: "c", Weight: 1, Demand: 10},
	)
	tg := MaxMin{}.Allocate(s)
	for i, want := range []float64{4.0 / 6, 1.0 / 6, 1.0 / 6} {
		if got := tg.Share(s, i); !approx(got, want) {
			t.Errorf("Share(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestMaxMinPacksFastestFirst: the largest allocation lands on the
// fastest class, the smallest on the slowest, and ClassPreference
// reports exactly that concentration.
func TestMaxMinPacksFastestFirst(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "small", Weight: 1, Demand: 0.5},
		Tenant{Name: "big1", Weight: 1, Demand: 2},
		Tenant{Name: "big2", Weight: 1, Demand: 2},
	)
	tg := MaxMin{}.Allocate(s)
	// big1 (first 1.5) fills 75% of nextgen; big2 takes the rest of
	// nextgen and all of k20; small ends up on the consumer card.
	if pref := ClassPreference(s, tg, 1); len(pref) != 1 || pref[0] != 2.0 {
		t.Errorf("big1 preference = %v, want [2]", pref)
	}
	if pref := ClassPreference(s, tg, 0); len(pref) != 1 || pref[0] != 0.5 {
		t.Errorf("small preference = %v, want [0.5]", pref)
	}
	// Column sums never exceed 1: no class is over-committed.
	for c := range s.Classes {
		var sum float64
		for i := range s.Tenants {
			sum += tg.Alloc[i][c]
		}
		if sum > 1+1e-9 {
			t.Errorf("class %s over-committed: column sum %v", s.Classes[c].Name, sum)
		}
	}
}

// TestHierarchicalNormalization pins the tree math: org weights split
// the top level, tenant weights split within the org, weights multiply
// down and normalize per sibling group.
func TestHierarchicalNormalization(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "a1", Org: "acme", Weight: 2, Demand: 2},
		Tenant{Name: "a2", Org: "acme", Weight: 1, Demand: 2},
		Tenant{Name: "b1", Org: "bitco", Weight: 1, Demand: 2},
	)
	h := Hierarchical{OrgWeights: map[string]float64{"acme": 3}}
	tg := h.Allocate(s)
	// Top level: acme 3/4, bitco 1/4. Within acme: 2/3 and 1/3.
	for i, want := range []float64{0.5, 0.25, 0.25} {
		if got := tg.Share(s, i); !approx(got, want) {
			t.Errorf("Share(%d) = %v, want %v", i, got, want)
		}
	}
	for i, want := range []float64{2, 1, 1} {
		if !approx(tg.Weight[i], want) {
			t.Errorf("Weight[%d] = %v, want %v", i, tg.Weight[i], want)
		}
	}
}

// TestHierarchicalOrgIsolation is the property flat weights cannot
// express: an org that enrolls more tenants does not grow its
// aggregate share — the newcomers dilute their own org only.
func TestHierarchicalOrgIsolation(t *testing.T) {
	base := []Tenant{
		{Name: "a1", Org: "acme", Weight: 2, Demand: 2},
		{Name: "a2", Org: "acme", Weight: 1, Demand: 2},
		{Name: "b1", Org: "bitco", Weight: 1, Demand: 2},
	}
	crowd := append(append([]Tenant{}, base...),
		Tenant{Name: "b2", Org: "bitco", Weight: 1, Demand: 2},
		Tenant{Name: "b3", Org: "bitco", Weight: 1, Demand: 2},
	)
	h := Hierarchical{OrgWeights: map[string]float64{"acme": 3}}
	acmeShare := func(s Snapshot) float64 {
		tg := h.Allocate(s)
		var sum float64
		for i, ten := range s.Tenants {
			if ten.Org == "acme" {
				sum += tg.Share(s, i)
			}
		}
		return sum
	}
	before := acmeShare(mixedFleet(base...))
	after := acmeShare(mixedFleet(crowd...))
	if !approx(before, after) {
		t.Errorf("acme share moved %v → %v when bitco crowded in", before, after)
	}
	if !approx(before, 0.75) {
		t.Errorf("acme share = %v, want 0.75", before)
	}
}

// TestHierarchicalFlatFallback: an all-org-less population reproduces
// flat proportional shares, so hier without orgs is not a behavior
// change.
func TestHierarchicalFlatFallback(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "a", Weight: 4, Demand: 2},
		Tenant{Name: "b", Weight: 1, Demand: 2},
		Tenant{Name: "c", Weight: 1, Demand: 2},
	)
	tg := Hierarchical{}.Allocate(s)
	for i, want := range []float64{4.0 / 6, 1.0 / 6, 1.0 / 6} {
		if got := tg.Share(s, i); !approx(got, want) {
			t.Errorf("Share(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestCostMinFillsCheapestFirst: under slack the whole demand lands on
// the cheapest price-per-work class (the consumer card at default
// prices), and FleetCost prices exactly the reserved capacity.
func TestCostMinFillsCheapestFirst(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "a", Weight: 1, Demand: 0.3},
		Tenant{Name: "b", Weight: 1, Demand: 0.1},
	)
	p := CostMin{}
	tg := p.Allocate(s)
	// Demand 0.4 fits inside the consumer card's 0.5 capacity.
	for i := range s.Tenants {
		if pref := ClassPreference(s, tg, i); len(pref) != 1 || pref[0] != 0.5 {
			t.Errorf("tenant %d preference = %v, want [0.5] (consumer)", i, pref)
		}
	}
	var consumerCol float64
	for i := range s.Tenants {
		consumerCol += tg.Alloc[i][1]
	}
	if !approx(consumerCol, 0.8) {
		t.Errorf("consumer column sum = %v, want 0.8 (0.4 of 0.5 capacity)", consumerCol)
	}
	if got, want := p.FleetCost(s, tg), 0.8*0.45; !approx(got, want) {
		t.Errorf("FleetCost = %v, want %v", got, want)
	}
}

// TestCostMinSpillsUpward: demand past the cheap class spills to the
// next cheapest (the reference card) rather than being dropped.
func TestCostMinSpillsUpward(t *testing.T) {
	s := mixedFleet(Tenant{Name: "a", Weight: 1, Demand: 1.2})
	tg := CostMin{}.Allocate(s)
	if got := tg.Share(s, 0); !approx(got, 1.2/3.5) {
		t.Errorf("Share = %v, want %v (full demand served)", got, 1.2/3.5)
	}
	if !approx(tg.Alloc[0][1], 1.0) {
		t.Errorf("consumer fraction = %v, want 1 (cheapest filled first)", tg.Alloc[0][1])
	}
	if !approx(tg.Alloc[0][0], 0.7) {
		t.Errorf("k20 fraction = %v, want 0.7 (spill)", tg.Alloc[0][0])
	}
	if tg.Alloc[0][2] != 0 {
		t.Errorf("nextgen fraction = %v, want 0 (priciest untouched)", tg.Alloc[0][2])
	}
}

// TestShareTierBounds: policies without their own TierBounds get
// bounds proportional to each tier's aggregate target share.
func TestShareTierBounds(t *testing.T) {
	s := mixedFleet(
		Tenant{Name: "p", Weight: 3, Demand: 10, Tier: workload.TierPremium},
		Tenant{Name: "s", Weight: 1, Demand: 10, Tier: workload.TierStandard},
	)
	tg := MaxMin{}.Allocate(s)
	b := TierBounds(MaxMin{}, s, tg, 64)
	if b == nil {
		t.Fatal("no bounds for a non-TierBounder policy")
	}
	// Shares 3/4 and 1/4 over two tiers: 64×0.75×2 = 96, 64×0.25×2 = 32.
	if b[workload.TierPremium] != 96 || b[workload.TierStandard] != 32 {
		t.Errorf("bounds = %v, want premium 96, standard 32", b)
	}
	if got := TierBounds(MaxMin{}, s, tg, 0); got != nil {
		t.Errorf("bounds with admission disabled = %v, want nil", got)
	}
}

// TestParse covers the flag surface: every listed name parses, the
// empty string is static, hier takes org weights, junk is an error.
func TestParse(t *testing.T) {
	for _, name := range Names() {
		p, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
		} else if p == nil {
			t.Errorf("Parse(%q) returned nil policy", name)
		}
	}
	if p, err := Parse(""); err != nil || p.Name() != "static" {
		t.Errorf("Parse(\"\") = %v, %v; want static", p, err)
	}
	p, err := Parse("hier:acme=3,bitco=1.5")
	if err != nil {
		t.Fatal(err)
	}
	h := p.(Hierarchical)
	if h.OrgWeights["acme"] != 3 || h.OrgWeights["bitco"] != 1.5 {
		t.Errorf("org weights = %v", h.OrgWeights)
	}
	for _, bad := range []string{"gavel", "hier:acme", "hier:acme=-1", "hier:=2", "cost:x", "maxmin:1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestNormalizeWeightsIdle: tenants the policy allocated nothing keep
// weight 1 (charge like an unweighted tenant), and an all-idle
// population degrades to all-1, never to zero or NaN.
func TestNormalizeWeightsIdle(t *testing.T) {
	w := normalizeWeights([]float64{0, 0.5, 1.0})
	for i, want := range []float64{1, 1, 2} {
		if !approx(w[i], want) {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want)
		}
	}
	for i, w := range normalizeWeights([]float64{0, 0}) {
		if w != 1 {
			t.Errorf("all-idle w[%d] = %v, want 1", i, w)
		}
	}
}
