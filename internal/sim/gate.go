package sim

// Gate is a condition-variable-like wakeup point in virtual time.
//
// Processes block on a Gate with Proc.Wait or Proc.WaitFor. Wakers call
// Signal (wake one), Broadcast (wake all), or Open/Close (level-triggered:
// while open, waits pass immediately). Wakeups are delivered as events at
// the current virtual time, so a waker never runs a waiter's code inline.
type Gate struct {
	engine  *Engine
	name    string
	open    bool
	waiters []*Proc
}

// NewGate returns a closed gate.
func (e *Engine) NewGate(name string) *Gate {
	return &Gate{engine: e, name: name}
}

// Name returns the gate's name.
func (g *Gate) Name() string { return g.name }

// IsOpen reports whether the gate is currently open.
func (g *Gate) IsOpen() bool { return g.open }

// Open opens the gate and wakes all current waiters. Future waits pass
// immediately until Close is called.
func (g *Gate) Open() {
	g.open = true
	g.Broadcast()
}

// Close closes the gate; future waits will block.
func (g *Gate) Close() { g.open = false }

// Signal wakes a single waiter (the longest-waiting one), if any.
func (g *Gate) Signal() {
	if len(g.waiters) == 0 {
		return
	}
	p := g.waiters[0]
	copy(g.waiters, g.waiters[1:]) // shift in place: keep capacity
	g.waiters = g.waiters[:len(g.waiters)-1]
	g.release(p)
}

// Broadcast wakes all current waiters.
func (g *Gate) Broadcast() {
	ws := g.waiters
	g.waiters = g.waiters[:0] // keep capacity: gates are reused hot
	for _, p := range ws {
		g.release(p)
	}
}

// Waiters returns the number of processes currently blocked on the gate.
func (g *Gate) Waiters() int { return len(g.waiters) }

func (g *Gate) release(p *Proc) {
	p.gate = nil
	g.engine.Schedule(g.engine.now, p.activateFn)
}

func (g *Gate) wait(p *Proc) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.gate = g
	p.block()
}

func (g *Gate) remove(p *Proc) {
	for i, w := range g.waiters {
		if w == p {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}
