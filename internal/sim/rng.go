package sim

import "math/rand"

// RNG is a deterministic random source for model code. Every stochastic
// component (workload jitter, sampling randomization) must draw from an
// RNG seeded at construction so whole-simulation runs are reproducible.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic stream, keyed by id, from
// this generator's seed sequence. Use one stream per task so adding a
// task does not perturb the others' draws.
func (g *RNG) Fork(id int64) *RNG {
	return NewRNG(g.r.Int63() ^ id*0x6A09E667F3BCC909)
}

// ForkNamed derives an independent stream keyed by (name, index) from
// this generator's construction seed, without consuming any state. Unlike
// Fork, the result depends only on the key, never on how many draws this
// generator has made — so work scheduled in any order (e.g. scenarios on
// a parallel worker pool) receives identical streams.
func (g *RNG) ForkNamed(name string, index int) *RNG {
	return NewRNG(StreamSeed(g.seed, name, index))
}

// StreamSeed deterministically derives a child seed for a named stream
// (FNV-1a over the base seed, the name, and the index). Experiment
// scenarios use it so serial and parallel runs are byte-identical.
func StreamSeed(base int64, name string, index int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for i := 0; i < 8; i++ {
		mix(byte(uint64(base) >> (8 * i)))
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(index) >> (8 * i)))
	}
	// Keep the seed positive so it survives sources that reject negatives.
	return int64(h &^ (1 << 63))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
// frac must be in [0, 1].
func (g *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	scale := 1 + frac*(2*g.r.Float64()-1)
	return Duration(float64(d) * scale)
}
