package sim

import "math/rand"

// RNG is a deterministic random source for model code. Every stochastic
// component (workload jitter, sampling randomization) must draw from an
// RNG seeded at construction so whole-simulation runs are reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic stream, keyed by id, from
// this generator's seed sequence. Use one stream per task so adding a
// task does not perturb the others' draws.
func (g *RNG) Fork(id int64) *RNG {
	return NewRNG(g.r.Int63() ^ id*0x6A09E667F3BCC909)
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
// frac must be in [0, 1].
func (g *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	scale := 1 + frac*(2*g.r.Float64()-1)
	return Duration(float64(d) * scale)
}
