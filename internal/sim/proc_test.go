package sim

import (
	"testing"
	"time"
)

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != Time(10*time.Microsecond) {
		t.Fatalf("woke at %v, want 10us", woke)
	}
}

func TestProcSleepZeroDoesNotYield(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		steps++
	})
	e.Run()
	if steps != 1 {
		t.Fatal("body did not complete")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(5)
			marks = append(marks, p.Now())
		}
	})
	e.Run()
	want := []Time{5, 10, 15}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			order = append(order, "a")
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(15)
			order = append(order, "b")
		}
	})
	e.Run()
	// t=10(a) 15(b) 20(a) 30(both: b's wakeup was scheduled at t=15,
	// a's at t=20, so b has the lower sequence number and fires first) 45(b)
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSleepUntil(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.SleepUntil(100)
		p.SleepUntil(50) // in the past: no-op
		if p.Now() != 100 {
			t.Errorf("Now() = %v, want 100", p.Now())
		}
	})
	e.Run()
}

func TestGateSignalWakesOne(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Wait(g)
			woken++
		})
	}
	e.RunFor(1)
	if g.Waiters() != 3 {
		t.Fatalf("Waiters() = %d, want 3", g.Waiters())
	}
	g.Signal()
	e.RunFor(1)
	if woken != 1 {
		t.Fatalf("woken = %d after Signal, want 1", woken)
	}
	g.Broadcast()
	e.RunFor(1)
	if woken != 3 {
		t.Fatalf("woken = %d after Broadcast, want 3", woken)
	}
}

func TestGateOpenIsLevelTriggered(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	g.Open()
	passed := false
	e.Spawn("w", func(p *Proc) {
		p.Wait(g) // should not block
		passed = true
	})
	e.Run()
	if !passed {
		t.Fatal("wait on open gate blocked")
	}
}

func TestGateCloseBlocksAgain(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	g.Open()
	g.Close()
	reached := false
	e.Spawn("w", func(p *Proc) {
		p.Wait(g)
		reached = true
	})
	e.RunFor(10)
	if reached {
		t.Fatal("wait on closed gate passed")
	}
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 blocked", e.LiveProcs())
	}
}

func TestWaitForPredicate(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	state := 0
	done := false
	e.Spawn("w", func(p *Proc) {
		p.WaitFor(g, func() bool { return state == 2 })
		done = true
	})
	e.After(10, func() { state = 1; g.Broadcast() })
	e.After(20, func() { state = 2; g.Broadcast() })
	e.Run()
	if !done {
		t.Fatal("WaitFor never satisfied")
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	var timedOut bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		timedOut = p.WaitTimeout(g, 25)
		at = p.Now()
	})
	e.Run()
	if !timedOut || at != 25 {
		t.Fatalf("timedOut=%v at=%v, want true at 25", timedOut, at)
	}
	if g.Waiters() != 0 {
		t.Fatal("timed-out waiter left on gate")
	}
}

func TestWaitTimeoutSignaledEarly(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	var timedOut bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		timedOut = p.WaitTimeout(g, 100)
		at = p.Now()
	})
	e.After(10, g.Broadcast)
	e.Run()
	if timedOut || at != 10 {
		t.Fatalf("timedOut=%v at=%v, want false at 10", timedOut, at)
	}
}

func TestKillBlockedProc(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	cleanup := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleanup = true }()
		p.Wait(g)
		t.Error("victim resumed past Wait")
	})
	e.After(10, func() { p.Kill() })
	e.Run()
	if !p.Finished() || !p.Killed() {
		t.Fatalf("finished=%v killed=%v", p.Finished(), p.Killed())
	}
	if !cleanup {
		t.Fatal("defers did not run during kill unwind")
	}
	if g.Waiters() != 0 {
		t.Fatal("killed proc left on gate")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestKillSleepingProc(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		t.Error("resumed past Sleep")
	})
	e.After(5, func() { p.Kill() })
	e.Run()
	if e.Now() != 5 {
		t.Fatalf("engine ran to %v; kill should cancel the hour-long wakeup", e.Now())
	}
}

func TestKillBeforeFirstRun(t *testing.T) {
	e := NewEngine()
	ran := false
	p := e.Spawn("victim", func(p *Proc) { ran = true })
	p.Kill()
	e.Run()
	if ran {
		t.Fatal("killed-at-birth proc ran its body")
	}
	if e.LiveProcs() != 0 {
		t.Fatal("proc leaked")
	}
}

func TestKillTwiceIsSafe(t *testing.T) {
	e := NewEngine()
	g := e.NewGate("g")
	p := e.Spawn("victim", func(p *Proc) { p.Wait(g) })
	e.After(1, func() { p.Kill(); p.Kill() })
	e.Run()
	if !p.Finished() {
		t.Fatal("proc not finished")
	}
}

func TestOnFinishRunsForNormalExit(t *testing.T) {
	e := NewEngine()
	finished := false
	p := e.Spawn("p", func(p *Proc) { p.Sleep(5) })
	p.OnFinish(func(*Proc) { finished = true })
	e.Run()
	if !finished {
		t.Fatal("OnFinish not called")
	}
}

func TestProcPanicPropagatesToEngine(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomb", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Fatal("proc panic did not reach engine")
		}
	}()
	e.Run()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	fa, fb := NewRNG(7).Fork(3), NewRNG(7).Fork(3)
	if fa.Intn(1000) != fb.Intn(1000) {
		t.Fatal("forked streams diverged")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(1)
	base := 100 * time.Microsecond
	for i := 0; i < 1000; i++ {
		j := g.Jitter(base, 0.2)
		if j < 80*time.Microsecond || j > 120*time.Microsecond {
			t.Fatalf("jitter %v outside [80us,120us]", j)
		}
	}
	if g.Jitter(base, 0) != base {
		t.Fatal("zero-frac jitter changed value")
	}
}
