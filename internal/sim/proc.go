package sim

import "fmt"

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procReady procState = iota
	procRunning
	procBlocked
	procFinished
)

// killSignal is the panic value used to unwind a killed process.
type killSignal struct{ name string }

// Proc is a simulated process: a goroutine that runs in strict handoff
// with the engine. At most one of {engine, any proc} executes at a time,
// which keeps the simulation deterministic.
//
// A Proc may only call its blocking methods (Sleep, Wait, Yield) from its
// own body function.
type Proc struct {
	engine *Engine
	name   string
	state  procState
	killed bool

	resume chan bool // engine -> proc; value true means "you were killed"
	yield  chan struct{}

	gate     *Gate // gate currently blocked on, if any
	wakeup   Timer
	finished func(*Proc)

	// activateFn is the pre-bound activation closure, allocated once at
	// Spawn so that every wakeup (Sleep, Gate release, Kill) schedules it
	// without allocating a fresh closure on the hot path.
	activateFn func()
}

// Spawn starts a new process executing body. The body begins running at
// the current virtual time, after the spawning context yields control
// back to the engine.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		engine: e,
		name:   name,
		state:  procReady,
		resume: make(chan bool),
		yield:  make(chan struct{}),
	}
	p.activateFn = func() { p.activate() }
	e.procs++
	go p.run(body)
	e.Schedule(e.now, p.activateFn)
	return p
}

func (p *Proc) run(body func(p *Proc)) {
	<-p.resume // wait for first activation
	defer func() {
		r := recover()
		if _, ok := r.(killSignal); ok {
			r = nil
		}
		p.state = procFinished
		p.engine.procs--
		if r != nil {
			p.engine.panicked = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
			p.engine.hasPanic = true
		}
		if p.finished != nil && r == nil {
			fn := p.finished
			p.finished = nil
			fn(p)
		}
		p.yield <- struct{}{}
	}()
	if p.killed {
		panic(killSignal{p.name})
	}
	p.state = procRunning
	body(p)
}

// activate hands control to the process and waits for it to yield.
// Must run in engine context. The inProc window brackets exactly the
// span during which process code may be on the stack, which is what
// InProcContext reports.
func (p *Proc) activate() {
	if p.state == procFinished {
		return
	}
	p.engine.inProc++
	p.resume <- p.killed
	<-p.yield
	p.engine.inProc--
}

// block suspends the process until some event calls activate again.
func (p *Proc) block() {
	p.state = procBlocked
	p.yield <- struct{}{}
	killed := <-p.resume
	if killed || p.killed {
		panic(killSignal{p.name})
	}
	p.state = procRunning
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.engine }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.engine.now }

// Finished reports whether the process body has returned (or been killed).
func (p *Proc) Finished() bool { return p.state == procFinished }

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// OnFinish registers fn to run (in engine context) when the body returns
// normally. It is not invoked for killed processes.
func (p *Proc) OnFinish(fn func(*Proc)) { p.finished = fn }

// Sleep advances the process's local time by d: the process blocks and is
// woken after d of virtual time. Zero and negative durations return
// immediately without yielding.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	p.wakeup = p.engine.After(d, p.activateFn)
	p.block()
	p.wakeup = Timer{}
}

// SleepUntil blocks the process until absolute time t.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.engine.now {
		return
	}
	p.Sleep(t.Sub(p.engine.now))
}

// Wait blocks the process until g is signaled (or open). See Gate.
func (p *Proc) Wait(g *Gate) { g.wait(p) }

// WaitFor blocks until pred() is true, re-testing each time g is
// signaled. If g is open, pred is still required to pass; the process
// yields between tests only when the gate is closed.
func (p *Proc) WaitFor(g *Gate, pred func() bool) {
	for !pred() {
		g.wait(p)
	}
}

// WaitTimeout blocks until g is signaled or d elapses, whichever comes
// first. It reports whether the wait timed out.
func (p *Proc) WaitTimeout(g *Gate, d Duration) (timedOut bool) {
	if g.open || d <= 0 {
		return d <= 0 && !g.open
	}
	fired := false
	t := p.engine.After(d, func() {
		if p.gate == g {
			g.remove(p)
			p.gate = nil
			fired = true
			p.activate()
		}
	})
	g.wait(p)
	t.Stop()
	return fired
}

// Kill marks the process as killed and unwinds it. If the process is
// blocked, it is woken immediately (at the current virtual time) and its
// body panics with an internal signal that Spawn's wrapper absorbs.
// Killing a finished process is a no-op. Kill must be called from engine
// or other-process context, never from the process itself.
func (p *Proc) Kill() {
	if p.state == procFinished || p.killed {
		return
	}
	p.killed = true
	p.wakeup.Stop() // inert if no sleep is outstanding (zero Timer)
	p.wakeup = Timer{}
	if p.gate != nil {
		p.gate.remove(p)
		p.gate = nil
	}
	if p.state == procBlocked || p.state == procReady {
		p.engine.Schedule(p.engine.now, p.activateFn)
	}
}
