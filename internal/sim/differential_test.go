package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// stormTrace drives one randomized event storm on an engine of the
// given queue kind and returns the full execution trace. The storm is
// built to exercise every queue region: same-tick bursts (FIFO order),
// near-horizon events (overflow heap), mid- and far-future events
// (every wheel level), cancellations, nested rescheduling, and a
// mid-run Reset followed by a second storm on the recycled slab.
func stormTrace(kind EventQueueKind, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	e := NewEngineWithQueue(kind)
	var trace []string
	record := func(id int) func() {
		return func() { trace = append(trace, fmt.Sprintf("%d@%d", id, e.Now())) }
	}
	// Delay spectrum spanning all wheel levels plus the overflow heap:
	// the near horizon is 2^16 ns and the wheel covers ~2^46 ns.
	delay := func() Duration {
		switch rng.Intn(5) {
		case 0:
			return Duration(rng.Intn(3)) // same-tick and next-tick bursts
		case 1:
			return Duration(rng.Intn(1 << 16)) // near horizon
		case 2:
			return Duration(rng.Intn(1 << 24)) // low wheel levels
		case 3:
			return Duration(rng.Intn(1 << 40)) // high wheel levels
		default:
			return Duration(1<<46 + rng.Int63n(1<<50)) // overflow region
		}
	}
	storm := func(base, n int) {
		var timers []Timer
		for i := 0; i < n; i++ {
			id := base + i
			switch rng.Intn(4) {
			case 0:
				// Nested: reschedule once from inside the event.
				d2 := delay()
				tm := e.After(delay(), func() {
					trace = append(trace, fmt.Sprintf("%d@%d", id, e.Now()))
					e.After(d2, record(id+1_000_000))
				})
				timers = append(timers, tm)
			default:
				timers = append(timers, e.After(delay(), record(id)))
			}
		}
		// Cancel a random quarter; record which, so both kinds cancel the
		// same logical events.
		for _, idx := range rng.Perm(len(timers))[:len(timers)/4] {
			stopped := timers[idx].Stop()
			trace = append(trace, fmt.Sprintf("stop%d=%v", idx, stopped))
		}
		e.Run()
	}
	storm(0, 400)
	trace = append(trace, fmt.Sprintf("end1@%d pending=%d", e.Now(), e.Pending()))
	e.Reset()
	storm(10_000, 300)
	trace = append(trace, fmt.Sprintf("end2@%d pending=%d", e.Now(), e.Pending()))
	return trace
}

// TestDifferentialEventStorm runs randomized storms on the timing-wheel
// queue and the retained legacy heap and requires identical execution
// traces: same events, same times, same order within ties. This is the
// bit-for-bit (time, seq) contract any future queue swap must preserve.
func TestDifferentialEventStorm(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		wheel := stormTrace(WheelQueue, seed)
		legacy := stormTrace(LegacyHeapQueue, seed)
		if len(wheel) != len(legacy) {
			t.Fatalf("seed %d: trace lengths differ: wheel %d vs legacy %d",
				seed, len(wheel), len(legacy))
		}
		for i := range wheel {
			if wheel[i] != legacy[i] {
				t.Fatalf("seed %d: traces diverge at %d: wheel %q vs legacy %q",
					seed, i, wheel[i], legacy[i])
			}
		}
	}
}

// TestDifferentialDefaultQueue pins that NewEngine uses the package
// default kind, so the differential suite really covers what ships.
func TestDifferentialDefaultQueue(t *testing.T) {
	if DefaultEventQueue != WheelQueue {
		t.Fatalf("DefaultEventQueue = %v, want WheelQueue", DefaultEventQueue)
	}
}

// TestPropertyTimerStopRecycledGeneration: a Timer handle that survived
// its event's recycling must be inert. Slab slots are reused aggressively
// (free-list, LIFO), so this drives fire/stop/refire cycles designed to
// make stale handles point at recycled slots and asserts no stale Stop
// ever cancels the slot's new occupant (generation counters).
func TestPropertyTimerStopRecycledGeneration(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		fired := map[int]bool{}
		var stale []Timer
		live := map[int]Timer{}
		next := 0
		for round := 0; round < 50; round++ {
			for i := 0; i < 10; i++ {
				id := next
				next++
				live[id] = e.After(Duration(rng.Intn(50)), func() { fired[id] = true })
			}
			// Every handle from previous rounds is stale by now (fired or
			// stopped events recycle their slots): Stop must be a no-op
			// returning false.
			for _, tm := range stale {
				if tm.Stop() {
					t.Fatalf("seed %d: stale Timer.Stop() cancelled a recycled slot", seed)
				}
			}
			// Stop a few live ones before running; those must report true
			// exactly once and their events must not fire.
			stoppedIDs := map[int]bool{}
			for id, tm := range live {
				if rng.Intn(4) == 0 {
					if !tm.Stop() {
						t.Fatalf("seed %d: live Timer.Stop() = false", seed)
					}
					if tm.Stop() {
						t.Fatalf("seed %d: second Stop() on same handle = true", seed)
					}
					stoppedIDs[id] = true
				}
			}
			e.Run()
			for id, tm := range live {
				if stoppedIDs[id] == fired[id] {
					t.Fatalf("seed %d: event %d stopped=%v fired=%v",
						seed, id, stoppedIDs[id], fired[id])
				}
				stale = append(stale, tm)
				delete(live, id)
			}
		}
		// Reset bumps every slot's generation: handles minted before the
		// Reset must stay inert against the rebuilt free list too.
		pre := e.After(10, func() {})
		e.Reset()
		if pre.Stop() {
			t.Fatal("Timer from before Reset cancelled a post-Reset slot")
		}
		post := false
		e.After(10, func() { post = true })
		e.Run()
		if !post {
			t.Fatal("post-Reset event lost")
		}
	}
}
