package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Duration{30, 10, 20} {
		d := d
		e.After(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event %d ran at %v, want %v", i, got[i], w)
		}
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %v", i, got)
		}
	}
}

func TestNegativeAfterFiresImmediately(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, e.Now())
	}
}

// TestZeroAfterRunsAfterQueuedSameTimeEvents pins the documented
// same-tick ordering of After: a zero (or negative) duration scheduled
// from inside a running event fires at the current instant but after
// every event already queued for that instant — insertion order decides
// within a tick, so the late After always lands at the back.
func TestZeroAfterRunsAfterQueuedSameTimeEvents(t *testing.T) {
	for _, d := range []Duration{0, -7} {
		e := NewEngine()
		var got []string
		e.After(10, func() {
			// Two events already queued for t=10 when the After is issued.
			got = append(got, "first")
			e.After(d, func() { got = append(got, "late-after") })
		})
		e.After(10, func() { got = append(got, "second") })
		e.After(10, func() { got = append(got, "third") })
		e.Run()
		want := []string{"first", "second", "third", "late-after"}
		if len(got) != len(want) {
			t.Fatalf("d=%v: ran %v, want %v", d, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("d=%v: order %v, want %v", d, got, want)
			}
		}
		if e.Now() != 10 {
			t.Fatalf("d=%v: same-tick After advanced the clock to %v", d, e.Now())
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.After(1, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(100, func() { ran = true })
	e.RunUntil(50)
	if ran {
		t.Fatal("future event ran early")
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", e.Now())
	}
	e.RunUntil(100)
	if !ran {
		t.Fatal("event did not run at its time")
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(30)
	e.RunFor(20)
	if e.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", e.Now())
	}
}

func TestPendingCountsUncancelled(t *testing.T) {
	e := NewEngine()
	tm := e.After(10, func() {})
	e.After(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	tm.Stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after cancel, want 1", e.Pending())
	}
}

func TestResetReturnsEngineToInitialState(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(10, func() { fired = true })
	e.RunFor(5)
	e.Reset()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Reset, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("pre-Reset event fired after Reset")
	}
	// The engine is fully reusable: a fresh run behaves like a new engine.
	ran := false
	e.After(3, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 3 {
		t.Fatalf("post-Reset run: ran=%v now=%v", ran, e.Now())
	}
}

// Reset must refuse to strand parked proc goroutines: a live proc means
// the engine cannot be safely reused.
func TestResetWithLiveProcsPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Hour)
	})
	e.RunFor(time.Minute)
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs() = %d, want 1", e.LiveProcs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a live proc did not panic")
		}
	}()
	e.Reset()
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.After(1, recur)
		}
	}
	e.After(0, recur)
	e.Run()
	if depth != 100 || e.Now() != 99 {
		t.Fatalf("depth=%d now=%v", depth, e.Now())
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if MaxTime.Add(time.Hour) != MaxTime {
		t.Fatal("Add past MaxTime did not saturate")
	}
	if Time(5).Add(3) != 8 {
		t.Fatal("basic Add broken")
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1_500_000) // 1.5ms
	if tm.Sub(Time(500_000)) != Duration(1_000_000) {
		t.Fatal("Sub wrong")
	}
	if tm.Seconds() != 0.0015 {
		t.Fatalf("Seconds() = %v", tm.Seconds())
	}
	if tm.Microseconds() != 1500 {
		t.Fatalf("Microseconds() = %v", tm.Microseconds())
	}
}

// TestPropertyEventOrder: for any set of delays, events fire in
// nondecreasing time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism: the same schedule always produces the same
// execution trace.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var trace []Time
		for i := 0; i < 500; i++ {
			e.After(Duration(rng.Intn(1000)), func() { trace = append(trace, e.Now()) })
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
