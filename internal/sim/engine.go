// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event queue ordered by
// (time, insertion sequence). Model code runs either as plain event
// callbacks or as processes (Proc): goroutines that execute in strict
// handoff with the engine, so exactly one goroutine is ever runnable and
// every run of the same model is bit-for-bit identical.
//
// All of the NEON reproduction — the GPU device, the interposition kernel
// module, the schedulers, and the workloads — is built on this package.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since engine start.
type Time int64

// Duration re-exports time.Duration so model code can use the stdlib
// constants (time.Microsecond etc.) while staying in virtual time.
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Add returns the time d after t, saturating at MaxTime.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d >= 0 && s < t {
		return MaxTime
	}
	return s
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds reports t as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback.
type event struct {
	t       Time
	seq     uint64
	fn      func()
	stopped *bool // non-nil for cancellable timers
	index   int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine. Engine methods
// must only be called from the engine's own goroutine: either from the
// caller of Run (before/after running), from event callbacks, or from
// code executing inside a Proc.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	pending int // live (uncancelled, unfired) events, kept for O(1) Pending
	procs   int // live (unfinished) procs, for leak detection

	// stepping guards against re-entrant Run calls.
	running bool

	// panicked carries a panic raised inside a Proc to the engine
	// goroutine, where it is re-thrown.
	panicked any
	hasPanic bool
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at absolute time t (>= Now). It returns a Timer that
// can cancel the callback before it fires.
func (e *Engine) Schedule(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, e.now))
	}
	stopped := new(bool)
	ev := &event{t: t, seq: e.seq, fn: fn, stopped: stopped}
	e.seq++
	e.pending++
	heap.Push(&e.events, ev)
	return &Timer{engine: e, stopped: stopped, when: t}
}

// After runs fn after duration d. Zero and negative durations both
// schedule fn at the current instant, but never inline: fn runs after
// the current event returns, and after every event already queued for
// this same instant — events at one time fire in insertion order, so a
// same-tick After from inside a running event always lands at the back
// of the current tick. Model code may rely on this FIFO-within-tick
// ordering (TestZeroAfterRunsAfterQueuedSameTimeEvents pins it).
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	engine  *Engine
	stopped *bool
	when    Time
}

// Stop cancels the timer. It reports whether the callback had not yet
// fired (and was therefore prevented from running).
func (t *Timer) Stop() bool {
	if *t.stopped {
		return false
	}
	*t.stopped = true
	t.engine.pending--
	return true
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() Time { return t.when }

// Step executes the single next event. It reports false if the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if *ev.stopped {
			continue
		}
		if ev.t < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.t
		e.pending--
		*ev.stopped = true // consumed; Timer.Stop now reports false
		ev.fn()
		e.rethrow()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.enter()
	defer e.leave()
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.enter()
	defer e.leave()
	for len(e.events) > 0 && e.events[0].t <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Reset returns the engine to its initial state: clock at zero, no
// events. It lets a harness reuse one engine allocation across scenarios
// instead of constructing a fresh engine per run; any outstanding Timers
// from the previous run are dropped. Reset refuses to run while procs
// are live — their goroutines are parked awaiting engine wakeups and
// would be stranded forever — so models must finish (or Kill) every
// proc before the engine can be reused.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	if e.procs != 0 {
		panic(fmt.Sprintf("sim: Reset with %d live procs", e.procs))
	}
	for i, ev := range e.events {
		*ev.stopped = true
		e.events[i] = nil // release the event's closure for GC
	}
	e.events = e.events[:0]
	e.pending = 0
	e.now = 0
	e.seq = 0
	e.hasPanic = false
	e.panicked = nil
}

// Pending returns the number of queued (uncancelled) events. It is O(1):
// the engine maintains a live counter across Schedule, Stop, dispatch,
// and Reset instead of scanning the queue.
func (e *Engine) Pending() int { return e.pending }

// LiveProcs returns the number of spawned processes that have not yet
// finished. Useful for leak detection in tests.
func (e *Engine) LiveProcs() int { return e.procs }

func (e *Engine) enter() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

func (e *Engine) leave() { e.running = false }

func (e *Engine) rethrow() {
	if e.hasPanic {
		p := e.panicked
		e.hasPanic = false
		e.panicked = nil
		panic(p)
	}
}
