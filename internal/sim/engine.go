// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event queue ordered by
// (time, seq). Model code runs either as plain event
// callbacks or as processes (Proc): goroutines that execute in strict
// handoff with the engine, so exactly one goroutine is ever runnable and
// every run of the same model is bit-for-bit identical.
//
// All of the NEON reproduction — the GPU device, the interposition kernel
// module, the schedulers, and the workloads — is built on this package.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is a point in virtual time, in nanoseconds since engine start.
type Time int64

// Duration re-exports time.Duration so model code can use the stdlib
// constants (time.Microsecond etc.) while staying in virtual time.
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Add returns the time d after t, saturating at MaxTime.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d >= 0 && s < t {
		return MaxTime
	}
	return s
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds reports t as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback, stored in the engine's event slab and
// addressed by slot index. Slots are recycled through a free list; gen
// distinguishes incarnations so a stale Timer handle can never cancel a
// later event that happens to reuse the same slot.
type event struct {
	t       Time
	seq     uint64
	fn      func()
	gen     uint32
	stopped bool  // cancelled by Timer.Stop; skipped (and recycled) at pop
	next    int32 // free-list link (and wheel-bucket link), -1 terminated
}

// noSlot is the nil value for slab indices.
const noSlot int32 = -1

// EventQueueKind selects the engine's event-queue implementation.
type EventQueueKind int

const (
	// WheelQueue is the production queue: a hierarchical timing wheel for
	// far events feeding a 4-ary index-free heap that orders the near
	// horizon (see DESIGN.md §11).
	WheelQueue EventQueueKind = iota
	// LegacyHeapQueue is the original container/heap binary heap, retained
	// so differential tests can pin that both queues dispatch events in
	// bit-for-bit identical (time, seq) order.
	LegacyHeapQueue
)

// DefaultEventQueue is the queue kind NewEngine uses. It is a package
// variable only so determinism tests can run whole experiments on the
// legacy heap; production code must not change it.
var DefaultEventQueue = WheelQueue

// Timing-wheel geometry. The 4-ary heap orders everything within
// nearSpan of the wheel base exactly by (time, seq); events farther out
// sit unordered in wheel buckets — level lv spans slots of width
// 1<<(nearBits+wheelBits*lv) ns — and are dumped or cascaded toward the
// heap as the base advances. An event is eligible for level lv only if
// it is within 63 slot-widths of the base, which guarantees a slot
// index (taken from the absolute time bits) can never collide with a
// slot one wheel revolution away. Events beyond the last level (~19h)
// overflow into the heap, which stays correct at any horizon.
const (
	wheelLevels = 5
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	nearBits    = 16
	nearSpan    = Time(1) << nearBits
)

// hnode is one heap entry: the ordering key (time, seq) inlined next to
// the slab slot so sift compares never touch the slab.
type hnode struct {
	t    Time
	seq  uint64
	slot int32
}

func hless(a, b hnode) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// legacyHeap is the original event queue: a binary heap (container/heap)
// ordered by (time, seq), now over slab indices instead of boxed event
// pointers. It is retained behind EventQueueKind for differential
// determinism testing against the timing-wheel queue — any queue swap
// must reproduce its dispatch order bit-for-bit.
type legacyHeap struct {
	e     *Engine
	slots []int32
}

func (h *legacyHeap) Len() int { return len(h.slots) }
func (h *legacyHeap) Less(i, j int) bool {
	a, b := &h.e.slab[h.slots[i]], &h.e.slab[h.slots[j]]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}
func (h *legacyHeap) Swap(i, j int) { h.slots[i], h.slots[j] = h.slots[j], h.slots[i] }
func (h *legacyHeap) Push(x any)    { h.slots = append(h.slots, x.(int32)) }
func (h *legacyHeap) Pop() any {
	old := h.slots
	n := len(old)
	idx := old[n-1]
	h.slots = old[:n-1]
	return idx
}

// Engine is a discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine. Engine methods
// must only be called from the engine's own goroutine: either from the
// caller of Run (before/after running), from event callbacks, or from
// code executing inside a Proc.
type Engine struct {
	now     Time
	seq     uint64
	pending int // live (uncancelled, unfired) events, kept for O(1) Pending

	// slab is the pooled event storage: Schedule allocates slots from the
	// free list and dispatch recycles them, so steady-state scheduling
	// does not allocate.
	slab []event
	free int32

	kind EventQueueKind

	// Wheel-queue state (kind == WheelQueue). h4 is the 4-ary heap that
	// totally orders the near horizon; the wheel holds far events in
	// unordered slot chains linked through event.next. occupied has one
	// bit per slot so the next occupied slot is a TrailingZeros away.
	// base is the wheel origin: every event with t < base+nearSpan lives
	// in the heap, and base only ever moves forward, never past an
	// occupied slot's start time.
	h4       []hnode
	buckets  [wheelLevels][wheelSlots]int32
	occupied [wheelLevels]uint64
	occSum   uint8 // bit per level with any occupied slot; 0 = wheel empty
	base     Time

	lq *legacyHeap // kind == LegacyHeapQueue only

	procs  int // live (unfinished) procs, for leak detection
	inProc int // >0 while process code may be on the stack (Proc.activate)

	// stepping guards against re-entrant Run calls.
	running bool

	// panicked carries a panic raised inside a Proc to the engine
	// goroutine, where it is re-thrown.
	panicked any
	hasPanic bool
}

// NewEngine returns an engine with the clock at zero and no events,
// using the DefaultEventQueue implementation.
func NewEngine() *Engine { return NewEngineWithQueue(DefaultEventQueue) }

// NewEngineWithQueue returns an engine using the given event-queue
// implementation. Both kinds dispatch events in identical (time, seq)
// order; only determinism tests should ask for LegacyHeapQueue.
func NewEngineWithQueue(kind EventQueueKind) *Engine {
	e := &Engine{free: noSlot, kind: kind}
	if kind == LegacyHeapQueue {
		e.lq = &legacyHeap{e: e}
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes a slot from the free list (or grows the slab) and fills it.
// It returns the slot index; the slot's gen is preserved across reuse.
func (e *Engine) alloc(t Time, fn func()) int32 {
	var idx int32
	if e.free != noSlot {
		idx = e.free
		e.free = e.slab[idx].next
	} else {
		e.slab = append(e.slab, event{})
		idx = int32(len(e.slab) - 1)
	}
	ev := &e.slab[idx]
	ev.t = t
	ev.seq = e.seq
	ev.fn = fn
	ev.stopped = false
	ev.next = noSlot
	e.seq++
	return idx
}

// recycle returns a slot to the free list, bumping its generation so any
// outstanding Timer handle to the old incarnation goes stale.
func (e *Engine) recycle(idx int32) {
	ev := &e.slab[idx]
	ev.gen++
	ev.fn = nil // release the closure for GC
	ev.next = e.free
	e.free = idx
}

// Schedule runs fn at absolute time t (>= Now). It returns a Timer that
// can cancel the callback before it fires.
func (e *Engine) Schedule(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, e.now))
	}
	idx := e.alloc(t, fn)
	e.pending++
	e.insert(idx, t)
	return Timer{engine: e, slot: idx, gen: e.slab[idx].gen, when: t}
}

// After runs fn after duration d. Zero and negative durations both
// schedule fn at the current instant, but never inline: fn runs after
// the current event returns, and after every event already queued for
// this same instant — events at one time fire in insertion order, so a
// same-tick After from inside a running event always lands at the back
// of the current tick. Model code may rely on this FIFO-within-tick
// ordering (TestZeroAfterRunsAfterQueuedSameTimeEvents pins it).
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled callback. It is a small value: the
// engine, the event's slab slot, and the slot generation the handle was
// issued against. The zero Timer is valid and inert (Stop reports false).
type Timer struct {
	engine *Engine
	slot   int32
	gen    uint32
	when   Time
}

// Stop cancels the timer. It reports whether the callback had not yet
// fired (and was therefore prevented from running). A Timer whose event
// has fired — or whose engine has been Reset — holds a stale generation
// and is a harmless no-op.
func (t Timer) Stop() bool {
	e := t.engine
	if e == nil {
		return false
	}
	ev := &e.slab[t.slot]
	if ev.gen != t.gen || ev.stopped {
		return false
	}
	ev.stopped = true
	ev.fn = nil // release the closure for GC
	e.pending--
	return true
}

// When returns the virtual time at which the timer fires.
func (t Timer) When() Time { return t.when }

// insert places an allocated slot into the event queue.
//
// Wheel mode: events within nearSpan of the base go straight into the
// 4-ary heap (as do events in the past region t < base, which exists
// because the base can run ahead of the clock after a dump). Far events
// go to the first wheel level whose coarse slot distance from the base
// is at most 63 — at that level the distance is also at least 1 (a
// closer level would have fit otherwise), so a slot chain is always
// strictly ahead of the base's own slot and a cascade re-routing it can
// never loop. Events beyond the top level (~19h) overflow into the heap.
func (e *Engine) insert(idx int32, t Time) {
	if e.kind == LegacyHeapQueue {
		heap.Push(e.lq, idx)
		return
	}
	if e.occSum == 0 {
		// Wheel empty: nothing pins the base, so drag it up to the clock
		// to keep near-future events on the heap fast path.
		if nb := e.now &^ (nearSpan - 1); nb > e.base {
			e.base = nb
		}
	}
	if t-e.base < nearSpan { // signed: also catches t < base
		e.hpush(hnode{t, e.slab[idx].seq, idx})
		return
	}
	tc, bc := uint64(t), uint64(e.base)
	for lv := 0; lv < wheelLevels; lv++ {
		shift := uint(nearBits + wheelBits*lv)
		if tc>>shift-bc>>shift <= wheelSlots-1 {
			slot := (tc >> shift) & (wheelSlots - 1)
			ev := &e.slab[idx]
			if e.occupied[lv]&(1<<slot) != 0 {
				ev.next = e.buckets[lv][slot]
			} else {
				ev.next = noSlot
				e.occupied[lv] |= 1 << slot
				e.occSum |= 1 << lv
			}
			e.buckets[lv][slot] = idx
			return
		}
	}
	e.hpush(hnode{t, e.slab[idx].seq, idx}) // beyond the top level
}

// hpush pushes onto the 4-ary heap (sift-up with a hole, no swaps).
func (e *Engine) hpush(n hnode) {
	h := append(e.h4, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !hless(n, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
	e.h4 = h
}

// hpop removes and returns the heap minimum (sift-down with a hole).
func (e *Engine) hpop() hnode {
	h := e.h4
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	e.h4 = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if hless(h[j], h[m]) {
					m = j
				}
			}
			if !hless(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// wheelNext locates the occupied wheel slot with the earliest start
// time. Ties prefer the higher level: a coarse slot sharing its start
// with a finer one must cascade first, or dumping the finer slot would
// advance the base past the coarse slot's start and corrupt the wheel's
// circular-distance invariant.
func (e *Engine) wheelNext() (start Time, lv int, slot uint64) {
	bestLv := -1
	for sum := e.occSum; sum != 0; sum &= sum - 1 {
		l := bits.TrailingZeros8(sum)
		occ := e.occupied[l]
		shift := uint(nearBits + wheelBits*l)
		pos := int(e.base>>shift) & (wheelSlots - 1)
		d := Time(bits.TrailingZeros64(bits.RotateLeft64(occ, -pos)))
		st := (e.base>>shift + d) << shift
		if bestLv < 0 || st <= start {
			bestLv, start = l, st
			slot = uint64(e.base>>shift+d) & (wheelSlots - 1)
		}
	}
	return start, bestLv, slot
}

// advanceWheel consumes one wheel slot. A level-0 slot is dumped: the
// base advances past it and its whole chain joins the heap. A higher
// slot cascades: the base advances to its start and its chain is
// re-routed, landing in strictly lower levels or the heap.
func (e *Engine) advanceWheel(start Time, lv int, slot uint64) {
	head := e.buckets[lv][slot]
	e.occupied[lv] &^= 1 << slot
	if e.occupied[lv] == 0 {
		e.occSum &^= 1 << lv
	}
	if lv == 0 {
		if nb := start + nearSpan; nb > e.base {
			e.base = nb
		}
		for head != noSlot {
			ev := &e.slab[head]
			next := ev.next
			ev.next = noSlot
			e.hpush(hnode{ev.t, ev.seq, head})
			head = next
		}
		return
	}
	if start > e.base {
		e.base = start
	}
	for head != noSlot {
		next := e.slab[head].next
		e.slab[head].next = noSlot
		e.insert(head, e.slab[head].t)
		head = next
	}
}

// ready brings the global-minimum pending event to the queue front,
// skipping and recycling cancelled events. In wheel mode that means
// advancing the wheel until the minimum provably sits at the heap top:
// the heap is authoritative only once its top is earlier than the start
// of every occupied wheel slot (a slot's start lower-bounds everything
// chained in it). Ties advance the wheel so (time, seq) order is decided
// in the heap. ready reports false when no live events remain.
func (e *Engine) ready() bool {
	if e.kind == LegacyHeapQueue {
		for len(e.lq.slots) > 0 && e.slab[e.lq.slots[0]].stopped {
			e.recycle(heap.Pop(e.lq).(int32))
		}
		return len(e.lq.slots) > 0
	}
	for {
		for len(e.h4) > 0 && e.slab[e.h4[0].slot].stopped {
			e.recycle(e.hpop().slot)
		}
		if e.occSum == 0 {
			return len(e.h4) > 0
		}
		start, lv, slot := e.wheelNext()
		if len(e.h4) > 0 && e.h4[0].t < start {
			return true
		}
		e.advanceWheel(start, lv, slot)
	}
}

// pop removes and returns the slot of the earliest (time, seq) event, or
// noSlot if the queue is empty. Cancelled events are skipped and recycled.
func (e *Engine) pop() int32 {
	if !e.ready() {
		return noSlot
	}
	if e.kind == LegacyHeapQueue {
		return heap.Pop(e.lq).(int32)
	}
	return e.hpop().slot
}

// peek returns the time of the earliest pending event. ok is false if the
// queue is empty.
func (e *Engine) peek() (t Time, ok bool) {
	if !e.ready() {
		return 0, false
	}
	if e.kind == LegacyHeapQueue {
		return e.slab[e.lq.slots[0]].t, true
	}
	return e.h4[0].t, true
}

// Step executes the single next event. It reports false if the queue is
// empty.
func (e *Engine) Step() bool {
	idx := e.pop()
	if idx == noSlot {
		return false
	}
	e.dispatch(idx)
	return true
}

// stepUpTo executes the single next event if its time is <= limit. It
// reports false when the queue is empty or the next event lies beyond
// the limit. Fusing the bound check into the pop keeps RunUntil at one
// queue-front computation per event instead of a peek/pop pair.
func (e *Engine) stepUpTo(limit Time) bool {
	if !e.ready() {
		return false
	}
	var idx int32
	if e.kind == LegacyHeapQueue {
		if e.slab[e.lq.slots[0]].t > limit {
			return false
		}
		idx = heap.Pop(e.lq).(int32)
	} else {
		if e.h4[0].t > limit {
			return false
		}
		idx = e.hpop().slot
	}
	e.dispatch(idx)
	return true
}

// dispatch consumes one popped slot: advance the clock, recycle, run.
func (e *Engine) dispatch(idx int32) {
	ev := &e.slab[idx]
	if ev.t < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.t
	fn := ev.fn
	e.pending--
	e.recycle(idx) // consumed; Timer.Stop now reports false
	fn()
	e.rethrow()
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.enter()
	defer e.leave()
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.enter()
	defer e.leave()
	for e.stepUpTo(t) {
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Reset returns the engine to its initial state: clock at zero, no
// events. It lets a harness reuse one engine allocation across scenarios
// instead of constructing a fresh engine per run; any outstanding Timers
// from the previous run are dropped (their handles go stale: every slab
// slot's generation is bumped, so Stop on an old Timer reports false and
// can never cancel an event of the new run). Reset refuses to run while
// procs are live — their goroutines are parked awaiting engine wakeups
// and would be stranded forever — so models must finish (or Kill) every
// proc before the engine can be reused.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	if e.procs != 0 {
		panic(fmt.Sprintf("sim: Reset with %d live procs", e.procs))
	}
	// Rebuild the free list over the whole slab, invalidating every
	// outstanding handle generation, but keep the slab capacity: an engine
	// reused across scenarios reaches steady state with zero allocations.
	if e.lq != nil {
		e.lq.slots = e.lq.slots[:0]
	}
	e.h4 = e.h4[:0]
	e.occupied = [wheelLevels]uint64{}
	e.occSum = 0
	e.base = 0
	e.free = noSlot
	for i := len(e.slab) - 1; i >= 0; i-- {
		ev := &e.slab[i]
		ev.gen++
		ev.fn = nil
		ev.next = e.free
		e.free = int32(i)
	}
	e.pending = 0
	e.now = 0
	e.seq = 0
	e.hasPanic = false
	e.panicked = nil
}

// NextAfterNow reports whether the queue holds no event at the current
// instant: every pending event, if any, is strictly later. Trampoline
// callers (a timer that only schedules its real work at the back of the
// current tick) use it to fold the deferred event into an inline call
// when the tick is already empty — the two are indistinguishable, since
// nothing can run between the trampoline and its deferred event, and
// anything either schedules lands after both in (time, seq) order.
func (e *Engine) NextAfterNow() bool {
	t, ok := e.peek()
	return !ok || t > e.now
}

// InProcContext reports whether process code may currently be on the
// stack (a Proc activation is in progress). Trampoline folding via
// NextAfterNow is only sound from plain event context: a running
// process's continuation is same-instant pending work the event queue
// cannot see, so callers in proc context must schedule rather than
// fold.
func (e *Engine) InProcContext() bool { return e.inProc > 0 }

// Pending returns the number of queued (uncancelled) events. It is O(1):
// the engine maintains a live counter across Schedule, Stop, dispatch,
// and Reset instead of scanning the queue.
func (e *Engine) Pending() int { return e.pending }

// LiveProcs returns the number of spawned processes that have not yet
// finished. Useful for leak detection in tests.
func (e *Engine) LiveProcs() int { return e.procs }

func (e *Engine) enter() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

func (e *Engine) leave() { e.running = false }

func (e *Engine) rethrow() {
	if e.hasPanic {
		p := e.panicked
		e.hasPanic = false
		e.panicked = nil
		panic(p)
	}
}
