// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event queue ordered by
// (time, seq). Model code runs either as plain event
// callbacks or as processes (Proc): goroutines that execute in strict
// handoff with the engine, so exactly one goroutine is ever runnable and
// every run of the same model is bit-for-bit identical.
//
// All of the NEON reproduction — the GPU device, the interposition kernel
// module, the schedulers, and the workloads — is built on this package.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since engine start.
type Time int64

// Duration re-exports time.Duration so model code can use the stdlib
// constants (time.Microsecond etc.) while staying in virtual time.
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Add returns the time d after t, saturating at MaxTime.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d >= 0 && s < t {
		return MaxTime
	}
	return s
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds reports t as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback, stored in the engine's event slab and
// addressed by slot index. Slots are recycled through a free list; gen
// distinguishes incarnations so a stale Timer handle can never cancel a
// later event that happens to reuse the same slot.
type event struct {
	t       Time
	seq     uint64
	fn      func()
	gen     uint32
	stopped bool  // cancelled by Timer.Stop; skipped (and recycled) at pop
	next    int32 // free-list link (and wheel-bucket link), -1 terminated
}

// noSlot is the nil value for slab indices.
const noSlot int32 = -1

// legacyHeap is the original event queue: a binary heap (container/heap)
// ordered by (time, seq), now over slab indices instead of boxed event
// pointers. It is retained behind EventQueueKind for differential
// determinism testing against the timing-wheel queue — any queue swap
// must reproduce its dispatch order bit-for-bit.
type legacyHeap struct {
	e     *Engine
	slots []int32
}

func (h *legacyHeap) Len() int { return len(h.slots) }
func (h *legacyHeap) Less(i, j int) bool {
	a, b := &h.e.slab[h.slots[i]], &h.e.slab[h.slots[j]]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}
func (h *legacyHeap) Swap(i, j int) { h.slots[i], h.slots[j] = h.slots[j], h.slots[i] }
func (h *legacyHeap) Push(x any)    { h.slots = append(h.slots, x.(int32)) }
func (h *legacyHeap) Pop() any {
	old := h.slots
	n := len(old)
	idx := old[n-1]
	h.slots = old[:n-1]
	return idx
}

// Engine is a discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine. Engine methods
// must only be called from the engine's own goroutine: either from the
// caller of Run (before/after running), from event callbacks, or from
// code executing inside a Proc.
type Engine struct {
	now     Time
	seq     uint64
	pending int // live (uncancelled, unfired) events, kept for O(1) Pending

	// slab is the pooled event storage: Schedule allocates slots from the
	// free list and dispatch recycles them, so steady-state scheduling
	// does not allocate.
	slab []event
	free int32

	lq *legacyHeap

	procs int // live (unfinished) procs, for leak detection

	// stepping guards against re-entrant Run calls.
	running bool

	// panicked carries a panic raised inside a Proc to the engine
	// goroutine, where it is re-thrown.
	panicked any
	hasPanic bool
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine {
	e := &Engine{free: noSlot}
	e.lq = &legacyHeap{e: e}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes a slot from the free list (or grows the slab) and fills it.
// It returns the slot index; the slot's gen is preserved across reuse.
func (e *Engine) alloc(t Time, fn func()) int32 {
	var idx int32
	if e.free != noSlot {
		idx = e.free
		e.free = e.slab[idx].next
	} else {
		e.slab = append(e.slab, event{})
		idx = int32(len(e.slab) - 1)
	}
	ev := &e.slab[idx]
	ev.t = t
	ev.seq = e.seq
	ev.fn = fn
	ev.stopped = false
	ev.next = noSlot
	e.seq++
	return idx
}

// recycle returns a slot to the free list, bumping its generation so any
// outstanding Timer handle to the old incarnation goes stale.
func (e *Engine) recycle(idx int32) {
	ev := &e.slab[idx]
	ev.gen++
	ev.fn = nil // release the closure for GC
	ev.next = e.free
	e.free = idx
}

// Schedule runs fn at absolute time t (>= Now). It returns a Timer that
// can cancel the callback before it fires.
func (e *Engine) Schedule(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, e.now))
	}
	idx := e.alloc(t, fn)
	e.pending++
	heap.Push(e.lq, idx)
	return Timer{engine: e, slot: idx, gen: e.slab[idx].gen, when: t}
}

// After runs fn after duration d. Zero and negative durations both
// schedule fn at the current instant, but never inline: fn runs after
// the current event returns, and after every event already queued for
// this same instant — events at one time fire in insertion order, so a
// same-tick After from inside a running event always lands at the back
// of the current tick. Model code may rely on this FIFO-within-tick
// ordering (TestZeroAfterRunsAfterQueuedSameTimeEvents pins it).
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled callback. It is a small value: the
// engine, the event's slab slot, and the slot generation the handle was
// issued against. The zero Timer is valid and inert (Stop reports false).
type Timer struct {
	engine *Engine
	slot   int32
	gen    uint32
	when   Time
}

// Stop cancels the timer. It reports whether the callback had not yet
// fired (and was therefore prevented from running). A Timer whose event
// has fired — or whose engine has been Reset — holds a stale generation
// and is a harmless no-op.
func (t Timer) Stop() bool {
	e := t.engine
	if e == nil {
		return false
	}
	ev := &e.slab[t.slot]
	if ev.gen != t.gen || ev.stopped {
		return false
	}
	ev.stopped = true
	ev.fn = nil // release the closure for GC
	e.pending--
	return true
}

// When returns the virtual time at which the timer fires.
func (t Timer) When() Time { return t.when }

// pop removes and returns the slot of the earliest (time, seq) event, or
// noSlot if the queue is empty. Cancelled events are skipped and recycled.
func (e *Engine) pop() int32 {
	for len(e.lq.slots) > 0 {
		idx := heap.Pop(e.lq).(int32)
		if e.slab[idx].stopped {
			e.recycle(idx)
			continue
		}
		return idx
	}
	return noSlot
}

// peek returns the time of the earliest pending event. ok is false if the
// queue is empty.
func (e *Engine) peek() (t Time, ok bool) {
	for len(e.lq.slots) > 0 {
		idx := e.lq.slots[0]
		if e.slab[idx].stopped {
			heap.Pop(e.lq)
			e.recycle(idx)
			continue
		}
		return e.slab[idx].t, true
	}
	return 0, false
}

// Step executes the single next event. It reports false if the queue is
// empty.
func (e *Engine) Step() bool {
	idx := e.pop()
	if idx == noSlot {
		return false
	}
	ev := &e.slab[idx]
	if ev.t < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.t
	fn := ev.fn
	e.pending--
	e.recycle(idx) // consumed; Timer.Stop now reports false
	fn()
	e.rethrow()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.enter()
	defer e.leave()
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.enter()
	defer e.leave()
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Reset returns the engine to its initial state: clock at zero, no
// events. It lets a harness reuse one engine allocation across scenarios
// instead of constructing a fresh engine per run; any outstanding Timers
// from the previous run are dropped (their handles go stale: every slab
// slot's generation is bumped, so Stop on an old Timer reports false and
// can never cancel an event of the new run). Reset refuses to run while
// procs are live — their goroutines are parked awaiting engine wakeups
// and would be stranded forever — so models must finish (or Kill) every
// proc before the engine can be reused.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	if e.procs != 0 {
		panic(fmt.Sprintf("sim: Reset with %d live procs", e.procs))
	}
	// Rebuild the free list over the whole slab, invalidating every
	// outstanding handle generation, but keep the slab capacity: an engine
	// reused across scenarios reaches steady state with zero allocations.
	e.lq.slots = e.lq.slots[:0]
	e.free = noSlot
	for i := len(e.slab) - 1; i >= 0; i-- {
		ev := &e.slab[i]
		ev.gen++
		ev.fn = nil
		ev.next = e.free
		e.free = int32(i)
	}
	e.pending = 0
	e.now = 0
	e.seq = 0
	e.hasPanic = false
	e.panicked = nil
}

// Pending returns the number of queued (uncancelled) events. It is O(1):
// the engine maintains a live counter across Schedule, Stop, dispatch,
// and Reset instead of scanning the queue.
func (e *Engine) Pending() int { return e.pending }

// LiveProcs returns the number of spawned processes that have not yet
// finished. Useful for leak detection in tests.
func (e *Engine) LiveProcs() int { return e.procs }

func (e *Engine) enter() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

func (e *Engine) leave() { e.running = false }

func (e *Engine) rethrow() {
	if e.hasPanic {
		p := e.panicked
		e.hasPanic = false
		e.panicked = nil
		panic(p)
	}
}
