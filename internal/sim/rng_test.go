package sim

import "testing"

func TestStreamSeedDeterministic(t *testing.T) {
	a := StreamSeed(1, "fig6", 3)
	b := StreamSeed(1, "fig6", 3)
	if a != b {
		t.Fatalf("StreamSeed not deterministic: %d vs %d", a, b)
	}
	if a < 0 {
		t.Fatalf("StreamSeed returned negative seed %d", a)
	}
}

func TestStreamSeedKeySensitivity(t *testing.T) {
	base := StreamSeed(1, "fig6", 3)
	for name, other := range map[string]int64{
		"base seed": StreamSeed(2, "fig6", 3),
		"name":      StreamSeed(1, "fig7", 3),
		"index":     StreamSeed(1, "fig6", 4),
	} {
		if other == base {
			t.Errorf("changing %s did not change the stream seed", name)
		}
	}
}

// ForkNamed must depend only on the construction seed and the key, never
// on how many draws the parent has made — that is what makes scenario
// streams identical regardless of worker-pool execution order.
func TestForkNamedIgnoresParentState(t *testing.T) {
	g := NewRNG(42)
	fresh := g.ForkNamed("scenario", 7).Float64()
	for i := 0; i < 100; i++ {
		g.Float64()
	}
	again := g.ForkNamed("scenario", 7).Float64()
	if fresh != again {
		t.Fatalf("ForkNamed stream changed after parent draws: %v vs %v", fresh, again)
	}
}

// Fork, by contrast, consumes parent state: two successive forks with the
// same id must differ (one stream per task).
func TestForkConsumesParentState(t *testing.T) {
	g := NewRNG(42)
	a := g.Fork(1).Float64()
	b := g.Fork(1).Float64()
	if a == b {
		t.Fatal("successive Fork(1) calls produced the same stream")
	}
}
