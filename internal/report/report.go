// Package report renders the evaluation's tables as aligned plain text.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table is a titled grid with a header row and optional footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// X formats a slowdown ratio like "2.13x".
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// US formats a duration in microseconds.
func US(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
}

// MS formats a duration in milliseconds (latency-percentile scale).
func MS(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
