package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	tb.AddNote("a footnote with %d args", 2)
	s := tb.String()
	if !strings.Contains(s, "== Demo ==") {
		t.Fatal("title missing")
	}
	if !strings.Contains(s, "a-much-longer-name  22") {
		t.Fatalf("alignment broken:\n%s", s)
	}
	if !strings.Contains(s, "note: a footnote with 2 args") {
		t.Fatal("note missing")
	}
	// Header separator matches widest cell.
	if !strings.Contains(s, strings.Repeat("-", len("a-much-longer-name"))) {
		t.Fatal("separator not sized to content")
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("T", "A", "B", "C")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F broken")
	}
	if X(2.126) != "2.13x" {
		t.Fatalf("X = %q", X(2.126))
	}
	if Pct(0.25) != "25.0%" {
		t.Fatalf("Pct = %q", Pct(0.25))
	}
	if US(1500*time.Nanosecond) != "1.5us" {
		t.Fatalf("US = %q", US(1500*time.Nanosecond))
	}
}

func TestUntitledTable(t *testing.T) {
	tb := New("", "A")
	tb.AddRow("1")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("empty title rendered")
	}
}
