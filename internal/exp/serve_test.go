package exp

import (
	"testing"

	"repro/internal/traffic"
)

// TestServeSerialParallelIdentical: the serve table must be
// byte-identical at any worker-pool width.
func TestServeSerialParallelIdentical(t *testing.T) {
	serial := Quick()
	serial.Parallel = 1
	parallel := Quick()
	parallel.Parallel = 4
	a := ServeExp(serial).String()
	b := ServeExp(parallel).String()
	if a != b {
		t.Fatalf("serve output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestServeShape pins the serve experiment's qualitative claims at
// quick scale: scheduler divergence across the load sweep, fair
// queueing's victim protection under the adversarial burst, and
// unbounded queue growth without admission control.
func TestServeShape(t *testing.T) {
	opts := Quick()
	cell := func(load float64, sched string, admit bool) ServeResult {
		return RunServeCell(opts, load, sched, "sticky", admit)
	}

	low := map[string]ServeResult{}
	high := map[string]ServeResult{}
	for _, s := range ServeSchedNames() {
		low[s] = cell(0.6, s, true)
		high[s] = cell(1.4, s, true)
	}

	// Fair queueing protects the victim probe's tail under the MMPP
	// adversary: its p99 must beat both timeslice variants on both sides
	// of saturation, with room (2x).
	for _, loadSet := range []map[string]ServeResult{low, high} {
		for _, ts := range []string{"ts", "dts"} {
			if 2*loadSet["dfq"].VictimP99 > loadSet[ts].VictimP99 {
				t.Errorf("victim p99 not protected: dfq %v vs %s %v (load %.1f)",
					loadSet["dfq"].VictimP99, ts, loadSet[ts].VictimP99, loadSet[ts].Load)
			}
		}
	}

	// Shed rates diverge across schedulers, and crossing load 1.0 drives
	// DFQ's shed rate up substantially: below saturation fair queueing
	// serves nearly everything; overload must shed.
	if d := high["ts"].ShedRate - high["dfq"].ShedRate; d < 0.1 {
		t.Errorf("shed rates converged at load 1.4: ts %.2f vs dfq %.2f",
			high["ts"].ShedRate, high["dfq"].ShedRate)
	}
	if low["dfq"].ShedRate > 0.2 {
		t.Errorf("dfq shed %.2f at load 0.6, want mostly admitted", low["dfq"].ShedRate)
	}
	if high["dfq"].ShedRate < low["dfq"].ShedRate+0.2 {
		t.Errorf("dfq shed did not rise across saturation: %.2f -> %.2f",
			low["dfq"].ShedRate, high["dfq"].ShedRate)
	}
	// And goodput saturates near capacity under DFQ rather than collapsing.
	if high["dfq"].GoodputPerSec < 2*high["ts"].GoodputPerSec {
		t.Errorf("dfq goodput %.0f/s should far exceed engaged timeslice %.0f/s under overload",
			high["dfq"].GoodputPerSec, high["ts"].GoodputPerSec)
	}

	// Admission bounds the backlog; without it overload queues grow with
	// the window — double the window, roughly double the backlog.
	bound := ServeAdmitDepth * ServeDevices
	if high["dfq"].QueueDepth > bound {
		t.Errorf("admission-on queue depth %d exceeds bound %d", high["dfq"].QueueDepth, bound)
	}
	off := cell(1.4, "dfq", false)
	if off.QueueDepth < 5*bound {
		t.Errorf("admission-off queue depth %d at load 1.4, want >> bound %d", off.QueueDepth, bound)
	}
	long := opts
	long.Measure = 2 * opts.Measure
	offLong := RunServeCell(long, 1.4, "dfq", "sticky", false)
	if offLong.QueueDepth < off.QueueDepth*3/2 {
		t.Errorf("admission-off backlog did not grow with the window: %d after %v vs %d after %v",
			off.QueueDepth, opts.Measure, offLong.QueueDepth, long.Measure)
	}
	if off.ShedRate != 0 {
		t.Errorf("admission-off cell shed %.2f, want 0 (nothing refuses work)", off.ShedRate)
	}
}

// TestServeLoadKnob: Options.Loads must override the sweep (the
// cmd/neonsim -load flag).
func TestServeLoadKnob(t *testing.T) {
	o := Quick()
	o.Loads = []float64{0.5}
	tbl := ServeExp(o)
	// 1 load x 3 scheds x 2 placements + 3 admission-off rows.
	if got, want := len(tbl.Rows), 9; got != want {
		t.Fatalf("with -load 0.5: %d rows, want %d", got, want)
	}
	for _, row := range tbl.Rows {
		if row[0] != "0.50" {
			t.Fatalf("unexpected load column %q", row[0])
		}
	}
	if len(Quick().ServeLoads()) != len(DefaultServeLoads) {
		t.Fatal("default sweep lost")
	}
}

// TestServePopulationCalibration: the population's aggregate offered
// device time must equal load x devices within a few percent.
func TestServePopulationCalibration(t *testing.T) {
	for _, load := range []float64{0.5, 1.0, 1.5} {
		var offered float64
		for _, s := range ServePopulation(2, load) {
			offered += s.Arrival.MeanRate() * s.Tenant.Mix[0].Size.Seconds()
		}
		want := load * 2
		if offered < want*0.99 || offered > want*1.01 {
			t.Fatalf("load %.1f: offered %.3f device-sec/s, want %.3f", load, offered, want)
		}
	}
	// The burst adversary must burst: peak rate far above its mean.
	streams := ServePopulation(2, 1.0)
	adv := streams[len(streams)-1]
	mmpp, ok := adv.Arrival.(*traffic.MMPP)
	if !ok {
		t.Fatal("adversary is not MMPP")
	}
	if mmpp.BurstRate < 3*mmpp.MeanRate() {
		t.Fatalf("adversary burst rate %.0f/s not bursty vs mean %.0f/s", mmpp.BurstRate, mmpp.MeanRate())
	}
}
