package exp

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workload"
)

// fig2Apps are the small-request applications the paper profiles.
var fig2Apps = []string{"glxgears", "oclParticles", "simpleTexture3D"}

// Fig2 reproduces Figure 2: CDFs of request inter-arrival periods and
// service periods for the three small-request applications, in
// log2-microsecond bins.
func Fig2(opts Options) *report.Table {
	t := report.New("Figure 2: request inter-arrival and service period CDFs (% <= bin)",
		"Application", "Series", "<2us", "<8us", "<32us", "<128us", "<512us", "<2ms")
	cuts := []int{1, 3, 5, 7, 9, 11} // log2(us) bin upper indexes
	for _, name := range fig2Apps {
		spec, ok := workload.ByName(name)
		if !ok {
			continue
		}
		rig := NewRig(Direct, opts, spec)
		rig.Apps[0].Observe = true
		rig.Measure()
		app := rig.Apps[0]
		for _, series := range []struct {
			label string
			cdf   [18]float64
		}{
			{"inter-arrival", app.InterArrival.CDF()},
			{"service", app.Service.CDF()},
		} {
			row := []string{name, series.label}
			for _, c := range cuts {
				row = append(row, fmt.Sprintf("%.0f%%", series.cdf[c]))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("the paper's headline observation: a large share of requests are submitted back-to-back and serviced in <10us")
	return t
}
