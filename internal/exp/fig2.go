package exp

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workload"
)

// fig2Apps are the small-request applications the paper profiles.
var fig2Apps = []string{"glxgears", "oclParticles", "simpleTexture3D"}

// Fig2 reproduces Figure 2: CDFs of request inter-arrival periods and
// service periods for the three small-request applications, in
// log2-microsecond bins. One job per application.
func Fig2(opts Options) *report.Table {
	t := report.New("Figure 2: request inter-arrival and service period CDFs (% <= bin)",
		"Application", "Series", "<2us", "<8us", "<32us", "<128us", "<512us", "<2ms")
	cuts := []int{1, 3, 5, 7, 9, 11} // log2(us) bin upper indexes

	type cdfs struct {
		interArrival, service [18]float64
	}
	var (
		jobs  []Job
		names []string
	)
	for _, name := range fig2Apps {
		spec, ok := workload.ByName(name)
		if !ok {
			continue
		}
		names = append(names, name)
		jobs = append(jobs, NewJob("fig2", len(jobs), name, func(o Options) any {
			rig := NewRig(Direct, o, spec)
			rig.Apps[0].Observe = true
			rig.Measure()
			app := rig.Apps[0]
			return cdfs{interArrival: app.InterArrival.CDF(), service: app.Service.CDF()}
		}))
	}
	res := RunJobs(opts, jobs)

	for i, name := range names {
		c := res[i].Value.(cdfs)
		for _, series := range []struct {
			label string
			cdf   [18]float64
		}{
			{"inter-arrival", c.interArrival},
			{"service", c.service},
		} {
			row := []string{name, series.label}
			for _, cut := range cuts {
				row = append(row, fmt.Sprintf("%.0f%%", series.cdf[cut]))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("the paper's headline observation: a large share of requests are submitted back-to-back and serviced in <10us")
	return t
}
