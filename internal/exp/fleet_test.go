package exp

import (
	"testing"
)

// TestFleetStickyBeatsRoundRobin pins the fleet acceptance property:
// locality-sticky placement beats round-robin on aggregate throughput
// (round-robin migrates warm working sets nearly every round, burning
// fleet capacity on reconstruction) while holding worst-tenant fairness
// within the single-device DFQ bound.
func TestFleetStickyBeatsRoundRobin(t *testing.T) {
	opts := Quick()
	opts.Seed = 1
	const devices = 4
	// Tolerance on the single-device bound: the fleet adds placement
	// skew a single device cannot have, but reconciliation must keep
	// the worst tenant within 15% of the single-device fairness floor.
	const fairnessTolerance = 0.85

	for _, mix := range []string{"uniform", "mixed"} {
		sticky := RunFleetCell(opts, devices, "sticky", mix)
		rr := RunFleetCell(opts, devices, "rr", mix)
		single := RunFleetCell(opts, 1, "sticky", mix)

		if sticky.RoundsPerSec <= rr.RoundsPerSec {
			t.Errorf("%s: sticky %.0f rounds/s does not beat round-robin %.0f",
				mix, sticky.RoundsPerSec, rr.RoundsPerSec)
		}
		if bound := fairnessTolerance * single.WorstShare; sticky.WorstShare < bound {
			t.Errorf("%s: sticky worst-tenant share %.3f below single-device DFQ bound %.3f (%.3f x %.2f)",
				mix, sticky.WorstShare, bound, single.WorstShare, fairnessTolerance)
		}
	}
}

// TestFleetReconciliationKeepsJainHigh guards the fleet-wide fairness
// property at experiment scale: with per-device DFQ plus the board, the
// uniform population's device-time shares stay essentially equal.
func TestFleetReconciliationKeepsJainHigh(t *testing.T) {
	opts := Quick()
	opts.Seed = 1
	for _, policy := range []string{"rr", "least-loaded", "sticky"} {
		r := RunFleetCell(opts, 4, policy, "uniform")
		if r.Jain < 0.95 {
			t.Errorf("%s: Jain index %.3f over uniform tenants, want >= 0.95", policy, r.Jain)
		}
	}
}

// TestFleetSerialParallelIdentical extends the harness's byte-identity
// guarantee to the fleet grid: the emitted table must not depend on the
// worker pool width.
func TestFleetSerialParallelIdentical(t *testing.T) {
	opts := Quick()
	opts.Seed = 1

	serial := opts
	serial.Parallel = 1
	parallel := opts
	parallel.Parallel = 4

	a := FleetExp(serial).String()
	b := FleetExp(parallel).String()
	if a != b {
		t.Fatalf("fleet tables differ between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
