package exp

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/workload"
)

// fig6Pairs are the application/Throttle pairings of Figures 6 and 7.
var fig6Pairs = []string{"DCT", "FFT", "glxgears", "oclParticles"}

// PairResult is one cell of the Figure 6/7 matrix.
type PairResult struct {
	App         string
	ThrottleUS  float64
	Sched       Sched
	AppSlowdown float64
	ThrSlowdown float64
	Efficiency  float64
}

// RunPairs executes the full pairwise matrix: each listed application
// against Throttle at each size, under each scheduler. Every cell is an
// independent job on the worker pool; each application's and each
// Throttle size's standalone baseline is measured once for the whole
// matrix rather than once per pair.
func RunPairs(opts Options, apps []string, sizes []float64, scheds []Sched) []PairResult {
	type cell struct {
		app  workload.Spec
		thr  workload.Spec
		name string
		usz  float64
		s    Sched
	}
	var (
		cells []cell
		specs []workload.Spec
	)
	for _, name := range apps {
		spec, ok := workload.ByName(name)
		if !ok {
			continue
		}
		specs = append(specs, spec)
		for _, usz := range sizes {
			thr := workload.Throttle(time.Duration(usz*float64(time.Microsecond)), 0)
			specs = append(specs, thr)
			for _, s := range scheds {
				cells = append(cells, cell{app: spec, thr: thr, name: name, usz: usz, s: s})
			}
		}
	}
	alone := MeasureBaselines("pairs", opts, specs...)

	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("pairs", i,
			fmt.Sprintf("%s vs Thr(%.0fus) under %s", c.name, c.usz, c.s),
			func(o Options) any {
				return RunMix(c.s, o, alone.For(c.app, c.thr), c.app, c.thr)
			})
	}
	out := make([]PairResult, len(cells))
	for i, r := range RunJobs(opts, jobs) {
		res := r.Value.(MixResult)
		c := cells[i]
		out[i] = PairResult{
			App: c.name, ThrottleUS: c.usz, Sched: c.s,
			AppSlowdown: res.Slowdowns[0], ThrSlowdown: res.Slowdowns[1],
			Efficiency: res.Efficiency,
		}
	}
	return out
}

// fig67Sizes trims the sweep for the default harness (the paper plots
// 19us-1.7ms; four sizes keep the matrix readable).
var fig67Sizes = []float64{19, 191, 425, 1700}

// Fig6 reproduces Figure 6: fairness of concurrent executions — per-pair
// normalized runtimes under each scheduler.
func Fig6(opts Options) *report.Table {
	return fig6Table(RunPairs(opts, fig6Pairs, fig67Sizes, AllScheds()))
}

func fig6Table(results []PairResult) *report.Table {
	t := report.New("Figure 6: pairwise fairness (slowdown vs running alone, app/Throttle)",
		"Pair", "direct", "Timeslice", "Disengaged TS", "Disengaged FQ")
	type key struct {
		app string
		usz float64
	}
	rows := map[key]map[Sched]PairResult{}
	var order []key
	for _, r := range results {
		k := key{r.App, r.ThrottleUS}
		if rows[k] == nil {
			rows[k] = map[Sched]PairResult{}
			order = append(order, k)
		}
		rows[k][r.Sched] = r
	}
	for _, k := range order {
		row := []string{fmt.Sprintf("%s vs Thr(%.0fus)", k.app, k.usz)}
		for _, s := range AllScheds() {
			r := rows[k][s]
			row = append(row, fmt.Sprintf("%.2f/%.2f", r.AppSlowdown, r.ThrSlowdown))
		}
		t.AddRow(row...)
	}
	t.AddNote("direct access is grossly unfair (>10x possible); the fair schedulers hold both co-runners near 2x")
	t.AddNote("glxgears and oclParticles under Disengaged FQ show the paper's estimation anomalies (Section 5.3)")
	return t
}

// Fig7 reproduces Figure 7: concurrency efficiency for the same pairs.
func Fig7(opts Options) *report.Table {
	results := RunPairs(opts, fig6Pairs, fig67Sizes, AllScheds())
	t := report.New("Figure 7: concurrency efficiency (sum of resource shares)",
		"Pair", "direct", "Timeslice", "Disengaged TS", "Disengaged FQ")
	type key struct {
		app string
		usz float64
	}
	rows := map[key]map[Sched]PairResult{}
	var order []key
	for _, r := range results {
		k := key{r.App, r.ThrottleUS}
		if rows[k] == nil {
			rows[k] = map[Sched]PairResult{}
			order = append(order, k)
		}
		rows[k][r.Sched] = r
	}
	for _, k := range order {
		row := []string{fmt.Sprintf("%s vs Thr(%.0fus)", k.app, k.usz)}
		for _, s := range AllScheds() {
			row = append(row, report.F(rows[k][s].Efficiency, 2))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: efficiency losses vs direct average 19%% (Timeslice), 10%% (Disengaged TS), 4%% (Disengaged FQ)")
	return t
}

// Fig8 reproduces Figure 8: four concurrent applications (Throttle 425us,
// BinarySearch, DCT, FFT) — per-app slowdowns plus overall efficiency,
// one job per scheduler.
func Fig8(opts Options) *report.Table {
	thr := workload.Throttle(425*time.Microsecond, 0)
	bs, _ := workload.ByName("BinarySearch")
	dct, _ := workload.ByName("DCT")
	fft, _ := workload.ByName("FFT")
	specs := []workload.Spec{thr, bs, dct, fft}
	alone := MeasureBaselines("fig8", opts, specs...)

	var jobs []Job
	for i, s := range AllScheds() {
		jobs = append(jobs, NewJob("fig8", i, fmt.Sprintf("four apps under %s", s),
			func(o Options) any {
				return RunMix(s, o, alone.For(specs...), specs...)
			}))
	}
	res := RunJobs(opts, jobs)

	t := report.New("Figure 8: four concurrent applications",
		"Scheduler", "Throttle(425us)", "BinarySearch", "DCT", "FFT", "efficiency")
	for i, s := range AllScheds() {
		mix := res[i].Value.(MixResult)
		row := []string{s.Label()}
		for _, sd := range mix.Slowdowns {
			row = append(row, report.X(sd))
		}
		row = append(row, report.F(mix.Efficiency, 2))
		t.AddRow(row...)
	}
	t.AddNote("paper: average slowdown stays at 4-5x; efficiency loss vs direct is 13%% engaged, 8%%/7%% disengaged")
	return t
}
