package exp

// The hetero experiment: fairness on a fleet that mixes device
// generations. The paper's guarantee is stated in device time on one
// GPU; on a mixed fleet a second of consumer-card time is not a second
// of K20 time, so the DFQ ledgers (and the fleet board they reconcile
// through) charge *normalized work* — observed device time scaled by
// the class speed factor. This experiment demonstrates both directions
// of that argument: with normalized accounting every tenant's
// normalized service stays within the single-device fairness bound no
// matter which class serves it, while the raw-device-time ablation
// (DFQConfig.RawCharges) systematically overcharges — and therefore
// starves — tenants stuck on slow devices.

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HeteroMix is one fleet composition of the hetero grid: a display name
// and the per-device class list (fleet.Config.Classes).
type HeteroMix struct {
	Name    string
	Classes []string
}

// DefaultHeteroMixes is the class-mix sweep: a two-class pair, a
// slow-heavy triple, and a fleet spanning three generations.
func DefaultHeteroMixes() []HeteroMix {
	return []HeteroMix{
		{"k20+consumer", []string{"k20", "consumer"}},
		{"k20+2consumer", []string{"k20", "consumer", "consumer"}},
		{"k20+consumer+nextgen", []string{"k20", "consumer", "nextgen"}},
	}
}

// HeteroMixes resolves the class-mix sweep for these Options: the
// -classes override collapses the grid to exactly that composition.
func (o Options) HeteroMixes() []HeteroMix {
	if len(o.Classes) > 0 {
		return []HeteroMix{{strings.Join(o.Classes, "+"), o.Classes}}
	}
	return DefaultHeteroMixes()
}

// HeteroAccountings lists the two DFQ charge rules the grid compares:
// normalized work versus raw device time.
func HeteroAccountings() []string { return []string{"norm", "raw"} }

// HeteroPlaceNames lists the placement policies the hetero grid
// compares: class-blind sticky against the two heterogeneity-aware
// policies.
func HeteroPlaceNames() []string { return []string{"sticky", "fastest-fit", "class-sticky"} }

// HeteroFairBound is the single-device DFQ fairness floor the hetero
// table checks normalized shares against: the worst saturating tenant's
// normalized service must stay within this fraction of the mean —
// the same bound the fleet experiment's fairness tests enforce on a
// homogeneous fleet.
const HeteroFairBound = 0.85

// HeteroResult is one cell of the hetero grid.
type HeteroResult struct {
	Mix        string
	Accounting string
	Place      string
	Tenants    int

	// WorkPerSec is aggregate normalized work retired per second, in
	// reference-device-seconds per second (the fleet's effective
	// capacity in K20 units; e.g. a saturated k20+consumer pair is 1.5).
	WorkPerSec float64
	// Utilization is the mean per-node busy fraction of the window.
	Utilization float64
	// Jain is Jain's fairness index over saturating tenants' received
	// normalized work.
	Jain float64
	// WorstShare is the worst saturating tenant's normalized work
	// relative to the mean; InBound reports WorstShare >= HeteroFairBound.
	WorstShare float64
	InBound    bool
}

// RunHeteroCell builds one mixed-class fleet, runs the uniform
// saturating population through warmup and measurement, and reports
// normalized throughput and normalized fairness.
func RunHeteroCell(o Options, mix HeteroMix, accounting, place string) HeteroResult {
	eng := sim.NewEngine()
	policy, err := fleet.NewPolicy(place)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	f, err := fleet.New(eng, fleet.Config{
		Devices:  len(mix.Classes),
		Classes:  mix.Classes,
		Policy:   policy,
		Sched:    "dfq",
		DFQ:      core.DFQConfig{RawCharges: accounting == "raw"},
		RunLimit: o.RunLimit,
		Seed:     o.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	tenants := workload.FleetPopulation(len(mix.Classes), "uniform")
	for _, ts := range tenants {
		f.Launch(ts)
	}
	eng.RunFor(o.Warmup)
	f.ResetStats()
	eng.RunFor(o.Measure)

	res := HeteroResult{
		Mix:        mix.Name,
		Accounting: accounting,
		Place:      place,
		Tenants:    len(tenants),
	}
	var total core.Work
	var shares []float64
	for _, t := range f.Tenants() {
		if t.SetupError() != nil {
			panic(fmt.Sprintf("exp: hetero tenant %s setup: %v", t.Spec.Name, t.SetupError()))
		}
		w := t.NormalizedWork()
		total += w
		shares = append(shares, float64(w))
	}
	res.WorkPerSec = total.Duration().Seconds() / o.Measure.Seconds()
	res.Utilization = fleetUtilization(f, o.Measure)
	res.Jain = metrics.JainIndex(shares)
	res.WorstShare = worstOverMean(shares)
	res.InBound = res.WorstShare >= HeteroFairBound
	return res
}

// HeteroExp sweeps class mix x DFQ accounting (normalized vs raw) x
// placement policy, every cell an independent job on the worker pool.
func HeteroExp(opts Options) *report.Table {
	type cell struct {
		mix   HeteroMix
		acct  string
		place string
	}
	var cells []cell
	for _, mix := range opts.HeteroMixes() {
		for _, acct := range HeteroAccountings() {
			for _, place := range HeteroPlaceNames() {
				cells = append(cells, cell{mix, acct, place})
			}
		}
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("hetero", i,
			fmt.Sprintf("%s, %s accounting, %s placement", c.mix.Name, c.acct, c.place),
			func(o Options) any {
				return RunHeteroCell(o, c.mix, c.acct, c.place)
			})
	}

	t := report.New("Hetero: mixed device classes, normalized vs raw DFQ accounting (uniform saturating tenants)",
		"mix", "acct", "place", "tenants", "work/s", "util", "Jain", "worst/mean", "fair")
	for _, r := range RunJobs(opts, jobs) {
		res := r.Value.(HeteroResult)
		fair := "no"
		if res.InBound {
			fair = "yes"
		}
		t.AddRow(
			res.Mix,
			res.Accounting,
			res.Place,
			fmt.Sprintf("%d", res.Tenants),
			report.F(res.WorkPerSec, 2),
			report.Pct(res.Utilization),
			report.F(res.Jain, 3),
			report.F(res.WorstShare, 2),
			fair,
		)
	}
	t.AddNote("work/s is normalized work (reference-device-seconds per second): a saturated k20+consumer pair retires 1.5")
	t.AddNote("fairness (Jain, worst/mean) is over per-tenant *normalized* service; fair = worst/mean >= %.2f, the single-device DFQ bound", HeteroFairBound)
	t.AddNote("acct=norm charges virtual time in work units (device time x class speed); acct=raw is the pre-heterogeneity ablation, which overcharges slow-device tenants until they starve")
	t.AddNote("fastest-fit and class-sticky read class speeds; sticky is class-blind and keeps tenants wherever they first landed")
	return t
}
