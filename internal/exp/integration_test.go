package exp

// Integration tests: whole-stack scenarios that cross module boundaries —
// task churn under every scheduler, protection racing real work, and
// randomized-mix fairness properties.

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestTaskChurn launches and kills tasks under every scheduler while a
// long-lived app keeps running; nothing may deadlock or starve.
func TestTaskChurn(t *testing.T) {
	for _, s := range append(AllScheds(), Oracle) {
		s := s
		t.Run(string(s), func(t *testing.T) {
			opts := Quick()
			dct, _ := workload.ByName("DCT")
			rig := NewRig(s, opts, dct)
			survivor := rig.Apps[0]

			// Churn: a new throttle every 40ms, killed 60ms later.
			for i := 0; i < 8; i++ {
				at := time.Duration(40*(i+1)) * time.Millisecond
				rig.Engine.After(at, func() {
					app := workload.Launch(rig.Kernel, workload.Throttle(200*time.Microsecond, 0), nil)
					rig.Engine.After(60*time.Millisecond, func() {
						rig.Kernel.KillTask(app.Task, "churn")
					})
				})
			}
			rig.Engine.RunFor(600 * time.Millisecond)
			if !survivor.Alive() {
				t.Fatal("survivor died during churn")
			}
			if survivor.Rounds == 0 {
				t.Fatal("survivor starved during churn")
			}
			if got := len(rig.Kernel.Tasks()); got != 1 {
				t.Fatalf("%d tasks alive after churn, want 1", got)
			}
		})
	}
}

// TestProtectionDuringContention: the kill must single out the attacker
// even while several innocent tasks have queued work.
func TestProtectionDuringContention(t *testing.T) {
	opts := Quick()
	opts.RunLimit = 30 * time.Millisecond
	dct, _ := workload.ByName("DCT")
	fft, _ := workload.ByName("FFT")
	rig := NewRig(DFQ, opts, dct, fft)
	attacker := workload.LaunchInfiniteKernel(rig.Kernel, 5)
	rig.Engine.RunFor(500 * time.Millisecond)
	if attacker.Task.Alive {
		t.Fatal("attacker survived")
	}
	for _, app := range rig.Apps {
		if !app.Alive() {
			t.Fatalf("innocent %s was killed", app.Spec.Name)
		}
		if app.Rounds == 0 {
			t.Fatalf("innocent %s starved", app.Spec.Name)
		}
	}
}

// TestPropertyFairSharesUnderDTS: for random saturating request sizes,
// Disengaged Timeslice keeps Jain's fairness index over device-time
// shares high, regardless of the mix.
func TestPropertyFairSharesUnderDTS(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(aRaw, bRaw uint16) bool {
		// Request sizes in [10us, 2ms].
		a := time.Duration(10+int(aRaw)%1990) * time.Microsecond
		b := time.Duration(10+int(bRaw)%1990) * time.Microsecond
		opts := Quick()
		opts.Measure = 300 * time.Millisecond
		sa := workload.Throttle(a, 0)
		sa.Name = "A"
		sb := workload.Throttle(b, 0)
		sb.Name = "B"
		rig := NewRig(DTS, opts, sa, sb)
		rig.Measure()
		x := float64(rig.Apps[0].Task.BusyTime())
		y := float64(rig.Apps[1].Task.BusyTime())
		if x+y == 0 {
			return false
		}
		return metrics.JainIndex([]float64{x, y}) > 0.93
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoStarvationUnderDFQ: with random pairings, every task
// completes work under Disengaged Fair Queueing.
func TestPropertyNoStarvationUnderDFQ(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(aRaw, bRaw, cRaw uint16) bool {
		mk := func(raw uint16, name string) workload.Spec {
			s := workload.Throttle(time.Duration(10+int(raw)%1490)*time.Microsecond, 0)
			s.Name = name
			return s
		}
		opts := Quick()
		opts.Measure = 300 * time.Millisecond
		rig := NewRig(DFQ, opts, mk(aRaw, "A"), mk(bRaw, "B"), mk(cRaw, "C"))
		rig.Measure()
		for _, app := range rig.Apps {
			if app.Rounds == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsScale: Full and Quick must differ only in windows.
func TestOptionsScale(t *testing.T) {
	f, q := Full(), Quick()
	if f.Measure <= q.Measure || f.Warmup <= q.Warmup {
		t.Fatal("Full should use longer windows than Quick")
	}
	if f.GraphicsPenalty != q.GraphicsPenalty || f.RunLimit != q.RunLimit || f.Seed != q.Seed {
		t.Fatal("non-window options should match")
	}
}

// TestSchedLabels: every policy renders a human label.
func TestSchedLabels(t *testing.T) {
	for _, s := range append(AllScheds(), Oracle) {
		if s.Label() == "" || s.Label() == string(s) && s != Direct {
			t.Errorf("missing label for %q", s)
		}
	}
	if Sched("x").Label() != "x" {
		t.Error("unknown sched should echo its name")
	}
}
