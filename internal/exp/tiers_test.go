package exp

import (
	"testing"

	"repro/internal/workload"
)

// TestTiersSerialParallelIdentical: the tiers table must be
// byte-identical at any worker-pool width.
func TestTiersSerialParallelIdentical(t *testing.T) {
	serial := Quick()
	serial.Parallel = 1
	parallel := Quick()
	parallel.Parallel = 4
	a := TiersExp(serial).String()
	b := TiersExp(parallel).String()
	if a != b {
		t.Fatalf("tiers output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestTiersSharesShape pins the shares probe's qualitative claims at
// quick scale: weighted DFQ delivers a premium share proportional to
// its weight and keeps every principal within the entitlement bound;
// the unweighted ablation flattens the same 4x contract to ~parity, and
// timeslice's unweighted rotation cannot express it at all.
func TestTiersSharesShape(t *testing.T) {
	opts := Quick()
	four := [3]float64{4, 1, 1}
	two := [3]float64{2, 1, 1}

	weighted := RunTierShareCell(opts, "dfq", "weighted", four)
	if weighted.PremStdRatio < 2.5 {
		t.Errorf("weighted dfq prem/std = %.2f, want ~4 (at least 2.5)", weighted.PremStdRatio)
	}
	if !weighted.InBound {
		t.Errorf("weighted dfq entitled = %.2f, outside the %.2f bound", weighted.WorstEntitled, HeteroFairBound)
	}

	flat := RunTierShareCell(opts, "dfq", "flat", four)
	if flat.PremStdRatio > 1.4 {
		t.Errorf("flat dfq prem/std = %.2f, the ablation should flatten the 4x contract to ~1x", flat.PremStdRatio)
	}
	if flat.InBound {
		t.Errorf("flat dfq entitled = %.2f inside the bound; ignoring a 4x weight must break it", flat.WorstEntitled)
	}
	if weighted.PremStdRatio <= 2*flat.PremStdRatio {
		t.Errorf("weights changed little: weighted %.2f vs flat %.2f", weighted.PremStdRatio, flat.PremStdRatio)
	}

	ts := RunTierShareCell(opts, "ts", "weighted", four)
	if ts.PremStdRatio > 1.4 || ts.InBound {
		t.Errorf("timeslice prem/std = %.2f (fair=%v); unweighted rotation should flatten the contract",
			ts.PremStdRatio, ts.InBound)
	}

	// A steeper contract buys a larger share.
	gentler := RunTierShareCell(opts, "dfq", "weighted", two)
	if weighted.PremStdRatio <= gentler.PremStdRatio {
		t.Errorf("4x contract share ratio %.2f not above 2x contract %.2f",
			weighted.PremStdRatio, gentler.PremStdRatio)
	}
}

// TestTiersServeShape pins the serve probe: through an overload sweep
// that sheds best-effort traffic (and increasingly standard traffic),
// the premium stream is never shed and its p99 stays bounded.
func TestTiersServeShape(t *testing.T) {
	opts := Quick()
	weights := [3]float64{4, 1, 1}
	mild := RunTierServeCell(opts, 1.2, weights)
	deep := RunTierServeCell(opts, 1.8, weights)
	for _, res := range []TierResult{mild, deep} {
		if res.PremShed != 0 {
			t.Errorf("load %.2f: premium shed %.1f%%, want exactly 0", res.Load, 100*res.PremShed)
		}
		if res.BEShed <= res.StdShed {
			t.Errorf("load %.2f: best-effort shed %.2f not above standard %.2f — tiers not ordered",
				res.Load, res.BEShed, res.StdShed)
		}
		if res.BEShed < 0.5 {
			t.Errorf("load %.2f: best-effort shed %.2f, want the scraper mostly refused", res.Load, res.BEShed)
		}
	}
	if deep.StdShed <= mild.StdShed {
		t.Errorf("standard shed did not grow with overload: %.2f at 1.2 vs %.2f at 1.8",
			mild.StdShed, deep.StdShed)
	}
	// Premium latency must stay flat through the overload step: deeper
	// overload sheds lower tiers instead of queueing premium.
	if mild.PremP99 <= 0 || deep.PremP99 > 3*mild.PremP99 {
		t.Errorf("premium p99 not flat through overload: %v at 1.2 vs %v at 1.8", mild.PremP99, deep.PremP99)
	}
}

// TestTiersKnobs: Options.Weights must collapse the ratio sweep to the
// custom contract (cmd/neonsim -weights) and Options.Tiers must
// reassign the roles' admission tiers (-tiers).
func TestTiersKnobs(t *testing.T) {
	o := Quick()
	o.Weights = []float64{8, 2, 1}
	vecs := o.TierWeightVectors()
	if len(vecs) != 1 || vecs[0] != [3]float64{8, 2, 1} {
		t.Fatalf("TierWeightVectors with override = %v, want single 8:2:1", vecs)
	}
	if o.TierServeWeights() != [3]float64{8, 2, 1} {
		t.Fatalf("TierServeWeights with override = %v", o.TierServeWeights())
	}
	tbl := TiersExp(o)
	// 1 weight vector x (ts + dfq-weighted + dfq-flat) + 2 serve loads.
	if got, want := len(tbl.Rows), 5; got != want {
		t.Fatalf("with -weights: %d rows, want %d", got, want)
	}
	for _, row := range tbl.Rows {
		if row[4] != "8:2:1" {
			t.Fatalf("unexpected weights column %q", row[4])
		}
	}
	if got := len(Quick().TierWeightVectors()); got != len(DefaultTierRatios) {
		t.Fatalf("default ratio sweep lost: %d vectors", got)
	}

	o = Quick()
	o.Tiers = []workload.Tier{workload.TierPremium, workload.TierPremium, workload.TierStandard}
	got := o.tierAssignments()
	want := [3]workload.Tier{workload.TierPremium, workload.TierPremium, workload.TierStandard}
	if got != want {
		t.Fatalf("tierAssignments with override = %v, want %v", got, want)
	}
	streams := TierPopulation(2, 1.2, [3]float64{4, 1, 1}, got)
	for i, s := range streams {
		if s.Tenant.Tier != want[i] {
			t.Errorf("stream %d tier = %q, want %q", i, s.Tenant.Tier, want[i])
		}
	}
	// Defaults: each role keeps its namesake tier.
	def := Quick().tierAssignments()
	if def != [3]workload.Tier{workload.TierPremium, workload.TierStandard, workload.TierBestEffort} {
		t.Fatalf("default tier assignments = %v", def)
	}
}
