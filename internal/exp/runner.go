// Package exp drives the paper's evaluation: one function per table and
// figure, each returning a report.Table with the same rows/series the
// paper plots. A shared runner builds the full stack (engine, device,
// kernel, scheduler, applications) for each scenario.
package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options scales the experiments: Full matches the paper's configuration;
// Quick shrinks measurement windows for tests and benchmarks.
type Options struct {
	// Warmup and Measure are the settle and measurement windows.
	Warmup  sim.Duration
	Measure sim.Duration
	// GraphicsPenalty is the device's internal arbitration bias
	// (DefaultPenalty reproduces the paper's observations).
	GraphicsPenalty int
	// RunLimit is the kernel's over-long request kill threshold.
	RunLimit sim.Duration
	// Seed feeds the deterministic RNG.
	Seed int64
	// Parallel bounds the experiment worker pool: scenarios of one
	// experiment run on up to this many goroutines, each with its own
	// engine and a seed forked from (Seed, experiment, scenario index),
	// so results are identical at any width. Zero means runtime.NumCPU.
	Parallel int
	// Loads overrides the serve experiment's load-factor sweep
	// (cmd/neonsim -load); nil means DefaultServeLoads.
	Loads []float64
	// Classes overrides the fleet composition (cmd/neonsim -classes):
	// the hetero experiment replaces its class-mix sweep with exactly
	// this mix, and the serve experiment runs its open-loop grid over a
	// fleet of these classes instead of a homogeneous one. Nil keeps
	// each experiment's default.
	Classes []string
	// Weights overrides the tiers experiment's premium/standard/
	// best-effort fair-share weight vector (cmd/neonsim -weights): three
	// positive factors, replacing the default premium-ratio sweep with
	// exactly this contract. Nil keeps the sweep.
	Weights []float64
	// Tiers overrides the tiers experiment's admission tier per role
	// (cmd/neonsim -tiers): three workload tiers assigned to the
	// premium/standard/best-effort streams in order. Nil keeps each
	// role's namesake tier.
	Tiers []workload.Tier
	// Tenants overrides the scale experiment's tenant-count sweep
	// (cmd/neonsim -tenants); nil means DefaultScaleTenants.
	Tenants []int
	// Policy selects the allocation policy (cmd/neonsim -policy) the
	// tiers experiment attaches to its fleets via the round-based
	// allocator: a policy.Parse name such as "static", "maxmin", "hier"
	// (optionally "hier:org=weight,..."), or "cost". Empty runs no
	// allocator at all — and "static" through the allocator is
	// byte-identical to that, which the differential test pins.
	Policy string
	// DeepScale appends the scale experiment's deep rows (cmd/neonsim
	// -deep): the 10^6-tenant synthetic ledger cell and the 10^5-tenant
	// full-stack storm. Off by default — the rows cost minutes, not
	// seconds, and have their own golden (testdata/scale_deep.golden).
	DeepScale bool
}

// DefaultPenalty is the graphics arbitration bias observed in Section
// 5.3 ("almost one third the rate").
const DefaultPenalty = 3

// Full returns the paper-scale options.
func Full() Options {
	return Options{
		Warmup:          200 * time.Millisecond,
		Measure:         2 * time.Second,
		GraphicsPenalty: DefaultPenalty,
		RunLimit:        time.Second,
		Seed:            1,
	}
}

// Quick returns reduced windows for tests and benchmarks.
func Quick() Options {
	o := Full()
	o.Warmup = 60 * time.Millisecond
	o.Measure = 400 * time.Millisecond
	return o
}

// Sched names a policy for the runner; the empty string means "direct".
type Sched string

// The selectable policies.
const (
	Direct Sched = "direct"
	TS     Sched = "timeslice"
	DTS    Sched = "dts"
	DFQ    Sched = "dfq"
	Oracle Sched = "oracle"
)

// AllScheds returns the four policies of the paper's figures, in
// presentation order.
func AllScheds() []Sched { return []Sched{Direct, TS, DTS, DFQ} }

// Label returns the display name used in the paper's figures.
func (s Sched) Label() string {
	switch s {
	case Direct:
		return "direct"
	case TS:
		return "Timeslice"
	case DTS:
		return "Disengaged Timeslice"
	case DFQ:
		return "Disengaged Fair Queueing"
	case Oracle:
		return "Oracle Fair Queueing"
	}
	return string(s)
}

// Rig is one fully assembled simulation stack.
type Rig struct {
	Engine *sim.Engine
	Device *gpu.Device
	Kernel *neon.Kernel
	Apps   []*workload.App
	opts   Options
}

// NewRig builds a stack with the given scheduler and launches the specs.
func NewRig(sched Sched, opts Options, specs ...workload.Spec) *Rig {
	eng := sim.NewEngine()
	cfg := gpu.DefaultConfig()
	if opts.GraphicsPenalty > 0 {
		cfg.GraphicsPenalty = opts.GraphicsPenalty
	}
	cfg.Costs = cost.Default()
	dev := gpu.New(eng, cfg)
	policy, err := core.New(string(sched))
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	k := neon.NewKernel(dev, policy)
	k.RequestRunLimit = opts.RunLimit
	rig := &Rig{Engine: eng, Device: dev, Kernel: k, opts: opts}
	rng := sim.NewRNG(opts.Seed)
	for i, s := range specs {
		rig.Apps = append(rig.Apps, workload.Launch(k, s, rng.ForkNamed("app", i)))
	}
	return rig
}

// Measure runs warmup, clears statistics, runs the measurement window,
// and returns each app's average round time in launch order.
func (r *Rig) Measure() []sim.Duration {
	r.Engine.RunFor(r.opts.Warmup)
	for _, a := range r.Apps {
		a.ResetStats()
	}
	r.Engine.RunFor(r.opts.Measure)
	out := make([]sim.Duration, len(r.Apps))
	for i, a := range r.Apps {
		out[i] = a.AvgRound()
	}
	return out
}

// MeasureAlone runs each spec standalone under direct access and returns
// its baseline round time. These are the denominators of every slowdown
// in the paper.
func MeasureAlone(opts Options, specs ...workload.Spec) []sim.Duration {
	out := make([]sim.Duration, len(specs))
	for i, s := range specs {
		rig := NewRig(Direct, opts, s)
		out[i] = rig.Measure()[0]
	}
	return out
}

// MixResult is a concurrent run's outcome.
type MixResult struct {
	Rounds     []sim.Duration // avg round per app
	Slowdowns  []float64      // vs the supplied baselines
	Efficiency float64        // paper's concurrency efficiency
	Rig        *Rig
}

// RunMix launches the specs together under the scheduler and computes
// slowdowns against the provided standalone baselines.
func RunMix(sched Sched, opts Options, alone []sim.Duration, specs ...workload.Spec) MixResult {
	rig := NewRig(sched, opts, specs...)
	rounds := rig.Measure()
	res := MixResult{Rounds: rounds, Rig: rig}
	for i := range specs {
		res.Slowdowns = append(res.Slowdowns, metrics.Slowdown(rounds[i], alone[i]))
	}
	res.Efficiency = metrics.Efficiency(alone, rounds)
	return res
}
