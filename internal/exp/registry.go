package exp

import (
	"strings"

	"repro/internal/report"
)

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) *report.Table
}

// Registry returns every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "benchmark characteristics (Table 1)", Table1},
		{"fig2", "request inter-arrival and service CDFs (Figure 2)", Fig2},
		{"sec3", "direct access vs per-request traps (Section 3)", Sec3Throughput},
		{"fig4", "standalone overhead per scheduler (Figure 4)", Fig4},
		{"fig5", "standalone Throttle overhead vs request size (Figure 5)", Fig5},
		{"fig6", "pairwise fairness (Figure 6)", Fig6},
		{"fig7", "pairwise concurrency efficiency (Figure 7)", Fig7},
		{"fig8", "four concurrent applications (Figure 8)", Fig8},
		{"fig9", "nonsaturating fairness (Figure 9)", Fig9},
		{"fig10", "nonsaturating efficiency (Figure 10)", Fig10},
		{"protect", "over-long request protection (Sections 3.1, 6.2)", Protection},
		{"sec63", "channel allocation DoS protection (Section 6.3)", Sec63DoS},
		{"ablation-stats", "sampled estimates vs hardware statistics", AblationStats},
		{"ablation-params", "configuration parameter sweeps", AblationParams},
		{"fleet", "multi-device placement policies and fleet-wide fairness", FleetExp},
		{"serve", "open-loop traffic: latency SLOs, admission control, overload", ServeExp},
		{"hetero", "mixed device classes: normalized vs raw DFQ accounting", HeteroExp},
		{"tiers", "weighted shares and SLO service tiers under overload", TiersExp},
		{"scale", "indexed fair queueing at 10^2..10^5 tenants", ScaleExp},
		{"policy", "declarative allocation policies over the tenant x class matrix", PolicyExp},
	}
}

// RenderAll runs every registered experiment and concatenates their
// tables in registry order — the stable portion of `neonsim -exp all`
// output (per-run timing lines excluded). It is deterministic at any
// Options.Parallel width; the golden regression test diffs it against
// testdata/quick.golden so any table drift is an explicit, reviewed
// change.
func RenderAll(opts Options) string {
	var b strings.Builder
	for _, e := range Registry() {
		b.WriteString(e.Run(opts).String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
