package exp

import (
	"fmt"
	"time"

	"repro/internal/neon"
	"repro/internal/report"
	"repro/internal/workload"
)

// Protection runs the Section 3.1 denial-of-service scenario: a task that
// submits an infinite-loop kernel alongside an innocent DCT. Under direct
// access the device hangs; under the protected schedulers the kernel
// identifies the over-long request during a drain and kills the task.
// Each scheduler's scenario is an independent job.
func Protection(opts Options) *report.Table {
	scheds := append(AllScheds(), Oracle)
	var jobs []Job
	for i, s := range scheds {
		jobs = append(jobs, NewJob("protect", i, fmt.Sprintf("attacker under %s", s),
			func(o Options) any {
				o.RunLimit = 50 * time.Millisecond
				dct, _ := workload.ByName("DCT")
				rig := NewRig(s, o, dct)
				inf := workload.LaunchInfiniteKernel(rig.Kernel, 3)
				rig.Engine.RunFor(o.Warmup)
				for _, a := range rig.Apps {
					a.ResetStats()
				}
				rig.Engine.RunFor(o.Measure)
				victim := rig.Apps[0]
				return []string{
					s.Label(),
					fmt.Sprintf("%v", !inf.Task.Alive),
					inf.Task.ExitReason,
					fmt.Sprintf("%d", victim.Rounds),
					report.US(victim.AvgRound()),
				}
			}))
	}
	t := report.New("Section 3.1/6.2: protection against over-long (infinite) requests",
		"Scheduler", "attacker killed", "exit reason", "victim rounds", "victim round time")
	for _, r := range RunJobs(opts, jobs) {
		t.AddRow(r.Value.([]string)...)
	}
	t.AddNote("direct access has no recourse: the device is occupied forever and the victim starves")
	t.AddNote("Oracle FQ relies on the same run-limit kill, applied via its periodic accounting")
	return t
}

// Sec63DoS runs the Section 6.3 channel-exhaustion attack, with and
// without the OS channel-allocation policy, one job per variant.
func Sec63DoS(opts Options) *report.Table {
	var jobs []Job
	for i, withPolicy := range []bool{false, true} {
		jobs = append(jobs, NewJob("sec63", i, fmt.Sprintf("policy=%v", withPolicy),
			func(o Options) any {
				rig := NewRig(Direct, o)
				if withPolicy {
					rig.Kernel.Policy = &neon.ChannelPolicy{MaxChannelsPerTask: 4, MaxTasks: 24}
				}
				_, res, _ := workload.LaunchChannelHog(rig.Kernel, 100)
				rig.Engine.RunFor(50 * time.Millisecond)

				// A well-behaved victim arrives after the hog.
				dct, _ := workload.ByName("DCT")
				victim := workload.Launch(rig.Kernel, dct, nil)
				rig.Engine.RunFor(50 * time.Millisecond)

				label := "none (vendor default)"
				if withPolicy {
					label = "C=4 channels/task, D/C tasks"
				}
				errText := "-"
				if res.DeniedAt != nil {
					errText = res.DeniedAt.Error()
				}
				return []string{
					label,
					fmt.Sprintf("%d", res.ContextsCreated),
					errText,
					fmt.Sprintf("%v", victim.SetupError() == nil),
				}
			}))
	}
	t := report.New("Section 6.3: channel allocation protection",
		"Policy", "hog contexts", "hog stopped by", "victim can open?")
	for _, r := range RunJobs(opts, jobs) {
		t.AddRow(r.Value.([]string)...)
	}
	t.AddNote("the paper observed the device wedged after 48 contexts; the OS policy leaves room for later arrivals")
	return t
}
