package exp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
)

// TestScaleLeadBoundInvariant is the property half of the scale
// experiment: under randomized open-loop engagement storms at 10^4 and
// 10^5 tenants, the indexed DFQ path (per-device ledgers reconciling
// through the sharded board) must keep every tenant's fleet-wide lead
// within the weighted bound freeRun + devices x window / minWeight. It
// extends internal/traffic's TestWeightedDFQLeadBoundInvariant — which
// proves the same bound on the real scheduler at device-channel
// populations — to tenant counts the simulated GPU cannot host.
func TestScaleLeadBoundInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 10^4..10^5-tenant storms (~4s)")
	}
	for _, tenants := range []int{10_000, 100_000} {
		reps := 3
		if tenants >= 100_000 {
			reps = 1
		}
		for rep := 0; rep < reps; rep++ {
			t.Run(fmt.Sprintf("tenants%d/rep%d", tenants, rep), func(t *testing.T) {
				o := Quick()
				o.Seed = sim.StreamSeed(1, "scale-lead-bound", tenants+rep)
				res := RunScaleCell(o, tenants, DFQ)
				if res.Requests == 0 {
					t.Fatal("storm charged no requests; nothing was tested")
				}
				if !res.InBound {
					t.Errorf("fleet-wide lead bound violated: ratio %.3f at %d tenants",
						res.BoundRatio, tenants)
				}
				if res.BoundRatio < 0 || math.IsNaN(res.BoundRatio) {
					t.Errorf("nonsensical bound ratio %v", res.BoundRatio)
				}
			})
		}
	}
}

// TestScaleAllocsFlat pins the sub-linearity acceptance bar directly:
// deterministic structural allocations per request must stay flat
// (within ±10%) from 10^2 to 10^5 tenants. A ledger or board step that
// scaled per-cycle work with the idle population would drag this ratio
// up with tenant count.
func TestScaleAllocsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 10^5-tenant cell (~1s)")
	}
	o := Quick()
	o.Seed = sim.StreamSeed(1, "scale", 0)
	small := RunScaleCell(o, 100, DFQ)
	large := RunScaleCell(o, 100_000, DFQ)
	if small.AllocsPerReq <= 0 || large.AllocsPerReq <= 0 {
		t.Fatalf("allocs/request not measured: %v, %v", small.AllocsPerReq, large.AllocsPerReq)
	}
	if ratio := large.AllocsPerReq / small.AllocsPerReq; ratio > 1.1 || ratio < 0.9 {
		t.Errorf("allocs/request drifted %.0f%% from 10^2 (%.3f) to 10^5 (%.3f) tenants; want flat within 10%%",
			100*(ratio-1), small.AllocsPerReq, large.AllocsPerReq)
	}
}

// TestScaleCellDeterminism reruns one cell on the same forked seed and
// requires identical results — the property that lets the scale table
// live in the byte-exact golden.
func TestScaleCellDeterminism(t *testing.T) {
	o := Quick()
	o.Seed = sim.StreamSeed(7, "scale", 3)
	for _, sched := range ScaleScheds() {
		a := RunScaleCell(o, 1000, sched)
		b := RunScaleCell(o, 1000, sched)
		if a != b {
			t.Errorf("%s cell not deterministic:\n%+v\n%+v", sched, a, b)
		}
	}
}
