package exp

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func us(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }

// TestStandaloneDirectMatchesTable1 checks that DCT alone under direct
// access completes rounds at roughly Table 1's rate.
func TestStandaloneDirectMatchesTable1(t *testing.T) {
	spec, ok := workload.ByName("DCT")
	if !ok {
		t.Fatal("DCT spec missing")
	}
	alone := MeasureAlone(Quick(), spec)[0]
	if alone <= 0 {
		t.Fatal("no rounds measured")
	}
	lo, hi := us(spec.PaperRoundUS*0.9), us(spec.PaperRoundUS*1.2)
	if alone < lo || alone > hi {
		t.Errorf("DCT standalone round = %v, want within [%v, %v]", alone, lo, hi)
	}
}

// TestPairFairnessUnderDTS checks that two saturating apps each slow to
// roughly 2x under Disengaged Timeslice.
func TestPairFairnessUnderDTS(t *testing.T) {
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(425*time.Microsecond, 0)
	opts := Quick()
	alone := MeasureAlone(opts, dct, thr)
	res := RunMix(DTS, opts, alone, dct, thr)
	for i, s := range res.Slowdowns {
		if s < 1.6 || s > 2.6 {
			t.Errorf("app %d slowdown = %.2f, want ~2x", i, s)
		}
	}
}

// TestDirectAccessIsUnfair checks the motivating observation: under
// direct access a large-request Throttle starves a small-request app.
func TestDirectAccessIsUnfair(t *testing.T) {
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(1700*time.Microsecond, 0)
	opts := Quick()
	alone := MeasureAlone(opts, dct, thr)
	res := RunMix(Direct, opts, alone, dct, thr)
	if res.Slowdowns[0] < 4 {
		t.Errorf("DCT slowdown under direct vs 1.7ms Throttle = %.2f, want >> 2x", res.Slowdowns[0])
	}
	if res.Slowdowns[1] > 1.6 {
		t.Errorf("Throttle slowdown = %.2f, want near 1x", res.Slowdowns[1])
	}
}
