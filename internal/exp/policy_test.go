package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStaticPolicyTiersByteIdentical is the mechanism-equivalence half
// of the policy/mechanism split: running the tiers experiment with the
// static policy attached through the round-based allocator must render
// byte-identically to running it with no allocator at all. The static
// policy passes spec weights through verbatim, hints nothing, and
// defers tier bounds, so every allocator round writes back exactly the
// state it read — any drift here means the allocator is not inert.
func TestStaticPolicyTiersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the tiers grid twice (~seconds)")
	}
	legacy := TiersExp(Quick()).String()
	o := Quick()
	o.Policy = "static"
	allocated := TiersExp(o).String()
	if legacy == allocated {
		return
	}
	legacyLines := strings.Split(legacy, "\n")
	allocLines := strings.Split(allocated, "\n")
	n := len(legacyLines)
	if len(allocLines) < n {
		n = len(allocLines)
	}
	for i := 0; i < n; i++ {
		if legacyLines[i] != allocLines[i] {
			t.Fatalf("static-through-allocator drifted from no-allocator at line %d:\n  no allocator: %q\n  static:       %q",
				i+1, legacyLines[i], allocLines[i])
		}
	}
	t.Fatalf("static-through-allocator output length %d lines vs no-allocator %d lines",
		len(allocLines), len(legacyLines))
}

// TestPolicyExpSeparatesObjectives pins the policy experiment's
// headline claims cell by cell, independent of table formatting:
// max-min beats static on the worst-case normalized share, the
// hierarchical policy holds acme's org share through a bitco crowd
// that dilutes it under flat weights, and the cost policy serves the
// slack-fleet population cheaper per delivered work than static.
func TestPolicyExpSeparatesObjectives(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six policy cells (~seconds)")
	}
	o := Quick()
	run := func(probe, pol, pop string) PolicyResult {
		return RunPolicyCell(o, policyCell{probe, pol, pop})
	}

	static := run("shares", "static", "-")
	maxmin := run("shares", "maxmin", "-")
	if maxmin.WorstEq <= static.WorstEq {
		t.Errorf("max-min worst-case normalized share %.3f does not beat static %.3f",
			maxmin.WorstEq, static.WorstEq)
	}

	flatCrowd := run("orgs", "static", "crowd")
	hierBase := run("orgs", PolicyHierSpec, "base")
	hierCrowd := run("orgs", PolicyHierSpec, "crowd")
	if hierCrowd.OrgShare <= flatCrowd.OrgShare {
		t.Errorf("hier acme share %.3f under crowd does not beat flat %.3f",
			hierCrowd.OrgShare, flatCrowd.OrgShare)
	}
	// Org isolation: the crowd moves acme's hierarchical share by far
	// less than the flat dilution (3/4 -> 3/7 in contract terms).
	if drift := hierBase.OrgShare - hierCrowd.OrgShare; drift > 0.15 {
		t.Errorf("hier acme share drifted %.3f (base %.3f -> crowd %.3f) despite org isolation",
			drift, hierBase.OrgShare, hierCrowd.OrgShare)
	}

	staticCost := run("cost", "static", "-")
	costCost := run("cost", "cost", "-")
	if costCost.CostPerWork >= staticCost.CostPerWork {
		t.Errorf("cost policy $/work %.3f not below static %.3f",
			costCost.CostPerWork, staticCost.CostPerWork)
	}
}

// TestScaleQuickExcludesDeepRows is the runtime tripwire for the deep
// scale rows: the committed quick golden must not contain them (they
// cost minutes), and the committed deep golden must. Checking the
// goldens instead of re-running the grids keeps the tripwire free.
func TestScaleQuickExcludesDeepRows(t *testing.T) {
	quick, err := os.ReadFile(filepath.Join("testdata", "quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(quick), "1000000") {
		t.Fatal("quick.golden contains the 10^6-tenant deep row; deep rows must stay behind -deep")
	}
	deep, err := os.ReadFile(filepath.Join("testdata", "scale_deep.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"1000000", "100000"} {
		if !strings.Contains(string(deep), row) {
			t.Fatalf("scale_deep.golden lacks the %s-tenant row", row)
		}
	}
}
