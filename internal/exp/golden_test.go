package exp

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/quick.golden from the current output")

// TestQuickGolden diffs the full `-exp all -quick` table output against
// the committed golden file, so any drift in any experiment's numbers
// is an explicit, reviewed change rather than a silent one. Regenerate
// deliberately with:
//
//	go test ./internal/exp -run TestQuickGolden -update
//
// The output is deterministic across machines and -parallel widths
// (DESIGN.md section 4), which is what makes a byte-exact golden file
// possible at all.
func TestQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full -exp all -quick grid (~10s)")
	}
	got := RenderAll(Quick())
	path := filepath.Join("testdata", "quick.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (run with -update to create it)", path, err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output drifted from %s at line %d:\n  want: %q\n  got:  %q\n"+
				"If the change is intended, regenerate with -update and review the diff.",
				path, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("output drifted from %s: length %d lines vs golden %d lines. "+
		"If the change is intended, regenerate with -update and review the diff.",
		path, len(gotLines), len(wantLines))
}
