package exp

// The policy experiment: the policy/mechanism split in action. Every
// cell runs the *same* mechanism stack — a mixed-class fleet (one
// k20, one consumer, one nextgen device), hint-aware fastest-fit
// placement, weighted DFQ per device, the round-based allocator — and
// varies only the declarative allocation policy driving it. Three
// probes isolate three objectives the one enforcement engine serves:
//
//   - "shares": saturating closed-loop tenants with a skewed 4:1:1
//     weight contract. Static passes the contract through verbatim, so
//     the light tenants split whatever the heavy one leaves on their
//     device; max-min caps the heavy tenant at what it can actually
//     consume (one closed-loop tenant draws at most one device) and
//     spreads placement by packed allocation, lifting the worst
//     tenant's normalized share. The hier row on this org-less
//     population is the flat fallback — hierarchical shares degenerate
//     to the static contract when nobody declares an org.
//   - "orgs": two organizations, acme (two tenants) and bitco, under
//     hier:acme=3,bitco=1. The crowd population enrolls three extra
//     bitco tenants; flat static weights dilute acme toward 3/7 of the
//     fleet while the hierarchical policy re-normalizes inside bitco
//     and holds acme's org share — the org-level isolation flat
//     weights cannot express.
//   - "cost": duty-cycled tenants leaving the fleet slack. Static's
//     fastest-fit greedy serves them on the fastest (priciest) class;
//     the cost policy hints the load onto the cheapest
//     price-per-work class first, cutting dollars per delivered work.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// allocPolicy resolves the Options' allocation policy for a fleet
// config: nil (no allocator) when unset, else the parsed policy.
// cmd/neonsim validates the name at flag-parse time, so an unparsable
// name here is a programming error, reported like other exp config
// panics.
func allocPolicy(o Options) policy.Policy {
	if o.Policy == "" {
		return nil
	}
	p, err := policy.Parse(o.Policy)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return p
}

// PolicyClasses is the experiment's fleet composition: one device per
// generation, so every policy faces the full speed spread.
func PolicyClasses() []string { return []string{"k20", "consumer", "nextgen"} }

// PolicyHierSpec is the orgs probe's hierarchical contract: acme buys
// three times bitco's org weight, whatever either org's headcount.
const PolicyHierSpec = "hier:acme=3,bitco=1"

// policyCell is one cell of the policy grid.
type policyCell struct {
	probe string // "shares", "orgs", "cost"
	pol   string // policy.Parse name
	pop   string // population variant ("-" outside the orgs probe)
}

// policyCells enumerates the grid in presentation order.
func policyCells() []policyCell {
	var cells []policyCell
	for _, pol := range []string{"static", "maxmin", "hier"} {
		cells = append(cells, policyCell{"shares", pol, "-"})
	}
	for _, pop := range []string{"base", "crowd"} {
		for _, pol := range []string{"static", PolicyHierSpec} {
			cells = append(cells, policyCell{"orgs", pol, pop})
		}
	}
	for _, pol := range []string{"static", "cost"} {
		cells = append(cells, policyCell{"cost", pol, "-"})
	}
	return cells
}

// PolicyResult is one cell of the policy grid.
type PolicyResult struct {
	Probe  string
	Policy string
	Pop    string

	// WorstEq is the worst tenant's delivered normalized work over the
	// equal split (min/mean) — the worst-case normalized share the
	// shares probe compares across policies.
	WorstEq float64
	// OrgShare is acme's fraction of delivered normalized work (orgs
	// probe; zero elsewhere).
	OrgShare float64
	// CostPerWork is dollars of busy device time per delivered
	// reference-device-second, priced by policy.DefaultPrices (cost
	// probe; zero elsewhere).
	CostPerWork float64
	// WorkPerSec is aggregate normalized work retired per second.
	WorkPerSec float64
	// Utilization is the mean per-node busy fraction of the window.
	Utilization float64
}

// policyPopulation returns the cell's tenant specs.
func policyPopulation(c policyCell) []workload.TenantSpec {
	us := sim.Duration(time.Microsecond)
	sat := func(name, org string, w float64) workload.TenantSpec {
		s := workload.Throttle(200*us, 0)
		s.Name = name
		return workload.TenantSpec{Spec: s, Weight: w, Org: org, Jitter: 0.2}
	}
	switch c.probe {
	case "shares":
		return []workload.TenantSpec{
			sat("heavy", "", 4), sat("light1", "", 1), sat("light2", "", 1),
		}
	case "orgs":
		specs := []workload.TenantSpec{
			sat("acme-a", "acme", 2), sat("acme-b", "acme", 1), sat("bitco-a", "bitco", 1),
		}
		if c.pop == "crowd" {
			for _, n := range []string{"bitco-b", "bitco-c", "bitco-d"} {
				specs = append(specs, sat(n, "bitco", 1))
			}
		}
		return specs
	case "cost":
		// Duty-cycled: each tenant sleeps most of the cycle, so the
		// aggregate demand fits in a fraction of the fleet and the
		// policies disagree about *which* devices to burn.
		var specs []workload.TenantSpec
		for _, n := range []string{"batch1", "batch2", "batch3"} {
			s := workload.Throttle(200*us, 0.8)
			s.Name = n
			specs = append(specs, workload.TenantSpec{Spec: s, Jitter: 0.2})
		}
		return specs
	}
	panic(fmt.Sprintf("exp: unknown policy probe %q", c.probe))
}

// RunPolicyCell runs one population under one allocation policy on the
// shared mixed-class mechanism stack.
func RunPolicyCell(o Options, c policyCell) PolicyResult {
	pol, err := policy.Parse(c.pol)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	eng := sim.NewEngine()
	f, err := fleet.New(eng, fleet.Config{
		Devices:     len(PolicyClasses()),
		Classes:     PolicyClasses(),
		Policy:      fleet.NewFastestFit(),
		Sched:       "dfq",
		DFQ:         TierShareDFQ(),
		RunLimit:    o.RunLimit,
		Seed:        o.Seed,
		AllocPolicy: pol,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	specs := policyPopulation(c)
	for _, ts := range specs {
		f.Launch(ts)
	}
	eng.RunFor(o.Warmup)
	f.ResetStats()
	eng.RunFor(o.Measure)

	res := PolicyResult{Probe: c.probe, Policy: c.pol, Pop: c.pop}
	var total core.Work
	var shares []float64
	var acme float64
	for i, t := range f.Tenants() {
		if t.SetupError() != nil {
			panic(fmt.Sprintf("exp: policy tenant %s setup: %v", t.Spec.Name, t.SetupError()))
		}
		w := t.NormalizedWork()
		total += w
		shares = append(shares, float64(w))
		if specs[i].Org == "acme" {
			acme += float64(w)
		}
	}
	res.WorkPerSec = total.Duration().Seconds() / o.Measure.Seconds()
	res.Utilization = fleetUtilization(f, o.Measure)
	res.WorstEq = worstOverMean(shares)
	if c.probe == "orgs" && total > 0 {
		res.OrgShare = acme / float64(total)
	}
	if c.probe == "cost" {
		res.CostPerWork = costPerWork(f)
	}
	return res
}

// costPerWork prices the window's busy device time with the cost
// policy's price book and divides by the normalized work delivered:
// the dollars one reference-device-second of service actually cost.
func costPerWork(f *fleet.Fleet) float64 {
	prices := policy.DefaultPrices()
	var dollars float64
	var work core.Work
	for _, n := range f.Nodes() {
		p, ok := prices[n.Class.Name]
		if !ok {
			p = n.Speed()
		}
		dollars += n.BusySince().Seconds() * p
		work += n.WorkSince()
	}
	if work <= 0 {
		return 0
	}
	return dollars / work.Duration().Seconds()
}

// PolicyExp sweeps probe x policy (x population), every cell an
// independent job on the worker pool.
func PolicyExp(opts Options) *report.Table {
	cells := policyCells()
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("policy", i,
			fmt.Sprintf("%s probe, %s policy, %s population", c.probe, c.pol, c.pop),
			func(o Options) any { return RunPolicyCell(o, c) })
	}

	t := report.New("Policy: declarative allocation over the tenant x class matrix (mixed k20+consumer+nextgen fleet, one mechanism stack)",
		"probe", "policy", "pop", "worst/eq", "acme share", "$/work", "work/s", "util")
	for _, r := range RunJobs(opts, jobs) {
		res := r.Value.(PolicyResult)
		org, dollars := "-", "-"
		if res.Probe == "orgs" {
			org = report.Pct(res.OrgShare)
		}
		if res.Probe == "cost" {
			dollars = report.F(res.CostPerWork, 2)
		}
		t.AddRow(
			res.Probe,
			res.Policy,
			res.Pop,
			report.F(res.WorstEq, 2),
			org,
			dollars,
			report.F(res.WorkPerSec, 2),
			report.Pct(res.Utilization),
		)
	}
	t.AddNote("every cell is the same mechanism stack (fastest-fit placement, weighted DFQ, round-based allocator); only the declarative policy differs")
	t.AddNote("shares probe: saturating tenants under a 4:1:1 contract — max-min's demand cap and packed placement lift the worst tenant's normalized share (worst/eq) over static's verbatim weights; hier without orgs is the flat fallback")
	t.AddNote("orgs probe: %s — the crowd population adds three bitco tenants; hierarchical shares hold acme's org share where flat static weights dilute it", PolicyHierSpec)
	t.AddNote("cost probe: duty-cycled tenants on a slack fleet; the cost policy steers work to the cheapest price-per-work class, cutting $/work vs static's fastest-first greedy")
	return t
}
