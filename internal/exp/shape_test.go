package exp

// Shape tests: each experiment must reproduce the qualitative result the
// paper reports — who wins, by roughly what factor, where the crossovers
// fall. Absolute values are recorded in EXPERIMENTS.md; these tests pin
// the claims that must not regress.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/neon"
	"repro/internal/workload"
)

func TestAllExperimentsProduceRows(t *testing.T) {
	opts := Quick()
	opts.Warmup = 20 * time.Millisecond
	opts.Measure = 100 * time.Millisecond
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(opts)
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if table.String() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := ByID("fig6"); !ok {
		t.Fatal("fig6 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

// Figure 4 shape: engaged Timeslice hurts small-request apps badly and
// large-request apps barely; both disengaged schedulers stay under ~8%.
func TestFig4Shape(t *testing.T) {
	opts := Quick()
	bitonic, _ := workload.ByName("BitonicSort")
	matmul, _ := workload.ByName("MatrixMulDouble")

	aloneB := MeasureAlone(opts, bitonic)[0]
	aloneM := MeasureAlone(opts, matmul)[0]

	tsB := float64(NewRig(TS, opts, bitonic).Measure()[0]) / float64(aloneB)
	tsM := float64(NewRig(TS, opts, matmul).Measure()[0]) / float64(aloneM)
	if tsB < 1.25 {
		t.Errorf("engaged TS on BitonicSort = %.2f, paper shows ~1.38", tsB)
	}
	if tsM > 1.08 {
		t.Errorf("engaged TS on MatrixMulDouble = %.2f, should be low cost", tsM)
	}
	for _, s := range []Sched{DTS, DFQ} {
		sb := float64(NewRig(s, opts, bitonic).Measure()[0]) / float64(aloneB)
		if sb > 1.08 {
			t.Errorf("%s on BitonicSort = %.2f, want <= ~1.08", s, sb)
		}
	}
}

// Figure 5 shape: engaged overhead decreases with request size; the
// disengaged schedulers are flat and small.
func TestFig5Shape(t *testing.T) {
	opts := Quick()
	slow := func(s Sched, us float64) float64 {
		spec := workload.Throttle(time.Duration(us*float64(time.Microsecond)), 0)
		alone := MeasureAlone(opts, spec)[0]
		return float64(NewRig(s, opts, spec).Measure()[0]) / float64(alone)
	}
	if small, large := slow(TS, 19), slow(TS, 1700); small <= large+0.2 {
		t.Errorf("engaged TS: %.2f at 19us vs %.2f at 1.7ms; overhead must shrink with size", small, large)
	}
	for _, s := range []Sched{DTS, DFQ} {
		if v := slow(s, 19); v > 1.10 {
			t.Errorf("%s at 19us = %.2f, want near 1x", s, v)
		}
	}
}

// Figure 6 shape: direct access starves small-request apps against a
// large Throttle; every fair scheduler holds both near 2x.
func TestFig6Shape(t *testing.T) {
	opts := Quick()
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(1700*time.Microsecond, 0)
	alone := MeasureAlone(opts, dct, thr)

	direct := RunMix(Direct, opts, alone, dct, thr)
	if direct.Slowdowns[0] < 5 {
		t.Errorf("direct DCT slowdown = %.1f, want >> 2 (paper >10x)", direct.Slowdowns[0])
	}
	for _, s := range []Sched{TS, DTS, DFQ} {
		res := RunMix(s, opts, alone, dct, thr)
		for i, sd := range res.Slowdowns {
			if sd < 1.5 || sd > 3.2 {
				t.Errorf("%s app %d slowdown = %.2f, want ~2x", s, i, sd)
			}
		}
	}
}

// The glxgears anomaly: under DFQ with the biased device arbitration,
// glxgears suffers clearly more than its Throttle co-runner.
func TestFig6GlxgearsAnomaly(t *testing.T) {
	opts := Quick()
	gears, _ := workload.ByName("glxgears")
	thr := workload.Throttle(19*time.Microsecond, 0)
	alone := MeasureAlone(opts, gears, thr)
	res := RunMix(DFQ, opts, alone, gears, thr)
	if res.Slowdowns[0] <= res.Slowdowns[1]+0.2 {
		t.Errorf("glxgears %.2f vs throttle %.2f: anomaly absent", res.Slowdowns[0], res.Slowdowns[1])
	}
}

// Figure 7 shape: DFQ's efficiency beats engaged Timeslice's.
func TestFig7Shape(t *testing.T) {
	opts := Quick()
	fft, _ := workload.ByName("FFT")
	thr := workload.Throttle(191*time.Microsecond, 0)
	alone := MeasureAlone(opts, fft, thr)
	effTS := RunMix(TS, opts, alone, fft, thr).Efficiency
	effDFQ := RunMix(DFQ, opts, alone, fft, thr).Efficiency
	if effDFQ <= effTS {
		t.Errorf("DFQ efficiency %.2f <= engaged TS %.2f", effDFQ, effTS)
	}
}

// Figure 8 shape: with four tasks, fair schedulers keep everyone within
// a sane band around 4x while direct access spreads wildly.
func TestFig8Shape(t *testing.T) {
	opts := Quick()
	thr := workload.Throttle(425*time.Microsecond, 0)
	bs, _ := workload.ByName("BinarySearch")
	dct, _ := workload.ByName("DCT")
	fft, _ := workload.ByName("FFT")
	specs := []workload.Spec{thr, bs, dct, fft}
	alone := MeasureAlone(opts, specs...)

	spread := func(s []float64) float64 {
		lo, hi := s[0], s[0]
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi / lo
	}
	direct := RunMix(Direct, opts, alone, specs...)
	dts := RunMix(DTS, opts, alone, specs...)
	if spread(direct.Slowdowns) < 2 {
		t.Errorf("direct spread = %.1f, expected gross unfairness", spread(direct.Slowdowns))
	}
	if spread(dts.Slowdowns) > 1.6 {
		t.Errorf("DTS spread = %.1f, want near-uniform slowdowns", spread(dts.Slowdowns))
	}
	for _, sd := range dts.Slowdowns {
		if sd < 3 || sd > 5.5 {
			t.Errorf("DTS slowdown %.2f outside the ~4x band", sd)
		}
	}
}

// Figures 9/10 shape: with an 80%-idle co-runner, timeslice schedulers
// pin DCT at ~2x and waste the device; DFQ lets DCT reclaim idle time at
// near-direct efficiency.
func TestFig910Shape(t *testing.T) {
	opts := Quick()
	results := RunNonsat(opts, []float64{0.8}, []Sched{Direct, TS, DTS, DFQ})
	byS := map[Sched]NonsatResult{}
	for _, r := range results {
		byS[r.Sched] = r
	}
	if byS[DTS].DCTSlowdown < 1.8 {
		t.Errorf("DTS DCT slowdown = %.2f, want ~2x (non-work-conserving)", byS[DTS].DCTSlowdown)
	}
	if byS[DFQ].DCTSlowdown > 1.6 {
		t.Errorf("DFQ DCT slowdown = %.2f, want well below 2x", byS[DFQ].DCTSlowdown)
	}
	if byS[DFQ].ThrSlowdown > 1.4 {
		t.Errorf("DFQ Throttle slowdown = %.2f, paper: it does not suffer", byS[DFQ].ThrSlowdown)
	}
	lossDFQ := 1 - byS[DFQ].Efficiency/byS[Direct].Efficiency
	lossDTS := 1 - byS[DTS].Efficiency/byS[Direct].Efficiency
	if lossDFQ > 0.2 {
		t.Errorf("DFQ efficiency loss = %.0f%%, paper ~0%%", 100*lossDFQ)
	}
	if lossDTS < lossDFQ {
		t.Errorf("DTS loss %.2f < DFQ loss %.2f; timeslice should waste more", lossDTS, lossDFQ)
	}
}

// Section 3 shape: direct access gains shrink as requests grow.
func TestSec3Shape(t *testing.T) {
	opts := Quick()
	small := throughput(opts, 10*time.Microsecond, false, false) / throughput(opts, 10*time.Microsecond, true, false)
	large := throughput(opts, 100*time.Microsecond, false, false) / throughput(opts, 100*time.Microsecond, true, false)
	if small <= large {
		t.Errorf("gain at 10us (%.2f) should exceed gain at 100us (%.2f)", small, large)
	}
	heavy := throughput(opts, 10*time.Microsecond, false, false) / throughput(opts, 10*time.Microsecond, true, true)
	if heavy < 1.4 {
		t.Errorf("driver-work gain = %.2f, want large (paper 48-170%%)", heavy)
	}
}

// Protection shape: every managed scheduler kills the attacker; direct
// access cannot.
func TestProtectionShape(t *testing.T) {
	opts := Quick()
	table := Protection(opts)
	for _, row := range table.Rows {
		sched, killed := row[0], row[1]
		if sched == "direct" {
			if killed != "false" {
				t.Errorf("direct access somehow killed the attacker")
			}
			continue
		}
		if killed != "true" {
			t.Errorf("%s failed to kill the attacker", sched)
		}
	}
}

// Oracle ablation shape: hardware statistics make the anomaly pairs more
// even than sampled estimates.
func TestAblationStatsShape(t *testing.T) {
	opts := Quick()
	gears, _ := workload.ByName("glxgears")
	thr := workload.Throttle(19*time.Microsecond, 0)
	alone := MeasureAlone(opts, gears, thr)
	dfq := RunMix(DFQ, opts, alone, gears, thr)
	orc := RunMix(Oracle, opts, alone, gears, thr)
	gap := func(r MixResult) float64 {
		hi, lo := r.Slowdowns[0], r.Slowdowns[1]
		if lo > hi {
			hi, lo = lo, hi
		}
		return hi / lo
	}
	if gap(orc) >= gap(dfq) {
		t.Errorf("oracle gap %.2f >= DFQ gap %.2f; statistics should help", gap(orc), gap(dfq))
	}
}

// Determinism: the same options produce byte-identical tables.
func TestExperimentsDeterministic(t *testing.T) {
	opts := Quick()
	opts.Measure = 100 * time.Millisecond
	a := Fig9(opts).String()
	b := Fig9(opts).String()
	if a != b {
		t.Fatalf("fig9 not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// Different seeds still produce the same *shape* (sanity that results do
// not hinge on one lucky seed).
func TestSeedRobustness(t *testing.T) {
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(425*time.Microsecond, 0)
	for _, seed := range []int64{1, 7, 99} {
		opts := Quick()
		opts.Seed = seed
		alone := MeasureAlone(opts, dct, thr)
		res := RunMix(DTS, opts, alone, dct, thr)
		for i, sd := range res.Slowdowns {
			if sd < 1.6 || sd > 2.6 {
				t.Errorf("seed %d app %d slowdown %.2f", seed, i, sd)
			}
		}
	}
}

// The kill row of the protection table names the run-limit mechanism.
func TestProtectionReasonMentionsRunLimit(t *testing.T) {
	opts := Quick()
	table := Protection(opts)
	found := false
	for _, row := range table.Rows {
		if strings.Contains(row[2], "run limit") {
			found = true
		}
	}
	if !found {
		t.Fatal("no kill reason mentions the run limit")
	}
}

// Channel quota table: policy row must deny the hog and admit the victim.
func TestSec63Shape(t *testing.T) {
	opts := Quick()
	table := Sec63DoS(opts)
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	noPolicy, policy := table.Rows[0], table.Rows[1]
	if noPolicy[1] != "48" || noPolicy[3] != "false" {
		t.Errorf("no-policy row = %v; hog should take all 48 contexts", noPolicy)
	}
	if policy[3] != "true" {
		t.Errorf("policy row = %v; victim should be admitted", policy)
	}
	if !strings.Contains(policy[2], neon.ErrChannelQuota.Error()) {
		t.Errorf("policy denial reason = %q", policy[2])
	}
}
