package exp

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/workload"
)

// Table1 reproduces the paper's Table 1: per-application round times and
// mean request sizes, measured standalone under direct device access, one
// job per application.
func Table1(opts Options) *report.Table {
	specs := workload.Table1()
	var jobs []Job
	for i, spec := range specs {
		jobs = append(jobs, NewJob("table1", i, spec.Name, func(o Options) any {
			rig := NewRig(Direct, o, spec)
			round := rig.Measure()[0]
			app := rig.Apps[0]

			reqCell := report.F(float64(app.MeanRequest(gpu.Compute))/float64(time.Microsecond), 0)
			paperReq := report.F(spec.PaperReqUS, 0)
			if spec.PaperReq2US > 0 {
				reqCell += "/" + report.F(float64(app.MeanRequest(gpu.Graphics))/float64(time.Microsecond), 0)
				paperReq += "/" + report.F(spec.PaperReq2US, 0)
			} else if len(spec.Channels) == 1 && spec.Channels[0] == gpu.Graphics {
				reqCell = report.F(float64(app.MeanRequest(gpu.Graphics))/float64(time.Microsecond), 0)
			}
			return []string{spec.Name, spec.Area,
				report.F(float64(round)/float64(time.Microsecond), 0),
				report.F(spec.PaperRoundUS, 0),
				reqCell, paperReq}
		}))
	}
	t := report.New("Table 1: benchmark characteristics (standalone, direct access)",
		"Application", "Area", "us/round", "paper", "us/request", "paper")
	for _, r := range RunJobs(opts, jobs) {
		t.AddRow(r.Value.([]string)...)
	}
	t.AddNote("rounds and request means are measured through the simulated stack; 'paper' columns are Table 1's values")
	return t
}
