package exp

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FleetDeviceCounts is the device-count sweep of the fleet experiment.
var FleetDeviceCounts = []int{2, 4, 8}

// FleetResult is one cell of the fleet grid: a device count, a
// placement policy, and a tenant mix, measured together.
type FleetResult struct {
	Devices int
	Policy  string
	Mix     string
	Tenants int

	// RoundsPerSec is aggregate completed tenant rounds per second —
	// the fleet's useful throughput.
	RoundsPerSec float64
	// Utilization is summed exec-engine busy time over devices × window.
	Utilization float64
	// Jain is Jain's fairness index over saturating tenants' received
	// device time (1.0 = perfectly fair).
	Jain float64
	// WorstShare is the worst saturating tenant's received device time
	// relative to the mean — the per-tenant fairness floor.
	WorstShare float64
	// MigrationsPerKRound counts placements that moved a tenant off its
	// previous device, per thousand rounds.
	MigrationsPerKRound float64
}

// RunFleetCell builds one fleet (its own engine, N per-device stacks),
// runs the tenant population through warmup and measurement, and
// reports the cell's throughput and fairness.
func RunFleetCell(o Options, devices int, policyName, mix string) FleetResult {
	eng := sim.NewEngine()
	policy, err := fleet.NewPolicy(policyName)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	f, err := fleet.New(eng, fleet.Config{
		Devices:  devices,
		Policy:   policy,
		RunLimit: o.RunLimit,
		Seed:     o.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	tenants := workload.FleetPopulation(devices, mix)
	for _, ts := range tenants {
		f.Launch(ts)
	}
	eng.RunFor(o.Warmup)
	f.ResetStats()
	eng.RunFor(o.Measure)

	res := FleetResult{
		Devices: devices,
		Policy:  policy.Name(),
		Mix:     mix,
		Tenants: len(tenants),
	}
	var rounds int64
	for _, t := range f.Tenants() {
		if t.SetupError() != nil {
			panic(fmt.Sprintf("exp: fleet tenant %s setup: %v", t.Spec.Name, t.SetupError()))
		}
		rounds += t.Rounds
	}
	seconds := o.Measure.Seconds()
	res.RoundsPerSec = float64(rounds) / seconds
	res.Utilization = fleetUtilization(f, o.Measure)

	// Fairness over saturating tenants: under fair queueing, competing
	// saturating tenants should receive equal device time regardless of
	// request size — the paper's fairness notion, fleet-wide.
	var shares []float64
	for _, t := range f.Tenants() {
		if t.Spec.SleepRatio > 0 {
			continue
		}
		shares = append(shares, float64(t.ServiceTime()))
	}
	res.Jain = metrics.JainIndex(shares)
	res.WorstShare = worstOverMean(shares)

	if rounds > 0 {
		res.MigrationsPerKRound = 1000 * float64(f.Migrations) / float64(rounds)
	}
	return res
}

// worstOverMean returns min(xs)/mean(xs), or 0 for empty input.
func worstOverMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, sum := xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	return min / mean
}

// FleetExp sweeps device count × placement policy × tenant mix, every
// cell an independent job on the worker pool.
func FleetExp(opts Options) *report.Table {
	type cell struct {
		devs   int
		policy string
		mix    string
	}
	// The class-blind trio: on this experiment's homogeneous fleets the
	// class-aware policies (fastest-fit, class-sticky) degenerate to
	// least-loaded and sticky, so sweeping them here would only
	// duplicate rows — the hetero experiment is where they differ.
	policies := []string{"rr", "least-loaded", "sticky"}
	var cells []cell
	for _, devs := range FleetDeviceCounts {
		for _, policy := range policies {
			for _, mix := range workload.FleetMixes() {
				cells = append(cells, cell{devs, policy, mix})
			}
		}
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("fleet", i,
			fmt.Sprintf("%d devices, %s placement, %s mix", c.devs, c.policy, c.mix),
			func(o Options) any {
				return RunFleetCell(o, c.devs, c.policy, c.mix)
			})
	}

	t := report.New("Fleet: device count x placement policy (per-device DFQ, fleet-wide virtual time)",
		"devices", "policy", "mix", "tenants", "rounds/s", "util", "Jain", "worst/mean", "migr/kround")
	for _, r := range RunJobs(opts, jobs) {
		res := r.Value.(FleetResult)
		t.AddRow(
			fmt.Sprintf("%d", res.Devices),
			res.Policy,
			res.Mix,
			fmt.Sprintf("%d", res.Tenants),
			report.F(res.RoundsPerSec, 0),
			report.Pct(res.Utilization),
			report.F(res.Jain, 3),
			report.F(res.WorstShare, 2),
			report.F(res.MigrationsPerKRound, 1),
		)
	}
	t.AddNote("locality-sticky keeps tenants on their warm device (MQFQ-Sticky), avoiding working-set reconstruction")
	t.AddNote("round-robin migrates nearly every round and pays the cold-start capacity tax for it")
	t.AddNote("fairness (Jain, worst/mean) is computed over saturating tenants' received device time, fleet-wide")
	return t
}
