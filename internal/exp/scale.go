package exp

// The scale experiment: indexed fair queueing at production tenant
// counts. The paper's DFQ keeps per-tenant virtual-time state for a
// handful of applications; the ROADMAP's north star is millions of
// users, which the simulated GPU stack cannot host directly (a device
// exposes 48 channels). So this experiment drives the scheduling
// *state machinery* itself — a core.DFQLedger per device reconciling
// through a sharded fleet.Board — with a synthetic open-loop engagement
// cycle: each cycle a bounded working set of tenants is activated,
// charged its estimated share of the engagement window, folded into the
// fleet-wide system virtual time, and denied when its fleet lead
// reaches the free-run horizon, exactly the per-cycle bookkeeping of
// core.DisengagedFairQueueing. Tenant count sweeps 10²→10⁵ while the
// per-cycle working set stays fixed, so any O(tenants) step in the
// ledger or the board would surface as allocations (and wall time)
// growing with the population; the table pins allocs/request flat and
// the weighted lead bound holding at every scale. Wall-clock scaling is
// benchmarked separately (BenchmarkDFQCycleTenants*, BENCH_7.json) —
// the golden table only carries deterministic columns.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/workload"
	"time"
)

// DefaultScaleTenants is the tenant-count sweep: two decades per step
// from the paper's regime to the fleet-scale one.
func DefaultScaleTenants() []int { return []int{100, 1_000, 10_000, 100_000} }

// ScaleTenants resolves the sweep for these Options: the -tenants
// override replaces it with exactly the given counts.
func (o Options) ScaleTenants() []int {
	if len(o.Tenants) > 0 {
		return o.Tenants
	}
	return DefaultScaleTenants()
}

// ScaleScheds returns the harness's scheduler sweep: round-robin
// timeslice tokens against the indexed DFQ ledger.
func ScaleScheds() []Sched { return []Sched{TS, DFQ} }

// The synthetic engagement cycle's fixed parameters.
const (
	// scaleDevices is the fleet width: two ledgers reconciling through
	// one board, enough for multi-device leads without dominating cost.
	scaleDevices = 2
	// scaleWorkingSet bounds the tenants engaged per device cycle — the
	// channel-pool reality that only a bounded set runs at once no
	// matter how many tenants exist.
	scaleWorkingSet = 256
	// scaleActiveCycles is how many cycles a picked tenant stays active
	// (backlogged) before idling out and forfeiting credit.
	scaleActiveCycles = 4
	// scaleChurnEvery and scaleChurnCount recycle tenant slots
	// (remove + re-register) to exercise generation-counted handles.
	scaleChurnEvery = 50
	scaleChurnCount = 8
	// scaleWindow and scaleFreeRun are the engagement window and
	// disengaged free run of the synthetic cycle (the paper's 30ms
	// window, FreeRunMultiplier 5).
	scaleWindow  = 30 * time.Millisecond
	scaleFreeRun = 5 * scaleWindow
)

// ScaleResult is one cell of the scale grid.
type ScaleResult struct {
	Tenants int
	Sched   Sched

	// Requests is the number of engagement grants charged; Cycles the
	// per-device cycles run.
	Requests int64
	Cycles   int
	// ReqPerSec is requests per simulated second (cycles x window).
	ReqPerSec float64
	// AllocsPerReq is deterministic structural allocations (ledger
	// registrations plus slab/heap growth) per request.
	AllocsPerReq float64
	// BoundRatio is the worst observed fleet-wide lead over the weighted
	// lead bound (freeRun + devices x window / minWeight); InBound
	// reports ratio <= 1. DFQ only.
	BoundRatio float64
	InBound    bool
}

// RunScaleCell runs the synthetic engagement harness for one tenant
// count under one scheduler. Every draw comes from the job's forked
// seed, so cells are deterministic at any pool width.
func RunScaleCell(o Options, tenants int, sched Sched) ScaleResult {
	rng := sim.NewRNG(o.Seed)
	res := ScaleResult{Tenants: tenants, Sched: sched}

	// One pass visits every tenant once in expectation; the measurement
	// window scales passes so full runs sweep the population harder.
	// Requests scale with tenants x passes while registrations scale
	// with tenants, which is what keeps allocs/request flat across the
	// sweep — the table's sub-linearity signal.
	passes := int(o.Measure / (200 * time.Millisecond))
	if passes < 1 {
		passes = 1
	}
	if passes > 10 {
		passes = 10
	}
	working := scaleWorkingSet
	if working > tenants {
		working = tenants
	}
	cycles := (tenants + working - 1) / working * passes

	weight := func(i int) float64 { return float64(int(1) << (i % 3)) } // {1,2,4}
	est := func(i int) sim.Duration { return sim.Duration(1+i%7) * 100 * time.Microsecond }

	switch sched {
	case TS:
		// Timeslice tokens: every working-set member gets an equal slice
		// of the window. No virtual time, no cross-device fairness — the
		// baseline whose bookkeeping is trivially O(working set).
		tokens := make([]core.Work, tenants)
		allocs := int64(1) // the token slab
		slice := core.WorkFor(scaleWindow, 1) / core.Work(working)
		for c := 0; c < cycles; c++ {
			for d := 0; d < scaleDevices; d++ {
				for k := 0; k < working; k++ {
					tokens[rng.Intn(tenants)] += slice
					res.Requests++
				}
			}
		}
		res.Cycles = cycles
		res.AllocsPerReq = float64(allocs+int64(tenants)) / float64(res.Requests)
	case DFQ:
		res = runScaleDFQ(res, rng, tenants, working, cycles, weight, est)
	default:
		panic(fmt.Sprintf("exp: scale does not model scheduler %q", sched))
	}
	res.ReqPerSec = float64(res.Requests) /
		(sim.Duration(res.Cycles) * scaleWindow).Seconds()
	return res
}

// runScaleDFQ is the DFQ arm: per-device ledgers, a sharded board, and
// the paper's charge/advance/deny cycle over a rolling active set.
func runScaleDFQ(res ScaleResult, rng *sim.RNG, tenants, working, cycles int,
	weight func(int) float64, est func(int) sim.Duration) ScaleResult {
	board := fleet.NewBoardWith(0, 1)
	board.Grow(tenants)
	names := make([]string, tenants)
	pids := make([]core.PrincipalID, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		// Interning upfront instead of on first charge is equivalent: a
		// principal stays heap-idle until first activated, and every idle
		// read/charge/activation clamps its virtual time up to the system
		// virtual time — the same value late registration would start at.
		pids[i] = board.Principal(names[i])
	}

	type device struct {
		name       string
		ledger     core.DFQLedger
		ids        []core.FlowID
		lastPicked []int32 // cycle a tenant was last engaged on this device
		expire     [][]int // ring of past working sets, for idling out
	}
	devs := make([]*device, scaleDevices)
	for d := range devs {
		dev := &device{
			name:       fmt.Sprintf("dev%d", d),
			ledger:     core.NewDFQLedger(core.DefaultDFQLedger),
			ids:        make([]core.FlowID, tenants),
			lastPicked: make([]int32, tenants),
			expire:     make([][]int, scaleActiveCycles),
		}
		dev.ledger.Grow(tenants)
		for i := range dev.ids {
			dev.ids[i] = dev.ledger.Add()
			dev.lastPicked[i] = -1
		}
		devs[d] = dev
	}

	windowW := core.WorkFor(scaleWindow, 1)
	freeRunW := core.WorkFor(scaleFreeRun, 1)
	// The weighted fleet lead bound: once a tenant's lead crosses the
	// free-run horizon it is denied on every device, so the overshoot is
	// at most one more cycle of charges from each device, each at most
	// window/weight (and the minimum weight here is 1).
	bound := freeRunW + core.Work(scaleDevices)*windowW

	denied := make([]bool, tenants)
	picks := make([]int, 0, working)
	var maxLead core.Work

	// The reusable episode batch (one entry per distinct tenant touched
	// this episode) replaces the old per-episode charge/active maps —
	// the board exchange allocates nothing in steady state. Entry lookup
	// uses an episode-stamped index instead of a map clear.
	batch := make([]core.EpisodeEntry, 0, 2*working)
	batchTenant := make([]int, 0, 2*working)
	entryAt := make([]int32, tenants)
	stamp := make([]int64, tenants)
	episode := int64(0)
	addEntry := func(i int) int32 {
		if stamp[i] == episode {
			return entryAt[i]
		}
		stamp[i] = episode
		j := int32(len(batch))
		entryAt[i] = j
		batch = append(batch, core.EpisodeEntry{Principal: pids[i]})
		batchTenant = append(batchTenant, i)
		return j
	}

	for c := 0; c < cycles; c++ {
		for _, dev := range devs {
			// Engage this cycle's working set (duplicates collapse; the
			// ledger's SetActive is a no-op on an already-active flow).
			picks = picks[:0]
			var estSum sim.Duration
			for k := 0; k < working; k++ {
				i := rng.Intn(tenants)
				picks = append(picks, i)
				dev.ledger.SetActive(dev.ids[i], true)
				dev.lastPicked[i] = int32(c)
				if !denied[i] {
					estSum += est(i)
				}
			}

			// Charge granted tenants their estimated share of the window,
			// weighted — the arithmetic of maintainVirtualTime.
			episode++
			batch = batch[:0]
			batchTenant = batchTenant[:0]
			for _, i := range picks {
				j := addEntry(i)
				batch[j].Marked = true
				batch[j].Active = true
				if denied[i] || estSum == 0 {
					continue
				}
				delta := core.PerWeight(
					core.WorkFor(sim.Duration(float64(scaleWindow)*float64(est(i))/float64(estSum)), 1),
					weight(i))
				dev.ledger.Charge(dev.ids[i], delta)
				batch[j].Charge += delta
				res.Requests++
			}

			// Tenants unseen for scaleActiveCycles cycles idle out and
			// forfeit unused credit, locally and on the board.
			slot := c % scaleActiveCycles
			for _, i := range dev.expire[slot] {
				if dev.lastPicked[i] <= int32(c-scaleActiveCycles) {
					dev.ledger.SetActive(dev.ids[i], false)
					if j := addEntry(i); !batch[j].Active {
						batch[j].Marked = true
					}
				}
			}
			dev.expire[slot] = append(dev.expire[slot][:0], picks...)

			dev.ledger.AdvanceSysVT()
			board.ReconcileEpisodeBatch(dev.name, batch)
			for j := range batch {
				lead := batch[j].Lead
				if lead > maxLead {
					maxLead = lead
				}
				denied[batchTenant[j]] = lead >= freeRunW
			}
		}

		// Churn: retire and re-register a few tenants so slot recycling
		// and stale-handle rejection stay on the measured path.
		if (c+1)%scaleChurnEvery == 0 {
			for k := 0; k < scaleChurnCount; k++ {
				i := rng.Intn(tenants)
				for _, dev := range devs {
					dev.ledger.Remove(dev.ids[i])
					dev.ids[i] = dev.ledger.Add()
					dev.lastPicked[i] = -1
				}
				denied[i] = false
			}
		}
	}

	var allocs int64
	for _, dev := range devs {
		allocs += dev.ledger.StructuralAllocs()
	}
	res.Cycles = cycles
	if res.Requests > 0 {
		res.AllocsPerReq = float64(allocs) / float64(res.Requests)
	}
	res.BoundRatio = float64(maxLead) / float64(bound)
	res.InBound = maxLead <= bound
	return res
}

// Full-stack storm parameters: one device hosting the whole logical
// population through the kernel's virtual-context multiplexer.
const (
	// scaleFullContexts is the device's hardware-context pool — the cap
	// the logical population overshoots by orders of magnitude, which is
	// exactly what the mux exists to absorb.
	scaleFullContexts = 48
	// scaleFullSize is each storm request's service time: small enough
	// that tens of thousands of requests fit one device's window.
	scaleFullSize = 5 * time.Microsecond
	// scaleFullWaves is how many staggered arrival waves the run spreads
	// over warmup+measure. Every wave past a tenant's first arrives long
	// after its context was evicted for other tenants, so each pays the
	// paper's context-switch cost to reattach — the reattach column.
	scaleFullWaves = 3
)

// DefaultScaleFullTenants is the full-stack storm sweep: both counts
// far past the 48-hardware-context cap, the larger at the 10^4 mark the
// synthetic harness could only reach as bookkeeping.
func DefaultScaleFullTenants() []int { return []int{1_000, 10_000} }

// ScaleFullResult is one full-stack storm cell: a real end-to-end run —
// open-loop arrivals through admission-free traffic dispatch, userlib
// clients on logical (virtual-context) handles, the kernel scheduler,
// and the simulated device — not the synthetic ledger harness.
type ScaleFullResult struct {
	Tenants int
	Sched   Sched

	// Tasks is the live kernel-task population at the end of the run —
	// one logical context per tenant, all simultaneously open.
	Tasks int
	// HWContexts is the peak number of hardware contexts ever attached;
	// it must never exceed the device's 48-context pool.
	HWContexts int
	// Reattaches counts LRU re-binds of a previously evicted logical
	// context (each charged the context-switch cost); Evictions counts
	// the graceful detaches that made room.
	Reattaches int64
	Evictions  int64
	// Completed counts requests served within the measurement window;
	// Cycles is the DFQ engagement-cycle count (0 under timeslice).
	Completed int64
	Cycles    int64
	// GoodputPerSec is Completed over the measurement window.
	GoodputPerSec float64
}

// RunScaleFullCell runs one full-stack storm: `tenants` open-loop
// streams, each a live kernel task on a single 48-context device, every
// request submitted through a virtual-context handle. Admission control
// stays off — the point is hosting the whole population as tasks, not
// shedding it at the front door — and the staggered arrival comb keeps
// the offered load uniform instead of a time-zero spike.
func RunScaleFullCell(o Options, tenants int, sched Sched) ScaleFullResult {
	eng := sim.NewEngine()
	total := o.Warmup + o.Measure
	gap := total / scaleFullWaves
	streams := make([]traffic.Stream, tenants)
	for i := range streams {
		// Phases spread evenly over one gap, so the last stream's first
		// arrival lands at `gap` and every stream fires scaleFullWaves
		// times (give or take one) before the run ends.
		phase := gap * sim.Duration(i+1) / sim.Duration(tenants)
		streams[i] = traffic.Stream{
			Tenant:  workload.OpenLoopTenant(fmt.Sprintf("t%d", i), scaleFullSize, 0),
			Arrival: &traffic.Staggered{Phase: phase, Gap: gap},
		}
	}
	srv, err := traffic.New(eng, traffic.Config{
		Fleet: fleet.Config{
			Devices: 1,
			GPU:     gpu.Config{MaxContexts: scaleFullContexts},
			Sched:   string(sched),
			// Short sampling runs: with 48 attached tasks an engagement
			// episode at the paper's 5 ms per-task cap could not finish
			// inside a quick measurement window.
			DFQ: core.DFQConfig{
				SamplePeriod:   500 * time.Microsecond,
				SampleRequests: 4,
			},
			Seed: o.Seed,
		},
		Streams: streams,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	eng.RunFor(o.Warmup)
	srv.ResetStats()
	eng.RunFor(o.Measure)
	if err := srv.SetupError(); err != nil {
		panic(fmt.Sprintf("exp: scale full-stack setup: %v", err))
	}

	node := srv.Fleet().Nodes()[0]
	mux := node.Kernel.MuxStatus()
	res := ScaleFullResult{
		Tenants:    tenants,
		Sched:      sched,
		Tasks:      len(node.Kernel.Tasks()),
		HWContexts: mux.MaxAttached,
		Reattaches: mux.Reattaches,
		Evictions:  mux.Evictions,
	}
	for i := range streams {
		res.Completed += srv.Stats(i).Completed
	}
	res.GoodputPerSec = float64(res.Completed) / o.Measure.Seconds()
	if d := node.DFQ(); d != nil {
		res.Cycles = d.Cycles
	}
	// The acceptance invariants, not just table data: the population is
	// really hosted, and the hardware pool was never overcommitted.
	if res.Tasks < tenants {
		panic(fmt.Sprintf("exp: scale full-stack: only %d of %d tenants became live tasks",
			res.Tasks, tenants))
	}
	if res.HWContexts > scaleFullContexts {
		panic(fmt.Sprintf("exp: scale full-stack: %d hardware contexts attached, device cap %d",
			res.HWContexts, scaleFullContexts))
	}
	return res
}

// The deep rows (Options.DeepScale / cmd/neonsim -deep): the ROADMAP's
// 10^6-tenant ledger population through the synthetic harness, and a
// 10^5-tenant full-stack storm — another decade past each sweep's top.
// They append after the standard grid, so the standard rows (and their
// forked seeds) are byte-identical whether the deep rows run or not;
// testdata/scale_deep.golden pins the extended table.
const (
	// scaleDeepTenants is the deep synthetic-ledger population.
	scaleDeepTenants = 1_000_000
	// scaleDeepFullTenants is the deep full-stack storm population.
	scaleDeepFullTenants = 100_000
)

// ScaleExp sweeps tenant count x scheduler, every cell an independent
// job on the worker pool.
func ScaleExp(opts Options) *report.Table {
	type cell struct {
		tenants int
		sched   Sched
	}
	var cells []cell
	for _, n := range opts.ScaleTenants() {
		for _, s := range ScaleScheds() {
			cells = append(cells, cell{n, s})
		}
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("scale", i,
			fmt.Sprintf("%d tenants, %s", c.tenants, c.sched),
			func(o Options) any { return RunScaleCell(o, c.tenants, c.sched) })
	}
	for _, n := range DefaultScaleFullTenants() {
		for _, s := range ScaleScheds() {
			n, s := n, s
			jobs = append(jobs, NewJob("scale", len(jobs),
				fmt.Sprintf("%d tenants, %s+mux full stack", n, s),
				func(o Options) any { return RunScaleFullCell(o, n, s) }))
		}
	}
	if opts.DeepScale {
		jobs = append(jobs, NewJob("scale", len(jobs),
			fmt.Sprintf("%d tenants, %s (deep)", scaleDeepTenants, DFQ),
			func(o Options) any { return RunScaleCell(o, scaleDeepTenants, DFQ) }))
		jobs = append(jobs, NewJob("scale", len(jobs),
			fmt.Sprintf("%d tenants, %s+mux full stack (deep)", scaleDeepFullTenants, DFQ),
			func(o Options) any { return RunScaleFullCell(o, scaleDeepFullTenants, DFQ) }))
	}

	t := report.New("Scale: indexed fair queueing + virtual-context mux, 10^2..10^5 tenants",
		"tenants", "sched", "cycles", "requests", "req/s(sim)", "allocs/req", "bound", "tasks", "hwctx", "reattach")
	for _, r := range RunJobs(opts, jobs) {
		switch res := r.Value.(type) {
		case ScaleResult:
			bound := "-"
			if res.Sched == DFQ {
				verdict := "ok"
				if !res.InBound {
					verdict = "VIOL"
				}
				bound = fmt.Sprintf("%s %.2f", verdict, res.BoundRatio)
			}
			t.AddRow(
				fmt.Sprintf("%d", res.Tenants),
				string(res.Sched),
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%d", res.Requests),
				report.F(res.ReqPerSec, 0),
				report.F(res.AllocsPerReq, 3),
				bound,
				"-", "-", "-",
			)
		case ScaleFullResult:
			cyc := "-"
			if res.Sched == DFQ {
				cyc = fmt.Sprintf("%d", res.Cycles)
			}
			t.AddRow(
				fmt.Sprintf("%d", res.Tenants),
				string(res.Sched)+"+mux",
				cyc,
				fmt.Sprintf("%d", res.Completed),
				report.F(res.GoodputPerSec, 0),
				"-",
				"-",
				fmt.Sprintf("%d", res.Tasks),
				fmt.Sprintf("%d", res.HWContexts),
				fmt.Sprintf("%d", res.Reattaches),
			)
		default:
			panic(fmt.Sprintf("exp: scale row of unknown type %T", r.Value))
		}
	}
	t.AddNote("each cycle engages a %d-tenant working set per device; idle tenants must cost nothing, so allocs/req staying flat across 10^2..10^5 tenants is the sub-linear claim", scaleWorkingSet)
	t.AddNote("allocs/req counts deterministic structural allocations (flow registrations + slab/heap growth), not runtime allocations — those are gated in BENCH_8.json (BenchmarkDFQCycleTenants*, BenchmarkBoardReconcile)")
	t.AddNote("bound is worst fleet-wide lead over the weighted bound freeRun + devices x window/minWeight; ts has no virtual-time ledger to bound")
	t.AddNote("+mux rows are real end-to-end storms, not the synthetic harness: every tenant is a live kernel task on one %d-context device, multiplexed by the kernel's virtual-context table (tasks = logical contexts hosted, hwctx = peak hardware contexts attached, reattach = LRU re-binds each paying the context-switch cost)", scaleFullContexts)
	if opts.DeepScale {
		t.AddNote("deep rows (-deep): the 10^6-tenant synthetic ledger and the 10^5-tenant full-stack storm, appended after the standard grid so the standard rows stay byte-identical to the quick golden")
	}
	return t
}
