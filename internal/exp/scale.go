package exp

// The scale experiment: indexed fair queueing at production tenant
// counts. The paper's DFQ keeps per-tenant virtual-time state for a
// handful of applications; the ROADMAP's north star is millions of
// users, which the simulated GPU stack cannot host directly (a device
// exposes 48 channels). So this experiment drives the scheduling
// *state machinery* itself — a core.DFQLedger per device reconciling
// through a sharded fleet.Board — with a synthetic open-loop engagement
// cycle: each cycle a bounded working set of tenants is activated,
// charged its estimated share of the engagement window, folded into the
// fleet-wide system virtual time, and denied when its fleet lead
// reaches the free-run horizon, exactly the per-cycle bookkeeping of
// core.DisengagedFairQueueing. Tenant count sweeps 10²→10⁵ while the
// per-cycle working set stays fixed, so any O(tenants) step in the
// ledger or the board would surface as allocations (and wall time)
// growing with the population; the table pins allocs/request flat and
// the weighted lead bound holding at every scale. Wall-clock scaling is
// benchmarked separately (BenchmarkDFQCycleTenants*, BENCH_7.json) —
// the golden table only carries deterministic columns.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/sim"
	"time"
)

// DefaultScaleTenants is the tenant-count sweep: two decades per step
// from the paper's regime to the fleet-scale one.
func DefaultScaleTenants() []int { return []int{100, 1_000, 10_000, 100_000} }

// ScaleTenants resolves the sweep for these Options: the -tenants
// override replaces it with exactly the given counts.
func (o Options) ScaleTenants() []int {
	if len(o.Tenants) > 0 {
		return o.Tenants
	}
	return DefaultScaleTenants()
}

// ScaleScheds returns the harness's scheduler sweep: round-robin
// timeslice tokens against the indexed DFQ ledger.
func ScaleScheds() []Sched { return []Sched{TS, DFQ} }

// The synthetic engagement cycle's fixed parameters.
const (
	// scaleDevices is the fleet width: two ledgers reconciling through
	// one board, enough for multi-device leads without dominating cost.
	scaleDevices = 2
	// scaleWorkingSet bounds the tenants engaged per device cycle — the
	// channel-pool reality that only a bounded set runs at once no
	// matter how many tenants exist.
	scaleWorkingSet = 256
	// scaleActiveCycles is how many cycles a picked tenant stays active
	// (backlogged) before idling out and forfeiting credit.
	scaleActiveCycles = 4
	// scaleChurnEvery and scaleChurnCount recycle tenant slots
	// (remove + re-register) to exercise generation-counted handles.
	scaleChurnEvery = 50
	scaleChurnCount = 8
	// scaleWindow and scaleFreeRun are the engagement window and
	// disengaged free run of the synthetic cycle (the paper's 30ms
	// window, FreeRunMultiplier 5).
	scaleWindow  = 30 * time.Millisecond
	scaleFreeRun = 5 * scaleWindow
)

// ScaleResult is one cell of the scale grid.
type ScaleResult struct {
	Tenants int
	Sched   Sched

	// Requests is the number of engagement grants charged; Cycles the
	// per-device cycles run.
	Requests int64
	Cycles   int
	// ReqPerSec is requests per simulated second (cycles x window).
	ReqPerSec float64
	// AllocsPerReq is deterministic structural allocations (ledger
	// registrations plus slab/heap growth) per request.
	AllocsPerReq float64
	// BoundRatio is the worst observed fleet-wide lead over the weighted
	// lead bound (freeRun + devices x window / minWeight); InBound
	// reports ratio <= 1. DFQ only.
	BoundRatio float64
	InBound    bool
}

// RunScaleCell runs the synthetic engagement harness for one tenant
// count under one scheduler. Every draw comes from the job's forked
// seed, so cells are deterministic at any pool width.
func RunScaleCell(o Options, tenants int, sched Sched) ScaleResult {
	rng := sim.NewRNG(o.Seed)
	res := ScaleResult{Tenants: tenants, Sched: sched}

	// One pass visits every tenant once in expectation; the measurement
	// window scales passes so full runs sweep the population harder.
	// Requests scale with tenants x passes while registrations scale
	// with tenants, which is what keeps allocs/request flat across the
	// sweep — the table's sub-linearity signal.
	passes := int(o.Measure / (200 * time.Millisecond))
	if passes < 1 {
		passes = 1
	}
	if passes > 10 {
		passes = 10
	}
	working := scaleWorkingSet
	if working > tenants {
		working = tenants
	}
	cycles := (tenants + working - 1) / working * passes

	weight := func(i int) float64 { return float64(int(1) << (i % 3)) } // {1,2,4}
	est := func(i int) sim.Duration { return sim.Duration(1+i%7) * 100 * time.Microsecond }

	switch sched {
	case TS:
		// Timeslice tokens: every working-set member gets an equal slice
		// of the window. No virtual time, no cross-device fairness — the
		// baseline whose bookkeeping is trivially O(working set).
		tokens := make([]core.Work, tenants)
		allocs := int64(1) // the token slab
		slice := core.WorkFor(scaleWindow, 1) / core.Work(working)
		for c := 0; c < cycles; c++ {
			for d := 0; d < scaleDevices; d++ {
				for k := 0; k < working; k++ {
					tokens[rng.Intn(tenants)] += slice
					res.Requests++
				}
			}
		}
		res.Cycles = cycles
		res.AllocsPerReq = float64(allocs+int64(tenants)) / float64(res.Requests)
	case DFQ:
		res = runScaleDFQ(res, rng, tenants, working, cycles, weight, est)
	default:
		panic(fmt.Sprintf("exp: scale does not model scheduler %q", sched))
	}
	res.ReqPerSec = float64(res.Requests) /
		(sim.Duration(res.Cycles) * scaleWindow).Seconds()
	return res
}

// runScaleDFQ is the DFQ arm: per-device ledgers, a sharded board, and
// the paper's charge/advance/deny cycle over a rolling active set.
func runScaleDFQ(res ScaleResult, rng *sim.RNG, tenants, working, cycles int,
	weight func(int) float64, est func(int) sim.Duration) ScaleResult {
	board := fleet.NewBoardWith(0, 1)
	board.Grow(tenants)
	names := make([]string, tenants)
	nameIdx := make(map[string]int, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		nameIdx[names[i]] = i
	}

	type device struct {
		name       string
		ledger     core.DFQLedger
		ids        []core.FlowID
		lastPicked []int32 // cycle a tenant was last engaged on this device
		expire     [][]int // ring of past working sets, for idling out
	}
	devs := make([]*device, scaleDevices)
	for d := range devs {
		dev := &device{
			name:       fmt.Sprintf("dev%d", d),
			ledger:     core.NewDFQLedger(core.DefaultDFQLedger),
			ids:        make([]core.FlowID, tenants),
			lastPicked: make([]int32, tenants),
			expire:     make([][]int, scaleActiveCycles),
		}
		dev.ledger.Grow(tenants)
		for i := range dev.ids {
			dev.ids[i] = dev.ledger.Add()
			dev.lastPicked[i] = -1
		}
		devs[d] = dev
	}

	windowW := core.WorkFor(scaleWindow, 1)
	freeRunW := core.WorkFor(scaleFreeRun, 1)
	// The weighted fleet lead bound: once a tenant's lead crosses the
	// free-run horizon it is denied on every device, so the overshoot is
	// at most one more cycle of charges from each device, each at most
	// window/weight (and the minimum weight here is 1).
	bound := freeRunW + core.Work(scaleDevices)*windowW

	denied := make([]bool, tenants)
	picks := make([]int, 0, working)
	var maxLead core.Work

	for c := 0; c < cycles; c++ {
		for _, dev := range devs {
			// Engage this cycle's working set (duplicates collapse; the
			// ledger's SetActive is a no-op on an already-active flow).
			picks = picks[:0]
			var estSum sim.Duration
			for k := 0; k < working; k++ {
				i := rng.Intn(tenants)
				picks = append(picks, i)
				dev.ledger.SetActive(dev.ids[i], true)
				dev.lastPicked[i] = int32(c)
				if !denied[i] {
					estSum += est(i)
				}
			}

			// Charge granted tenants their estimated share of the window,
			// weighted — the arithmetic of maintainVirtualTime.
			charges := make(map[string]core.Work, len(picks))
			activeNames := make(map[string]bool, len(picks))
			for _, i := range picks {
				activeNames[names[i]] = true
				if denied[i] || estSum == 0 {
					continue
				}
				delta := core.PerWeight(
					core.WorkFor(sim.Duration(float64(scaleWindow)*float64(est(i))/float64(estSum)), 1),
					weight(i))
				dev.ledger.Charge(dev.ids[i], delta)
				charges[names[i]] += delta
				res.Requests++
			}

			// Tenants unseen for scaleActiveCycles cycles idle out and
			// forfeit unused credit, locally and on the board.
			slot := c % scaleActiveCycles
			for _, i := range dev.expire[slot] {
				if dev.lastPicked[i] <= int32(c-scaleActiveCycles) {
					dev.ledger.SetActive(dev.ids[i], false)
					if !activeNames[names[i]] {
						activeNames[names[i]] = false
					}
				}
			}
			dev.expire[slot] = append(dev.expire[slot][:0], picks...)

			dev.ledger.AdvanceSysVT()
			leads := board.ReconcileEpisode(dev.name, charges, activeNames)
			for name, lead := range leads {
				if lead > maxLead {
					maxLead = lead
				}
				denied[nameIdx[name]] = lead >= freeRunW
			}
		}

		// Churn: retire and re-register a few tenants so slot recycling
		// and stale-handle rejection stay on the measured path.
		if (c+1)%scaleChurnEvery == 0 {
			for k := 0; k < scaleChurnCount; k++ {
				i := rng.Intn(tenants)
				for _, dev := range devs {
					dev.ledger.Remove(dev.ids[i])
					dev.ids[i] = dev.ledger.Add()
					dev.lastPicked[i] = -1
				}
				denied[i] = false
			}
		}
	}

	var allocs int64
	for _, dev := range devs {
		allocs += dev.ledger.StructuralAllocs()
	}
	res.Cycles = cycles
	if res.Requests > 0 {
		res.AllocsPerReq = float64(allocs) / float64(res.Requests)
	}
	res.BoundRatio = float64(maxLead) / float64(bound)
	res.InBound = maxLead <= bound
	return res
}

// ScaleExp sweeps tenant count x scheduler, every cell an independent
// job on the worker pool.
func ScaleExp(opts Options) *report.Table {
	type cell struct {
		tenants int
		sched   Sched
	}
	var cells []cell
	for _, n := range opts.ScaleTenants() {
		for _, s := range ScaleScheds() {
			cells = append(cells, cell{n, s})
		}
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("scale", i,
			fmt.Sprintf("%d tenants, %s", c.tenants, c.sched),
			func(o Options) any { return RunScaleCell(o, c.tenants, c.sched) })
	}

	t := report.New("Scale: indexed fair queueing, 10^2..10^5 tenants (synthetic engagement cycles, 2 devices)",
		"tenants", "sched", "cycles", "requests", "req/s(sim)", "allocs/req", "bound")
	for _, r := range RunJobs(opts, jobs) {
		res := r.Value.(ScaleResult)
		bound := "-"
		if res.Sched == DFQ {
			verdict := "ok"
			if !res.InBound {
				verdict = "VIOL"
			}
			bound = fmt.Sprintf("%s %.2f", verdict, res.BoundRatio)
		}
		t.AddRow(
			fmt.Sprintf("%d", res.Tenants),
			string(res.Sched),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Requests),
			report.F(res.ReqPerSec, 0),
			report.F(res.AllocsPerReq, 3),
			bound,
		)
	}
	t.AddNote("each cycle engages a %d-tenant working set per device; idle tenants must cost nothing, so allocs/req staying flat across 10^2..10^5 tenants is the sub-linear claim", scaleWorkingSet)
	t.AddNote("allocs/req counts deterministic structural allocations (flow registrations + slab/heap growth), not runtime allocations — those are gated in BENCH_7.json (BenchmarkDFQCycleTenants*)")
	t.AddNote("bound is worst fleet-wide lead over the weighted bound freeRun + devices x window/minWeight; ts has no virtual-time ledger to bound")
	return t
}
