package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationStats isolates the cost of software usage estimation (the
// Section 5.3 limitation and Section 6.1 proposal): the DFQ anomaly pairs
// run under sampled-estimate DFQ and under the oracle variant that reads
// vendor-exported per-context busy time. Each (pair, scheduler) cell is a
// job; baselines are measured once per distinct spec.
func AblationStats(opts Options) *report.Table {
	pairs := []struct {
		app string
		usz float64
	}{
		{"glxgears", 19},
		{"oclParticles", 425},
		{"DCT", 425},
	}
	type cell struct {
		spec, thr workload.Spec
	}
	var (
		cells []cell
		specs []workload.Spec
	)
	for _, pr := range pairs {
		spec, _ := workload.ByName(pr.app)
		thr := workload.Throttle(time.Duration(pr.usz*float64(time.Microsecond)), 0)
		cells = append(cells, cell{spec, thr})
		specs = append(specs, spec, thr)
	}
	alone := MeasureBaselines("ablation-stats", opts, specs...)

	scheds := []Sched{DFQ, Oracle}
	var jobs []Job
	for i, c := range cells {
		for j, s := range scheds {
			jobs = append(jobs, NewJob("ablation-stats", i*len(scheds)+j,
				fmt.Sprintf("%s vs Thr(%.0fus) under %s", pairs[i].app, pairs[i].usz, s),
				func(o Options) any {
					return RunMix(s, o, alone.For(c.spec, c.thr), c.spec, c.thr)
				}))
		}
	}
	res := RunJobs(opts, jobs)

	t := report.New("Ablation: sampled estimates (prototype DFQ) vs hardware statistics (oracle)",
		"Pair", "DFQ app/thr", "Oracle app/thr", "DFQ gap", "Oracle gap")
	gap := func(r MixResult) string {
		hi, lo := r.Slowdowns[0], r.Slowdowns[1]
		if lo > hi {
			hi, lo = lo, hi
		}
		if lo <= 0 {
			return "-"
		}
		return report.F(hi/lo, 2)
	}
	for i, pr := range pairs {
		dfq := res[i*len(scheds)].Value.(MixResult)
		orc := res[i*len(scheds)+1].Value.(MixResult)
		t.AddRow(fmt.Sprintf("%s vs Thr(%.0fus)", pr.app, pr.usz),
			fmt.Sprintf("%.2f/%.2f", dfq.Slowdowns[0], dfq.Slowdowns[1]),
			fmt.Sprintf("%.2f/%.2f", orc.Slowdowns[0], orc.Slowdowns[1]),
			gap(dfq), gap(orc))
	}
	t.AddNote("gap = ratio of the worse co-runner's slowdown to the better's; 1.0 is perfectly even")
	t.AddNote("hardware statistics shrink the unfairness caused by the round-robin estimation assumption")
	return t
}

// ablationVariant is one configuration point of the parameter sweep.
type ablationVariant struct {
	label string
	costs cost.Model
	mk    func() neon.Scheduler
}

// ablationVariants enumerates the design parameters DESIGN.md calls out:
// polling granularity (drain idleness), timeslice length, and the DFQ
// free-run multiplier.
func ablationVariants() []ablationVariant {
	var out []ablationVariant
	for _, poll := range []sim.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		costs := cost.Default()
		costs.PollInterval = poll
		out = append(out, ablationVariant{
			label: fmt.Sprintf("DTS poll=%v", poll),
			costs: costs,
			mk:    func() neon.Scheduler { return core.NewDisengagedTimeslice(core.DefaultSlice) },
		})
	}
	for _, slice := range []sim.Duration{10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond} {
		out = append(out, ablationVariant{
			label: fmt.Sprintf("DTS slice=%v", slice),
			costs: cost.Default(),
			mk:    func() neon.Scheduler { return core.NewDisengagedTimeslice(slice) },
		})
	}
	for _, mult := range []int{2, 5, 10} {
		out = append(out, ablationVariant{
			label: fmt.Sprintf("DFQ freerun=%dx", mult),
			costs: cost.Default(),
			mk: func() neon.Scheduler {
				cfg := core.DefaultDFQConfig()
				cfg.FreeRunMultiplier = mult
				return core.NewDisengagedFairQueueing(cfg)
			},
		})
	}
	return out
}

// AblationParams sweeps the parameter variants, reporting standalone
// overhead and pair fairness. Each variant's standalone and pair rigs run
// as separate jobs against the shared default-cost baselines.
func AblationParams(opts Options) *report.Table {
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(425*time.Microsecond, 0)
	alone := MeasureBaselines("ablation-params", opts, dct, thr)
	aloneDCT := alone.Of(dct)
	alonePair := alone.For(dct, thr)

	variants := ablationVariants()
	var jobs []Job
	for i, v := range variants {
		jobs = append(jobs, NewJob("ablation-params", 2*i, v.label+" solo",
			func(o Options) any { return ablationRun(o, v.costs, v.mk, dct) }))
		jobs = append(jobs, NewJob("ablation-params", 2*i+1, v.label+" pair",
			func(o Options) any { return ablationRun(o, v.costs, v.mk, dct, thr) }))
	}
	res := RunJobs(opts, jobs)

	t := report.New("Ablation: configuration parameters",
		"Variant", "standalone DCT overhead", "pair DCT/Thr(425us)")
	for i, v := range variants {
		solo := res[2*i].Value.([]sim.Duration)[0]
		pair := res[2*i+1].Value.([]sim.Duration)
		sd := float64(solo) / float64(aloneDCT)
		cell := fmt.Sprintf("%.2f/%.2f",
			float64(pair[0])/float64(alonePair[0]),
			float64(pair[1])/float64(alonePair[1]))
		t.AddRow(v.label, report.Pct(sd-1), cell)
	}
	t.AddNote("finer polling shrinks drain idleness; longer slices amortize token passing; longer free runs amortize engagement")
	return t
}

// ablationRun builds one custom rig with explicit costs and scheduler
// constructor, measures it, and returns each app's average round time.
func ablationRun(opts Options, costs cost.Model, mk func() neon.Scheduler, specs ...workload.Spec) []sim.Duration {
	eng := sim.NewEngine()
	cfg := gpu.DefaultConfig()
	cfg.GraphicsPenalty = opts.GraphicsPenalty
	cfg.Costs = costs
	dev := gpu.New(eng, cfg)
	k := neon.NewKernel(dev, mk())
	k.RequestRunLimit = opts.RunLimit
	var apps []*workload.App
	rng := sim.NewRNG(opts.Seed)
	for i, s := range specs {
		apps = append(apps, workload.Launch(k, s, rng.ForkNamed("app", i)))
	}
	eng.RunFor(opts.Warmup)
	for _, a := range apps {
		a.ResetStats()
	}
	eng.RunFor(opts.Measure)
	out := make([]sim.Duration, len(apps))
	for i, a := range apps {
		out[i] = a.AvgRound()
	}
	return out
}
