package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationStats isolates the cost of software usage estimation (the
// Section 5.3 limitation and Section 6.1 proposal): the DFQ anomaly pairs
// run under sampled-estimate DFQ and under the oracle variant that reads
// vendor-exported per-context busy time.
func AblationStats(opts Options) *report.Table {
	t := report.New("Ablation: sampled estimates (prototype DFQ) vs hardware statistics (oracle)",
		"Pair", "DFQ app/thr", "Oracle app/thr", "DFQ gap", "Oracle gap")
	pairs := []struct {
		app string
		usz float64
	}{
		{"glxgears", 19},
		{"oclParticles", 425},
		{"DCT", 425},
	}
	for _, pr := range pairs {
		spec, _ := workload.ByName(pr.app)
		thr := workload.Throttle(time.Duration(pr.usz*float64(time.Microsecond)), 0)
		alone := MeasureAlone(opts, spec, thr)
		dfq := RunMix(DFQ, opts, alone, spec, thr)
		orc := RunMix(Oracle, opts, alone, spec, thr)
		gap := func(r MixResult) string {
			hi, lo := r.Slowdowns[0], r.Slowdowns[1]
			if lo > hi {
				hi, lo = lo, hi
			}
			if lo <= 0 {
				return "-"
			}
			return report.F(hi/lo, 2)
		}
		t.AddRow(fmt.Sprintf("%s vs Thr(%.0fus)", pr.app, pr.usz),
			fmt.Sprintf("%.2f/%.2f", dfq.Slowdowns[0], dfq.Slowdowns[1]),
			fmt.Sprintf("%.2f/%.2f", orc.Slowdowns[0], orc.Slowdowns[1]),
			gap(dfq), gap(orc))
	}
	t.AddNote("gap = ratio of the worse co-runner's slowdown to the better's; 1.0 is perfectly even")
	t.AddNote("hardware statistics shrink the unfairness caused by the round-robin estimation assumption")
	return t
}

// AblationParams sweeps the design parameters DESIGN.md calls out:
// polling granularity (drain idleness), timeslice length, and the DFQ
// free-run multiplier, reporting standalone overhead and pair fairness.
func AblationParams(opts Options) *report.Table {
	t := report.New("Ablation: configuration parameters",
		"Variant", "standalone DCT overhead", "pair DCT/Thr(425us)")
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(425*time.Microsecond, 0)
	aloneDCT := MeasureAlone(opts, dct)[0]
	alonePair := MeasureAlone(opts, dct, thr)

	// Polling granularity sweep (Disengaged Timeslice).
	for _, poll := range []sim.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		costs := cost.Default()
		costs.PollInterval = poll
		sd, pair := ablationRun(opts, costs, func() neon.Scheduler {
			return core.NewDisengagedTimeslice(core.DefaultSlice)
		}, dct, thr, aloneDCT, alonePair)
		t.AddRow(fmt.Sprintf("DTS poll=%v", poll), report.Pct(sd-1), pair)
	}
	// Timeslice length sweep.
	for _, slice := range []sim.Duration{10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond} {
		sd, pair := ablationRun(opts, cost.Default(), func() neon.Scheduler {
			return core.NewDisengagedTimeslice(slice)
		}, dct, thr, aloneDCT, alonePair)
		t.AddRow(fmt.Sprintf("DTS slice=%v", slice), report.Pct(sd-1), pair)
	}
	// DFQ free-run multiplier sweep.
	for _, mult := range []int{2, 5, 10} {
		cfg := core.DefaultDFQConfig()
		cfg.FreeRunMultiplier = mult
		sd, pair := ablationRun(opts, cost.Default(), func() neon.Scheduler {
			return core.NewDisengagedFairQueueing(cfg)
		}, dct, thr, aloneDCT, alonePair)
		t.AddRow(fmt.Sprintf("DFQ freerun=%dx", mult), report.Pct(sd-1), pair)
	}
	t.AddNote("finer polling shrinks drain idleness; longer slices amortize token passing; longer free runs amortize engagement")
	return t
}

// ablationRun builds two custom rigs (standalone and pair) with explicit
// costs and scheduler constructor, returning standalone slowdown and the
// pair slowdown cell.
func ablationRun(opts Options, costs cost.Model, mk func() neon.Scheduler,
	dct, thr workload.Spec, aloneDCT sim.Duration, alonePair []sim.Duration) (float64, string) {

	run := func(specs ...workload.Spec) []sim.Duration {
		eng := sim.NewEngine()
		cfg := gpu.DefaultConfig()
		cfg.GraphicsPenalty = opts.GraphicsPenalty
		cfg.Costs = costs
		dev := gpu.New(eng, cfg)
		k := neon.NewKernel(dev, mk())
		k.RequestRunLimit = opts.RunLimit
		var apps []*workload.App
		rng := sim.NewRNG(opts.Seed)
		for i, s := range specs {
			apps = append(apps, workload.Launch(k, s, rng.Fork(int64(i))))
		}
		eng.RunFor(opts.Warmup)
		for _, a := range apps {
			a.ResetStats()
		}
		eng.RunFor(opts.Measure)
		out := make([]sim.Duration, len(apps))
		for i, a := range apps {
			out[i] = a.AvgRound()
		}
		return out
	}

	solo := run(dct)[0]
	pair := run(dct, thr)
	sd := float64(solo) / float64(aloneDCT)
	cell := fmt.Sprintf("%.2f/%.2f",
		float64(pair[0])/float64(alonePair[0]),
		float64(pair[1])/float64(alonePair[1]))
	return sd, cell
}
