package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScaleDeepGolden pins the scale experiment's -deep table: the
// standard grid plus the 10^6-tenant synthetic ledger row and the
// 10^5-tenant full-stack storm row. Regenerate deliberately with:
//
//	go test ./internal/exp -run TestScaleDeepGolden -update -timeout 30m
//
// The standard rows carry exactly the values of quick.golden's scale
// section (deep jobs append after them, so their forked seeds are
// unchanged; only column padding widens for the deep entries); a
// regeneration's diff should only ever touch the deep rows and the
// -deep note.
func TestScaleDeepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 10^6-tenant ledger and 10^5-tenant storm (minutes)")
	}
	o := Quick()
	o.DeepScale = true
	got := ScaleExp(o).String()
	path := filepath.Join("testdata", "scale_deep.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (run with -update to create it)", path, err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output drifted from %s at line %d:\n  want: %q\n  got:  %q\n"+
				"If the change is intended, regenerate with -update and review the diff.",
				path, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("output drifted from %s: length %d lines vs golden %d lines. "+
		"If the change is intended, regenerate with -update and review the diff.",
		path, len(gotLines), len(wantLines))
}
