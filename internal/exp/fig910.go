package exp

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/workload"
)

// fig9Ratios are the Throttle off-period ratios of Figures 9 and 10.
var fig9Ratios = []float64{0, 0.2, 0.5, 0.8}

// NonsatResult is one nonsaturating scenario outcome.
type NonsatResult struct {
	SleepRatio  float64
	Sched       Sched
	DCTSlowdown float64
	ThrSlowdown float64
	Efficiency  float64
}

// RunNonsat executes the Section 5.4 scenarios: DCT against a Throttle
// that sleeps the given fraction of each cycle. Each (ratio, scheduler)
// cell runs as its own job; DCT's baseline is shared across the grid.
func RunNonsat(opts Options, ratios []float64, scheds []Sched) []NonsatResult {
	dct, _ := workload.ByName("DCT")
	type cell struct {
		thr   workload.Spec
		ratio float64
		s     Sched
	}
	var (
		cells []cell
		specs = []workload.Spec{dct}
	)
	for _, ratio := range ratios {
		thr := workload.Throttle(425*time.Microsecond, ratio)
		specs = append(specs, thr)
		for _, s := range scheds {
			cells = append(cells, cell{thr: thr, ratio: ratio, s: s})
		}
	}
	alone := MeasureBaselines("nonsat", opts, specs...)

	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("nonsat", i,
			fmt.Sprintf("DCT vs Throttle(off=%.0f%%) under %s", c.ratio*100, c.s),
			func(o Options) any {
				return RunMix(c.s, o, alone.For(dct, c.thr), dct, c.thr)
			})
	}
	out := make([]NonsatResult, len(cells))
	for i, r := range RunJobs(opts, jobs) {
		res := r.Value.(MixResult)
		out[i] = NonsatResult{
			SleepRatio: cells[i].ratio, Sched: cells[i].s,
			DCTSlowdown: res.Slowdowns[0], ThrSlowdown: res.Slowdowns[1],
			Efficiency: res.Efficiency,
		}
	}
	return out
}

// Fig9 reproduces Figure 9: fairness for DCT vs a nonsaturating Throttle.
func Fig9(opts Options) *report.Table {
	results := RunNonsat(opts, fig9Ratios, AllScheds())
	t := report.New("Figure 9: nonsaturating workloads — fairness (DCT vs Throttle(425us) with off periods)",
		"Off ratio", "direct", "Timeslice", "Disengaged TS", "Disengaged FQ")
	byRatio := map[float64]map[Sched]NonsatResult{}
	for _, r := range results {
		if byRatio[r.SleepRatio] == nil {
			byRatio[r.SleepRatio] = map[Sched]NonsatResult{}
		}
		byRatio[r.SleepRatio][r.Sched] = r
	}
	for _, ratio := range fig9Ratios {
		row := []string{fmt.Sprintf("%.0f%%", ratio*100)}
		for _, s := range AllScheds() {
			r := byRatio[ratio][s]
			row = append(row, fmt.Sprintf("%.2f/%.2f", r.DCTSlowdown, r.ThrSlowdown))
		}
		t.AddRow(row...)
	}
	t.AddNote("cells are DCT/Throttle slowdowns; under Disengaged FQ the Throttle does not suffer and DCT benefits from its idleness")
	return t
}

// Fig10 reproduces Figure 10: efficiency for the same scenarios, plus the
// loss relative to direct access the paper quotes.
func Fig10(opts Options) *report.Table {
	results := RunNonsat(opts, fig9Ratios, AllScheds())
	t := report.New("Figure 10: nonsaturating workloads — efficiency",
		"Off ratio", "direct", "Timeslice", "Disengaged TS", "Disengaged FQ", "TS loss", "DTS loss", "DFQ loss")
	byRatio := map[float64]map[Sched]NonsatResult{}
	for _, r := range results {
		if byRatio[r.SleepRatio] == nil {
			byRatio[r.SleepRatio] = map[Sched]NonsatResult{}
		}
		byRatio[r.SleepRatio][r.Sched] = r
	}
	for _, ratio := range fig9Ratios {
		m := byRatio[ratio]
		row := []string{fmt.Sprintf("%.0f%%", ratio*100)}
		for _, s := range AllScheds() {
			row = append(row, report.F(m[s].Efficiency, 2))
		}
		base := m[Direct].Efficiency
		for _, s := range []Sched{TS, DTS, DFQ} {
			loss := 0.0
			if base > 0 {
				loss = 1 - m[s].Efficiency/base
			}
			row = append(row, report.Pct(loss))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper at 80%% off: losses vs direct are 36%% (Timeslice), 34%% (Disengaged TS), ~0%% (Disengaged FQ)")
	return t
}
