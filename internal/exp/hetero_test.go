package exp

import (
	"testing"
)

// TestHeteroSerialParallelIdentical: the hetero table must be
// byte-identical at any worker-pool width.
func TestHeteroSerialParallelIdentical(t *testing.T) {
	serial := Quick()
	serial.Parallel = 1
	parallel := Quick()
	parallel.Parallel = 4
	a := HeteroExp(serial).String()
	b := HeteroExp(parallel).String()
	if a != b {
		t.Fatalf("hetero output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestHeteroShape pins the experiment's qualitative claims at quick
// scale: normalized accounting plus class-aware placement holds every
// tenant's normalized service within the single-device fairness bound
// on a mixed fleet, while the raw-device-time ablation leaves
// slow-device tenants outside it — and the distortion worsens with the
// class spread.
func TestHeteroShape(t *testing.T) {
	opts := Quick()
	mix := HeteroMix{"k20+consumer", []string{"k20", "consumer"}}
	wide := HeteroMix{"k20+consumer+nextgen", []string{"k20", "consumer", "nextgen"}}

	for _, place := range []string{"fastest-fit", "class-sticky"} {
		norm := RunHeteroCell(opts, mix, "norm", place)
		raw := RunHeteroCell(opts, mix, "raw", place)
		if !norm.InBound {
			t.Errorf("%s/norm: worst/mean %.2f outside the %.2f fairness bound",
				place, norm.WorstShare, HeteroFairBound)
		}
		if raw.InBound {
			t.Errorf("%s/raw: worst/mean %.2f inside the bound; raw charges should starve slow-device tenants",
				place, raw.WorstShare)
		}
		if norm.WorstShare <= raw.WorstShare {
			t.Errorf("%s: normalization did not improve the worst share: norm %.2f vs raw %.2f",
				place, norm.WorstShare, raw.WorstShare)
		}
	}

	// The wider the class spread, the harsher raw accounting treats the
	// slowest tenants.
	rawPair := RunHeteroCell(opts, mix, "raw", "fastest-fit")
	rawWide := RunHeteroCell(opts, wide, "raw", "fastest-fit")
	if rawWide.WorstShare >= rawPair.WorstShare {
		t.Errorf("three-class raw worst share %.2f not below two-class %.2f",
			rawWide.WorstShare, rawPair.WorstShare)
	}

	// Class-aware placement must beat class-blind sticky on normalized
	// fairness under normalized accounting: sticky pins tenants to their
	// first device, so shares split by class speed.
	sticky := RunHeteroCell(opts, mix, "norm", "sticky")
	ff := RunHeteroCell(opts, mix, "norm", "fastest-fit")
	if ff.Jain <= sticky.Jain {
		t.Errorf("fastest-fit Jain %.3f not above class-blind sticky %.3f", ff.Jain, sticky.Jain)
	}

	// Sanity on the normalized-throughput unit: a k20+consumer pair can
	// retire at most 1.5 reference-device-seconds per second.
	for _, res := range []HeteroResult{sticky, ff} {
		if res.WorkPerSec <= 0 || res.WorkPerSec > 1.5 {
			t.Errorf("%s work/s = %.2f, want in (0, 1.5]", res.Place, res.WorkPerSec)
		}
	}
}

// TestHeteroClassesKnob: Options.Classes must collapse the mix sweep to
// the custom composition (the cmd/neonsim -classes flag).
func TestHeteroClassesKnob(t *testing.T) {
	o := Quick()
	o.Classes = []string{"k20", "nextgen"}
	mixes := o.HeteroMixes()
	if len(mixes) != 1 || mixes[0].Name != "k20+nextgen" {
		t.Fatalf("HeteroMixes with override = %+v, want single k20+nextgen", mixes)
	}
	tbl := HeteroExp(o)
	// 1 mix x 2 accountings x 3 placements.
	if got, want := len(tbl.Rows), 6; got != want {
		t.Fatalf("with -classes: %d rows, want %d", got, want)
	}
	for _, row := range tbl.Rows {
		if row[0] != "k20+nextgen" {
			t.Fatalf("unexpected mix column %q", row[0])
		}
	}
	if len(Quick().HeteroMixes()) != len(DefaultHeteroMixes()) {
		t.Fatal("default mix sweep lost")
	}
}
