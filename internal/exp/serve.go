package exp

// The serve experiment: open-loop traffic against the fleet — the
// regime the ROADMAP's "millions of users" north star actually lives
// in. Closed-loop co-runners (the paper's evaluation) slow their
// submission rate when the system slows down; open-loop users do not,
// so only this experiment can show tail-latency percentiles, overload
// behavior past load factor 1.0, and what admission control buys.

import (
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// DefaultServeLoads is the serve experiment's load-factor sweep:
// comfortable, near-saturation, just past, and deep overload.
var DefaultServeLoads = []float64{0.6, 0.9, 1.1, 1.4}

// ServeDevices is the fleet size every serve cell runs on.
const ServeDevices = 2

// ServeAdmitDepth is the admission controller's queue-depth bound per
// device: ~48 mean-sized requests of backlog (roughly 15 ms) before the
// front door sheds.
const ServeAdmitDepth = 48

// ServeLoads resolves the load sweep for these Options.
func (o Options) ServeLoads() []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	return DefaultServeLoads
}

// ServeSchedNames lists the per-device scheduler policies the serve
// grid compares: engaged timeslice, token-passing disengaged timeslice,
// and disengaged fair queueing.
func ServeSchedNames() []string { return []string{"ts", "dts", "dfq"} }

// ServePlaceNames lists the placement policies the serve grid compares.
func ServePlaceNames() []string { return []string{"rr", "sticky"} }

// ServePopulation returns the serve tenant mix for a fleet of the given
// size at the given load factor. Rates are calibrated so the aggregate
// offered device time equals load x devices:
//
//   - two Poisson "user" aggregates (250 µs requests, 35% of load),
//   - one diurnally modulated "web" stream (200 µs, 15%),
//   - one deterministic "victim" probe (80 µs, 5%) — the stream whose
//     p99 the fair schedulers must protect,
//   - one MMPP "adversary" (500 µs, 45%): silent between bursts, ~4x
//     its mean rate during them, so each burst alone exceeds fleet
//     capacity even when the long-run load factor is below 1.
func ServePopulation(devices int, load float64) []traffic.Stream {
	const us = time.Microsecond
	budget := load * float64(devices) // offered device-seconds per second
	rate := func(weight float64, size sim.Duration) float64 {
		return budget * weight / size.Seconds()
	}
	return []traffic.Stream{
		{Tenant: workload.OpenLoopTenant("user-a", 250*us, 500*us),
			Arrival: traffic.Poisson{Rate: rate(0.175, 250*us)}},
		{Tenant: workload.OpenLoopTenant("user-b", 250*us, 500*us),
			Arrival: traffic.Poisson{Rate: rate(0.175, 250*us)}},
		{Tenant: workload.OpenLoopTenant("web", 200*us, 400*us),
			Arrival: traffic.Diurnal{Base: rate(0.15, 200*us), Amplitude: 0.8, Period: 100 * time.Millisecond}},
		{Tenant: workload.OpenLoopTenant("victim", 80*us, 150*us),
			Arrival: traffic.Deterministic{Rate: rate(0.05, 80*us)}},
		{Tenant: workload.OpenLoopTenant("adversary", 500*us, 800*us),
			Arrival: traffic.NewMMPP(0, 4*rate(0.45, 500*us), 30*time.Millisecond, 10*time.Millisecond)},
	}
}

// ServeResult is one cell of the serve grid.
type ServeResult struct {
	Load      float64
	Sched     string
	Place     string
	Admission bool

	// P50/P95/P99 are sojourn-time percentiles over every stream's
	// completed requests; VictimP99 is the deterministic probe's tail.
	P50, P95, P99 time.Duration
	VictimP99     time.Duration
	// GoodputPerSec counts completed requests per second, fleet-wide.
	GoodputPerSec float64
	// ShedRate is the front door's shed fraction of all arrivals.
	ShedRate float64
	// QueueDepth is the fleet-wide backlog at the end of the window —
	// bounded by admission, unbounded growth without it.
	QueueDepth int
	// Utilization is summed device busy time over devices x window.
	Utilization float64
}

// ServeFleetSize resolves the serve fleet's device count for these
// Options: one device per -classes entry when a mix is given (so the
// fleet is exactly the requested composition, never a truncation of
// it), ServeDevices otherwise.
func (o Options) ServeFleetSize() int {
	if len(o.Classes) > 0 {
		return len(o.Classes)
	}
	return ServeDevices
}

// RunServeCell serves the open-loop population for one (load,
// scheduler, placement, admission) point and measures it.
func RunServeCell(o Options, load float64, sched, place string, admit bool) ServeResult {
	eng := sim.NewEngine()
	var policy fleet.Policy
	switch place {
	case "sticky":
		// Request-level placement queues far deeper than round-level: a
		// tenant's warm device is worth staying on until its backlog
		// reaches the admission controller's per-device bound.
		policy = fleet.NewLocalitySticky(ServeAdmitDepth)
	default:
		p, err := fleet.NewPolicy(place)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		policy = p
	}
	devices := o.ServeFleetSize()
	depth := 0
	if admit {
		depth = ServeAdmitDepth * devices
	}
	streams := ServePopulation(devices, load)
	srv, err := traffic.New(eng, traffic.Config{
		Fleet: fleet.Config{
			Devices:  devices,
			Classes:  o.Classes,
			Policy:   policy,
			Sched:    sched,
			RunLimit: o.RunLimit,
			Seed:     o.Seed,
		},
		AdmitDepth: depth,
		Streams:    streams,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	eng.RunFor(o.Warmup)
	srv.ResetStats()
	eng.RunFor(o.Measure)
	if err := srv.SetupError(); err != nil {
		panic(fmt.Sprintf("exp: serve stream setup: %v", err))
	}

	res := ServeResult{Load: load, Sched: sched, Place: place, Admission: admit}
	var all metrics.Digest
	var arrivals, shed, completed int64
	for i, s := range streams {
		st := srv.Stats(i)
		all.Merge(&st.Latency)
		arrivals += st.Arrivals
		shed += st.Shed
		completed += st.Completed
		if s.Tenant.Name == "victim" {
			res.VictimP99 = st.Latency.Quantile(0.99)
		}
	}
	res.P50 = all.Quantile(0.50)
	res.P95 = all.Quantile(0.95)
	res.P99 = all.Quantile(0.99)
	res.GoodputPerSec = float64(completed) / o.Measure.Seconds()
	if arrivals > 0 {
		res.ShedRate = float64(shed) / float64(arrivals)
	}
	res.QueueDepth = srv.Fleet().QueueDepth()
	res.Utilization = fleetUtilization(srv.Fleet(), o.Measure)
	return res
}

// fleetUtilization is the mean per-node busy fraction of the window —
// the shared utilization column of the fleet, serve, and hetero tables.
func fleetUtilization(f *fleet.Fleet, window sim.Duration) float64 {
	util := 0.0
	for _, n := range f.Nodes() {
		util += n.Utilization(window)
	}
	return util / float64(len(f.Nodes()))
}

// ServeExp sweeps load factor x scheduler x placement with admission
// on, plus one admission-off row per scheduler at the deepest overload
// point, every cell an independent job on the worker pool.
func ServeExp(opts Options) *report.Table {
	type cell struct {
		load  float64
		sched string
		place string
		admit bool
	}
	var cells []cell
	loads := opts.ServeLoads()
	for _, load := range loads {
		for _, sched := range ServeSchedNames() {
			for _, place := range ServePlaceNames() {
				cells = append(cells, cell{load, sched, place, true})
			}
		}
	}
	worst := loads[0]
	for _, l := range loads[1:] {
		if l > worst {
			worst = l
		}
	}
	for _, sched := range ServeSchedNames() {
		cells = append(cells, cell{worst, sched, "sticky", false})
	}

	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("serve", i,
			fmt.Sprintf("load %.2f, %s, %s, admit=%v", c.load, c.sched, c.place, c.admit),
			func(o Options) any {
				return RunServeCell(o, c.load, c.sched, c.place, c.admit)
			})
	}

	t := report.New(fmt.Sprintf("Serve: open-loop traffic, load factor x scheduler x placement (%d devices)",
		opts.ServeFleetSize()),
		"load", "sched", "place", "adm", "p50", "p95", "p99", "victim p99", "goodput/s", "shed", "qdepth", "util")
	for _, r := range RunJobs(opts, jobs) {
		res := r.Value.(ServeResult)
		adm := "on"
		shed := report.Pct(res.ShedRate)
		if !res.Admission {
			// A disabled controller makes no decisions (and counts none),
			// so its shed rate is not a measured zero — mark it absent
			// rather than printing a 0.0% indistinguishable from an
			// enabled controller that never shed.
			adm = "off"
			shed = "-"
		}
		t.AddRow(
			report.F(res.Load, 2),
			res.Sched,
			res.Place,
			adm,
			report.MS(res.P50),
			report.MS(res.P95),
			report.MS(res.P99),
			report.MS(res.VictimP99),
			report.F(res.GoodputPerSec, 0),
			shed,
			fmt.Sprintf("%d", res.QueueDepth),
			report.Pct(res.Utilization),
		)
	}
	t.AddNote("open-loop arrivals: sources never slow down, so load > 1.0 is sustained overload, not a transient")
	t.AddNote("population: 2 Poisson user aggregates, 1 diurnal web stream, 1 deterministic victim probe, 1 MMPP burst adversary")
	t.AddNote("victim p99 under the adversary's bursts is the protection headline: fair queueing holds it while timeslicing trades it for slice latency")
	t.AddNote("adm=off rows: admission disabled (no shed decisions counted; shed shown as -), so the backlog (qdepth) grows without bound under overload")
	return t
}
