package exp

// The parallel harness: every experiment driver enumerates its scenario
// grid as Jobs, and RunJobs executes them on a bounded worker pool. Each
// job builds its own sim.Engine and receives a deterministically forked
// RNG seed keyed by (experiment ID, scenario index), so the assembled
// tables are byte-identical at any parallelism — including -parallel 1.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Job is one independently runnable scenario of an experiment's grid.
type Job struct {
	// Exp is the experiment (or sub-stage) ID; with Index it keys the
	// scenario's forked RNG stream.
	Exp string
	// Index is the scenario's position in enumeration order. Results are
	// returned in this order regardless of completion order.
	Index int
	// Label names the scenario for progress output and debugging.
	Label string
	// Run builds the scenario's own stack and returns its measurement.
	// The Options it receives carry the scenario's forked seed.
	Run func(Options) any
}

// Result pairs a job with its outcome and wall-clock cost.
type Result struct {
	Job   Job
	Value any
	Wall  time.Duration
}

// NewJob returns a Job for the given experiment, index, and label.
func NewJob(exp string, index int, label string, run func(Options) any) Job {
	return Job{Exp: exp, Index: index, Label: label, Run: run}
}

// RunJobs executes the jobs on a bounded pool of opts.Parallel workers
// (runtime.NumCPU when zero) and returns results in enumeration order.
// Each job's Options get Seed = sim.StreamSeed(opts.Seed, job.Exp,
// job.Index), so outputs depend only on scenario identity, never on
// worker interleaving. A panic inside a job is re-raised on the caller's
// goroutine — at every pool width — annotated with the job's identity
// and the panicking goroutine's stack.
func RunJobs(opts Options, jobs []Job) []Result {
	workers := opts.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	run := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				panic(fmt.Sprintf("exp: job %s[%d] %q: %v\n%s",
					jobs[i].Exp, jobs[i].Index, jobs[i].Label, p, debug.Stack()))
			}
		}()
		j := jobs[i]
		o := opts
		o.Seed = sim.StreamSeed(opts.Seed, j.Exp, j.Index)
		start := time.Now()
		results[i] = Result{Job: j, Value: j.Run(o), Wall: time.Since(start)}
	}
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
		recordJobs(results)
		return results
	}
	var (
		next     int64 = -1
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicked.CompareAndSwap(nil, p)
						}
					}()
					run(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	recordJobs(results)
	return results
}

// Durations unwraps results whose jobs returned a sim.Duration.
func Durations(results []Result) []sim.Duration {
	out := make([]sim.Duration, len(results))
	for i, r := range results {
		out[i] = r.Value.(sim.Duration)
	}
	return out
}

// Workers resolves the effective pool width for these Options.
func (o Options) Workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.NumCPU()
}

// specKey identifies a spec for baseline caching: Table 1 applications by
// name, parameterized Throttles by their knobs as well.
func specKey(s workload.Spec) string {
	return fmt.Sprintf("%s|%v|%v|%.3f", s.Name, s.CPU, s.GPUTime(), s.SleepRatio)
}

// Baselines is a cache of standalone direct-access round times, the
// denominators of every slowdown the paper reports.
type Baselines struct {
	m map[string]sim.Duration
}

// MeasureBaselines measures each distinct spec standalone exactly once,
// as parallel jobs under the "<exp>:alone" stream, and returns the cache.
// Drivers that previously called MeasureAlone per grid cell share one
// measurement per spec instead.
func MeasureBaselines(exp string, opts Options, specs ...workload.Spec) *Baselines {
	var (
		jobs []Job
		keys []string
		seen = map[string]bool{}
	)
	for _, s := range specs {
		k := specKey(s)
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		jobs = append(jobs, NewJob(exp+":alone", len(jobs), s.Name, func(o Options) any {
			return NewRig(Direct, o, s).Measure()[0]
		}))
	}
	b := &Baselines{m: make(map[string]sim.Duration, len(jobs))}
	for i, r := range RunJobs(opts, jobs) {
		b.m[keys[i]] = r.Value.(sim.Duration)
	}
	return b
}

// Of returns the cached standalone round time for the spec.
func (b *Baselines) Of(s workload.Spec) sim.Duration {
	d, ok := b.m[specKey(s)]
	if !ok {
		panic(fmt.Sprintf("exp: no baseline measured for %s", s.Name))
	}
	return d
}

// For returns the cached baselines for the specs, in order — the same
// slice MeasureAlone would have produced.
func (b *Baselines) For(specs ...workload.Spec) []sim.Duration {
	out := make([]sim.Duration, len(specs))
	for i, s := range specs {
		out[i] = b.Of(s)
	}
	return out
}

// poolStats accumulates scenario counts for the currently running
// experiment; cmd/neonsim resets it per experiment to report throughput.
var poolStats struct {
	jobs   atomic.Int64
	wallNS atomic.Int64
}

func recordJobs(results []Result) {
	poolStats.jobs.Add(int64(len(results)))
	var wall time.Duration
	for _, r := range results {
		wall += r.Wall
	}
	poolStats.wallNS.Add(int64(wall))
}

// ResetStats clears the per-experiment scenario counters.
func ResetStats() {
	poolStats.jobs.Store(0)
	poolStats.wallNS.Store(0)
}

// Stats returns the scenarios executed and their summed per-job wall
// time since the last ResetStats. Summed job time divided by elapsed
// wall time approximates the achieved parallel speedup.
func Stats() (jobs int, jobWall time.Duration) {
	return int(poolStats.jobs.Load()), time.Duration(poolStats.wallNS.Load())
}
