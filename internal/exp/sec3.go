package exp

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/userlib"
)

// sec3Sizes are the equal-sized request sweeps of the Section 3 study.
var sec3Sizes = []float64{10, 20, 40, 60, 100}

// Sec3Throughput reproduces the Section 3 motivation measurement: the
// throughput gain of direct device access over a stack that traps to the
// kernel on every request, for equal-sized requests of 10-100us, both
// with a minimal trap and with nontrivial driver processing per trap.
// Every (size, stack) combination is an independent job.
func Sec3Throughput(opts Options) *report.Table {
	stacks := []struct {
		name       string
		trap, work bool
	}{
		{"direct", false, false},
		{"trap", true, false},
		{"trap+driver", true, true},
	}
	var jobs []Job
	for i, usz := range sec3Sizes {
		size := time.Duration(usz * float64(time.Microsecond))
		for j, st := range stacks {
			jobs = append(jobs, NewJob("sec3", i*len(stacks)+j,
				fmt.Sprintf("%.0fus via %s", usz, st.name),
				func(o Options) any { return throughput(o, size, st.trap, st.work) }))
		}
	}
	res := RunJobs(opts, jobs)

	t := report.New("Section 3: direct access vs per-request kernel traps (throughput gain of direct)",
		"Request size", "vs plain trap", "vs trap+driver work")
	for i, usz := range sec3Sizes {
		direct := res[i*len(stacks)].Value.(float64)
		trap := res[i*len(stacks)+1].Value.(float64)
		heavy := res[i*len(stacks)+2].Value.(float64)
		t.AddRow(fmt.Sprintf("%.0fus", usz),
			fmt.Sprintf("+%.0f%%", 100*(direct/trap-1)),
			fmt.Sprintf("+%.0f%%", 100*(direct/heavy-1)))
	}
	t.AddNote("paper: 8-35%% gain over plain traps, 48-170%% over traps with driver work, for 10-100us requests")
	return t
}

// throughput measures completed requests/second for back-to-back
// blocking requests of one size under the chosen submission stack.
func throughput(opts Options, size sim.Duration, trap, driverWork bool) float64 {
	eng := sim.NewEngine()
	cfg := gpu.DefaultConfig()
	dev := gpu.New(eng, cfg)
	k := neon.NewKernel(dev, noScheduler{})
	task := k.NewTask("throttle")
	var done int64
	task.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, k, task, "throttle", gpu.Compute)
		if err != nil {
			return
		}
		client.TrapPerRequest = trap
		client.TrapDriverWork = driverWork
		if trap {
			// Trap-per-request stacks refuse the async fast path on
			// every submission, so the classic blocking loop — trap
			// sleep, store, park on the done gate — is the honest model.
			for task.Alive {
				client.SubmitSync(p, gpu.Compute, size)
				done++
			}
			return
		}
		// Direct access runs as a self-resubmitting continuation chain:
		// each completion re-stages the next request from engine context,
		// with zero goroutine handoffs per request.
		eng := p.Engine()
		slow := eng.NewGate("sec3-slow")
		var submit func()
		onDone := func(r *gpu.Request) {
			if r.Aborted {
				return
			}
			eng.After(0, func() {
				r.Release()
				done++
				submit()
			})
		}
		submit = func() {
			if !task.Alive {
				return
			}
			if _, ok := client.SubmitAsync(eng, gpu.Compute, size, onDone); !ok {
				// Unreachable under noScheduler (pages stay present);
				// hand to the blocking lane rather than stall silently.
				slow.Signal()
			}
		}
		submit()
		for task.Alive {
			p.Wait(slow)
			client.SubmitSync(p, gpu.Compute, size)
			done++
			submit()
		}
	})
	eng.RunFor(opts.Measure)
	return float64(done) / eng.Now().Seconds()
}

// noScheduler is a direct-access policy without the core package import
// (avoids an import cycle in tests that reuse this file's helper).
type noScheduler struct{}

func (noScheduler) Name() string                                          { return "none" }
func (noScheduler) Start(*neon.Kernel)                                    {}
func (noScheduler) TaskAdmitted(*neon.Task)                               {}
func (noScheduler) TaskExited(*neon.Task)                                 {}
func (noScheduler) ChannelActivated(cs *neon.ChannelState)                { cs.Ch.Reg.SetPresent(true) }
func (noScheduler) HandleFault(*sim.Proc, *neon.Task, *neon.ChannelState) {}
