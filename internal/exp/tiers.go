package exp

// The tiers experiment: contract-driven sharing — per-tenant fair-share
// weights and SLO service tiers — in two probes that each isolate one
// layer. The paper's fair queueing gives every tenant an equal share;
// production multi-tenant serving sells unequal ones (MQFQ-Sticky's
// weighted virtual-time throttling, Gavel's weighted policies).
//
//   - The "shares" probe is closed-loop: three always-backlogged
//     saturating tenants on one DFQ device, so the scheduler alone sets
//     the split. Weighted DFQ holds each tenant's normalized share
//     proportional to its weight (a 4x premium receives ~4x a standard
//     tenant's device time); the unweighted ablation — the identical
//     population with the contract ignored — flattens the premium
//     tenant back to parity, as does timeslice's unweighted rotation.
//   - The "serve" probe is open-loop: premium/standard/best-effort
//     streams of equal offered demand against tier-aware admission
//     under overload. Best-effort is refused first (half the standard
//     depth bound) and premium last (1.25x of it), so through overload
//     levels that shed best-effort entirely the premium stream's shed
//     rate stays zero and its p99 stays flat.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// DefaultTierRatios is the premium-weight sweep of the shares probe:
// the premium tenant's fair-share weight relative to the standard and
// best-effort tenants' weight of 1.
var DefaultTierRatios = []float64{2, 4}

// DefaultTierLoads is the serve probe's load-factor sweep: just past
// saturation, and deep overload where the admission tiers separate.
// Each stream offers a third of the total, so at 1.8 the premium stream
// demands 0.6 of fleet capacity — under its 2/3 entitlement at the 4x
// weight (no premium queue growth, no premium shedding) while standard
// and best-effort demand far beyond theirs and must be throttled and
// shed.
var DefaultTierLoads = []float64{1.2, 1.8}

// TiersDevices is the serve probe's fleet size. The shares probe runs
// on a single device: a closed-loop tenant submits one round at a time
// and so can draw at most one device's worth of service, which would
// cap a 4x entitlement on a multi-device fleet below its proportional
// share.
const TiersDevices = 2

// TierSchedNames lists the per-device schedulers the shares probe
// compares: weighted disengaged fair queueing against token-passing
// timeslice, whose unweighted rotation cannot deliver proportional
// shares.
func TierSchedNames() []string { return []string{"ts", "dfq"} }

// TierAccountings lists the two contract rules each DFQ shares cell
// runs under: "weighted" applies the declared weights to every
// virtual-time charge; "flat" is the unweighted ablation — the
// identical population, with every task charged at weight 1.
func TierAccountings() []string { return []string{"weighted", "flat"} }

// tierRole is one of the experiment's three fixed principals.
type tierRole struct {
	name string
	// share is the role's fraction of the serve probe's offered load.
	// The roles offer equal demand, so any separation in the measured
	// table is the scheduler's (weights) or the front door's (tiers)
	// doing — never an artifact of asymmetric offered load.
	share float64
	size  sim.Duration
	tier  workload.Tier
}

// tierRoles returns the premium/standard/best-effort roles in order.
func tierRoles() []tierRole {
	const us = time.Microsecond
	return []tierRole{
		{"premium", 1.0 / 3, 200 * us, workload.TierPremium},
		{"standard", 1.0 / 3, 250 * us, workload.TierStandard},
		{"best-effort", 1.0 / 3, 300 * us, workload.TierBestEffort},
	}
}

// TierWeightVectors resolves the weight sweep for these Options: each
// vector holds the premium/standard/best-effort weights of one shares
// row. The -weights override collapses the sweep to exactly that
// contract.
func (o Options) TierWeightVectors() [][3]float64 {
	if len(o.Weights) == 3 {
		return [][3]float64{{o.Weights[0], o.Weights[1], o.Weights[2]}}
	}
	out := make([][3]float64, len(DefaultTierRatios))
	for i, r := range DefaultTierRatios {
		out[i] = [3]float64{r, 1, 1}
	}
	return out
}

// TierServeWeights resolves the serve probe's contract: the -weights
// override, or the steepest ratio of the default sweep.
func (o Options) TierServeWeights() [3]float64 {
	vecs := o.TierWeightVectors()
	return vecs[len(vecs)-1]
}

// TierLoads resolves the serve probe's load sweep for these Options.
func (o Options) TierLoads() []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	return DefaultTierLoads
}

// tierAssignments resolves the per-role admission tiers, applying the
// -tiers override when present.
func (o Options) tierAssignments() [3]workload.Tier {
	roles := tierRoles()
	out := [3]workload.Tier{roles[0].tier, roles[1].tier, roles[2].tier}
	if len(o.Tiers) == 3 {
		for i, t := range o.Tiers {
			out[i] = t.Normalize()
		}
	}
	return out
}

// TierPopulation returns the serve probe's three open-loop streams: a
// Poisson premium aggregate, a Poisson standard aggregate, and a bursty
// MMPP best-effort scraper, with offered device time summing to load x
// devices and the given weights/tiers attached. The streams are
// stateless (no working set): the probe isolates the front door and the
// weighted ledgers, not placement locality.
func TierPopulation(devices int, load float64, weights [3]float64, tiers [3]workload.Tier) []traffic.Stream {
	budget := load * float64(devices) // offered device-seconds per second
	streams := make([]traffic.Stream, 0, 3)
	for i, role := range tierRoles() {
		rate := budget * role.share / role.size.Seconds()
		spec := workload.OpenLoopTenant(role.name, role.size, 0)
		spec.Weight = weights[i]
		spec.Tier = tiers[i]
		var arrival traffic.Arrival
		switch role.tier {
		case workload.TierBestEffort:
			// Silent between bursts, 4x its mean rate during them — the
			// batch scraper the front door exists to shed first.
			arrival = traffic.NewMMPP(0, 4*rate, 30*time.Millisecond, 10*time.Millisecond)
		default:
			arrival = traffic.Poisson{Rate: rate}
		}
		streams = append(streams, traffic.Stream{Tenant: spec, Arrival: arrival})
	}
	return streams
}

// TierResult is one cell of the tiers grid.
type TierResult struct {
	// Probe is "shares" (closed-loop, scheduler only) or "serve"
	// (open-loop, tiered admission). Serve-only fields are zero on
	// shares rows and rendered as "-".
	Probe string
	Load  float64
	Sched string
	Acct  string
	// Weights is the declared premium/standard/best-effort contract
	// (applied to the schedulers only when Acct is "weighted").
	Weights [3]float64

	// PremStdRatio is the premium principal's received normalized work
	// over the standard principal's — ~Weights[0] under weighted DFQ,
	// ~1 flat.
	PremStdRatio float64
	// WorstEntitled is the worst principal's delivered fraction of its
	// weighted entitlement: min over principals of work_i divided by
	// (weight_i/sum(weights) x total delivered work). Proportional
	// sharing puts every backlogged principal at ~1; one under its
	// entitlement because its contract is being ignored (flat
	// accounting, timeslice rotation) falls well below. InBound reports
	// WorstEntitled >= HeteroFairBound.
	WorstEntitled float64
	InBound       bool
	// PremP99 is the premium stream's sojourn-time tail (serve probe).
	PremP99 time.Duration
	// Shed rates per role, in role order (serve probe).
	PremShed, StdShed, BEShed float64
	// Utilization is the mean per-node busy fraction of the window.
	Utilization float64
}

// shareTenants measures the weighted-fairness columns over the fleet's
// tenants in launch order, dividing by the *declared* weights in every
// accounting mode — under "flat" that is exactly what exposes the
// flattened contract.
func (r *TierResult) shareTenants(tenants []*fleet.Tenant, weights [3]float64) {
	work := make([]float64, len(tenants))
	var total, weightSum float64
	for i, tn := range tenants {
		work[i] = float64(tn.NormalizedWork())
		total += work[i]
		weightSum += weights[i]
	}
	if work[1] > 0 {
		r.PremStdRatio = work[0] / work[1]
	}
	if total > 0 {
		for i := range work {
			f := work[i] / (weights[i] / weightSum * total)
			if i == 0 || f < r.WorstEntitled {
				r.WorstEntitled = f
			}
		}
	}
	r.InBound = r.WorstEntitled >= HeteroFairBound
}

// TierShareDFQ is the shares probe's DFQ configuration: a 1 ms sample
// period and a 3x free run, i.e. an engagement cycle several times
// shorter than the paper's default. Weighted fair queueing acts only
// through denial at engagement boundaries, so the share split converges
// at the cycle rate; the default ~90 ms cycle needs seconds to express
// a 4x contract, while this one settles well inside the quick
// measurement window. (The ablation-params experiment sweeps exactly
// these knobs.)
func TierShareDFQ() core.DFQConfig {
	return core.DFQConfig{
		SamplePeriod:      time.Millisecond,
		FreeRunMultiplier: 3,
	}
}

// RunTierShareCell runs the closed-loop shares probe: three saturating
// tenants with the declared weights on one device under the given
// scheduler, with nothing but the scheduler deciding the split.
func RunTierShareCell(o Options, sched, acct string, weights [3]float64) TierResult {
	eng := sim.NewEngine()
	f, err := fleet.New(eng, fleet.Config{
		Devices:     1,
		Policy:      fleet.NewLocalitySticky(fleet.DefaultStickyDepth),
		Sched:       sched,
		DFQ:         TierShareDFQ(),
		RunLimit:    o.RunLimit,
		Seed:        o.Seed,
		AllocPolicy: allocPolicy(o),
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	applied := weights
	if acct == "flat" {
		applied = [3]float64{1, 1, 1} // the contract exists but is ignored
	}
	const us = time.Microsecond
	for i, role := range tierRoles() {
		s := workload.Throttle(300*us, 0)
		s.Name = role.name
		f.Launch(workload.TenantSpec{Spec: s, Jitter: 0.2, Weight: applied[i], Tier: role.tier})
	}
	eng.RunFor(o.Warmup)
	f.ResetStats()
	eng.RunFor(o.Measure)

	res := TierResult{Probe: "shares", Sched: sched, Acct: acct, Weights: weights}
	for _, tn := range f.Tenants() {
		if tn.SetupError() != nil {
			panic(fmt.Sprintf("exp: tiers tenant %s setup: %v", tn.Spec.Name, tn.SetupError()))
		}
	}
	res.shareTenants(f.Tenants(), weights)
	res.Utilization = fleetUtilization(f, o.Measure)
	return res
}

// RunTierServeCell runs the open-loop serve probe: the tiered
// population against weighted DFQ and tier-aware admission at one load
// factor.
func RunTierServeCell(o Options, load float64, weights [3]float64) TierResult {
	eng := sim.NewEngine()
	streams := TierPopulation(TiersDevices, load, weights, o.tierAssignments())
	srv, err := traffic.New(eng, traffic.Config{
		Fleet: fleet.Config{
			Devices:     TiersDevices,
			Policy:      fleet.NewLocalitySticky(ServeAdmitDepth),
			Sched:       "dfq",
			RunLimit:    o.RunLimit,
			Seed:        o.Seed,
			AllocPolicy: allocPolicy(o),
		},
		AdmitDepth: ServeAdmitDepth * TiersDevices,
		Streams:    streams,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	eng.RunFor(o.Warmup)
	srv.ResetStats()
	eng.RunFor(o.Measure)
	if err := srv.SetupError(); err != nil {
		panic(fmt.Sprintf("exp: tiers stream setup: %v", err))
	}

	res := TierResult{Probe: "serve", Load: load, Sched: "dfq", Acct: "weighted", Weights: weights}
	res.shareTenants(srv.Fleet().Tenants(), weights)
	// The entitlement floor presumes every principal keeps demanding its
	// share; the front door deliberately breaks that by shedding
	// best-effort demand, so the fairness verdict is a shares-probe
	// column only.
	res.WorstEntitled, res.InBound = 0, false
	res.PremP99 = srv.Stats(0).Latency.Quantile(0.99)
	res.PremShed = srv.Stats(0).ShedRate()
	res.StdShed = srv.Stats(1).ShedRate()
	res.BEShed = srv.Stats(2).ShedRate()
	res.Utilization = fleetUtilization(srv.Fleet(), o.Measure)
	return res
}

// TiersExp runs the shares probe over weight ratio x scheduler (with
// the unweighted ablation beside every weighted DFQ cell) and the serve
// probe over the overload sweep, every cell an independent job on the
// worker pool.
func TiersExp(opts Options) *report.Table {
	type cell struct {
		probe   string
		load    float64
		sched   string
		acct    string
		weights [3]float64
	}
	var cells []cell
	for _, weights := range opts.TierWeightVectors() {
		for _, sched := range TierSchedNames() {
			accts := TierAccountings()
			if sched != "dfq" {
				// The ablation isolates DFQ's weighted virtual time;
				// timeslice's token rotation is unweighted either way.
				accts = []string{"weighted"}
			}
			for _, acct := range accts {
				cells = append(cells, cell{"shares", 0, sched, acct, weights})
			}
		}
	}
	for _, load := range opts.TierLoads() {
		cells = append(cells, cell{"serve", load, "dfq", "weighted", opts.TierServeWeights()})
	}

	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = NewJob("tiers", i,
			fmt.Sprintf("%s: load %.2f, %s, %s, premium weight %g", c.probe, c.load, c.sched, c.acct, c.weights[0]),
			func(o Options) any {
				if c.probe == "shares" {
					return RunTierShareCell(o, c.sched, c.acct, c.weights)
				}
				return RunTierServeCell(o, c.load, c.weights)
			})
	}

	t := report.New(fmt.Sprintf("Tiers: weighted shares (closed-loop, 1 device) and SLO admission tiers (open-loop, %d devices)", TiersDevices),
		"probe", "load", "sched", "acct", "weights", "prem/std", "entitled", "fair",
		"prem p99", "shed prem", "shed std", "shed b-e", "util")
	for _, r := range RunJobs(opts, jobs) {
		res := r.Value.(TierResult)
		fair := "no"
		if res.InBound {
			fair = "yes"
		}
		load, p99, shedP, shedS, shedB := "-", "-", "-", "-", "-"
		entitled := report.F(res.WorstEntitled, 2)
		if res.Probe == "serve" {
			load = report.F(res.Load, 2)
			p99 = report.MS(res.PremP99)
			shedP = report.Pct(res.PremShed)
			shedS = report.Pct(res.StdShed)
			shedB = report.Pct(res.BEShed)
			entitled, fair = "-", "-"
		}
		t.AddRow(
			res.Probe,
			load,
			res.Sched,
			res.Acct,
			fmt.Sprintf("%g:%g:%g", res.Weights[0], res.Weights[1], res.Weights[2]),
			report.F(res.PremStdRatio, 2),
			entitled,
			fair,
			p99,
			shedP,
			shedS,
			shedB,
			report.Pct(res.Utilization),
		)
	}
	t.AddNote("shares probe: three saturating closed-loop tenants on one device — the scheduler alone sets the split; weights are premium:standard:best-effort")
	t.AddNote("acct=weighted charges every virtual-time ledger at charge/weight; acct=flat is the unweighted ablation — same population, contract ignored")
	t.AddNote("prem/std is received normalized work: ~the declared ratio under weighted dfq, flattened to ~1x under flat accounting or timeslice rotation")
	t.AddNote("entitled is the worst principal's delivered fraction of its weighted entitlement; fair = within %.2f, the single-device DFQ bound", HeteroFairBound)
	t.AddNote("serve probe: equal offered thirds (Poisson premium/standard, bursty MMPP best-effort) against tier-aware admission — best-effort sheds at half the standard depth bound, premium only past 1.25x of it, so premium shed stays 0 and its p99 flat through overload that sheds best-effort")
	return t
}
