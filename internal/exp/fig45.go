package exp

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fig4Scheds are the managed policies Figure 4 compares against direct.
var fig4Scheds = []Sched{TS, DTS, DFQ}

// Fig4 reproduces Figure 4: standalone slowdown of every benchmark under
// each scheduling policy, relative to direct device access. The grid
// (application × policy) runs as parallel jobs against cached baselines.
func Fig4(opts Options) *report.Table {
	specs := workload.Table1()
	alone := MeasureBaselines("fig4", opts, specs...)

	var jobs []Job
	for i, spec := range specs {
		for j, s := range fig4Scheds {
			jobs = append(jobs, NewJob("fig4", i*len(fig4Scheds)+j,
				fmt.Sprintf("%s under %s", spec.Name, s),
				func(o Options) any { return NewRig(s, o, spec).Measure()[0] }))
		}
	}
	res := RunJobs(opts, jobs)

	t := report.New("Figure 4: standalone execution slowdown vs direct access",
		"Application", "Timeslice", "Disengaged TS", "Disengaged FQ")
	for i, spec := range specs {
		row := []string{spec.Name}
		for j := range fig4Scheds {
			r := res[i*len(fig4Scheds)+j].Value.(sim.Duration)
			row = append(row, report.X(float64(r)/float64(alone.Of(spec))))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: engaged Timeslice up to ~40%% on small-request apps; Disengaged Timeslice <~2%%; Disengaged FQ <~5%%")
	return t
}

// Fig5Sizes are the Throttle request sizes swept by Figures 5-7.
var Fig5Sizes = []float64{19, 64, 191, 425, 850, 1700}

// Fig5 reproduces Figure 5: standalone Throttle slowdown under each
// scheduler across request sizes.
func Fig5(opts Options) *report.Table {
	specs := make([]workload.Spec, len(Fig5Sizes))
	for i, usz := range Fig5Sizes {
		specs[i] = workload.Throttle(time.Duration(usz*float64(time.Microsecond)), 0)
	}
	alone := MeasureBaselines("fig5", opts, specs...)

	var jobs []Job
	for i, spec := range specs {
		for j, s := range fig4Scheds {
			jobs = append(jobs, NewJob("fig5", i*len(fig4Scheds)+j,
				fmt.Sprintf("Throttle(%.0fus) under %s", Fig5Sizes[i], s),
				func(o Options) any { return NewRig(s, o, spec).Measure()[0] }))
		}
	}
	res := RunJobs(opts, jobs)

	t := report.New("Figure 5: standalone Throttle slowdown vs request size",
		"Request size", "Timeslice", "Disengaged TS", "Disengaged FQ")
	for i, spec := range specs {
		row := []string{fmt.Sprintf("%.0fus", Fig5Sizes[i])}
		for j := range fig4Scheds {
			r := res[i*len(fig4Scheds)+j].Value.(sim.Duration)
			row = append(row, report.X(float64(r)/float64(alone.Of(spec))))
		}
		t.AddRow(row...)
	}
	t.AddNote("per-request interception dominates engaged Timeslice at small sizes; the disengaged schedulers stay near 1x")
	return t
}
