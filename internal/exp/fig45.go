package exp

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/workload"
)

// Fig4 reproduces Figure 4: standalone slowdown of every benchmark under
// each scheduling policy, relative to direct device access.
func Fig4(opts Options) *report.Table {
	t := report.New("Figure 4: standalone execution slowdown vs direct access",
		"Application", "Timeslice", "Disengaged TS", "Disengaged FQ")
	for _, spec := range workload.Table1() {
		alone := MeasureAlone(opts, spec)[0]
		row := []string{spec.Name}
		for _, s := range []Sched{TS, DTS, DFQ} {
			rig := NewRig(s, opts, spec)
			r := rig.Measure()[0]
			row = append(row, report.X(float64(r)/float64(alone)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: engaged Timeslice up to ~40%% on small-request apps; Disengaged Timeslice <~2%%; Disengaged FQ <~5%%")
	return t
}

// Fig5Sizes are the Throttle request sizes swept by Figures 5-7.
var Fig5Sizes = []float64{19, 64, 191, 425, 850, 1700}

// Fig5 reproduces Figure 5: standalone Throttle slowdown under each
// scheduler across request sizes.
func Fig5(opts Options) *report.Table {
	t := report.New("Figure 5: standalone Throttle slowdown vs request size",
		"Request size", "Timeslice", "Disengaged TS", "Disengaged FQ")
	for _, usz := range Fig5Sizes {
		spec := workload.Throttle(time.Duration(usz*float64(time.Microsecond)), 0)
		alone := MeasureAlone(opts, spec)[0]
		row := []string{fmt.Sprintf("%.0fus", usz)}
		for _, s := range []Sched{TS, DTS, DFQ} {
			rig := NewRig(s, opts, spec)
			r := rig.Measure()[0]
			row = append(row, report.X(float64(r)/float64(alone)))
		}
		t.AddRow(row...)
	}
	t.AddNote("per-request interception dominates engaged Timeslice at small sizes; the disengaged schedulers stay near 1x")
	return t
}
