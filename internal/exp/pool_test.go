package exp

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// seedJobs returns jobs that report the forked seed they received.
func seedJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = NewJob("pooltest", i, fmt.Sprintf("job %d", i),
			func(o Options) any { return o.Seed })
	}
	return jobs
}

// Results must come back in enumeration order with seeds forked from
// (base seed, exp, index), identically at every pool width.
func TestRunJobsOrderAndForkedSeeds(t *testing.T) {
	opts := Quick()
	for _, parallel := range []int{1, 3, 8} {
		opts.Parallel = parallel
		res := RunJobs(opts, seedJobs(20))
		if len(res) != 20 {
			t.Fatalf("parallel=%d: %d results, want 20", parallel, len(res))
		}
		for i, r := range res {
			if r.Job.Index != i {
				t.Fatalf("parallel=%d: result %d carries job index %d", parallel, i, r.Job.Index)
			}
			want := sim.StreamSeed(opts.Seed, "pooltest", i)
			if got := r.Value.(int64); got != want {
				t.Errorf("parallel=%d job %d: seed %d, want %d", parallel, i, got, want)
			}
		}
	}
}

// The pool must never run more goroutines than requested.
func TestRunJobsBoundsWorkers(t *testing.T) {
	opts := Quick()
	opts.Parallel = 3
	var inFlight, peak atomic.Int64
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = NewJob("bound", i, "", func(Options) any {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return nil
		})
	}
	RunJobs(opts, jobs)
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs, pool width is 3", got)
	}
}

// A panicking job must surface on the caller's goroutine with the job's
// identity attached, not crash a worker.
func TestRunJobsPropagatesPanic(t *testing.T) {
	opts := Quick()
	opts.Parallel = 4
	jobs := seedJobs(8)
	jobs[5] = NewJob("pooltest", 5, "exploding scenario", func(Options) any {
		panic("boom")
	})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic did not propagate")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "exploding scenario") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic message %q lacks job identity", msg)
		}
	}()
	RunJobs(opts, jobs)
}

// Baselines must measure each distinct spec once and key parameterized
// Throttles by their knobs.
func TestBaselinesDedupAndLookup(t *testing.T) {
	opts := poolTestOpts()
	dct, _ := workload.ByName("DCT")
	thrA := workload.Throttle(100*time.Microsecond, 0)
	thrB := workload.Throttle(400*time.Microsecond, 0)
	b := MeasureBaselines("dedup", opts, dct, thrA, thrB, thrA, dct)
	if len(b.m) != 3 {
		t.Fatalf("cached %d baselines, want 3 distinct", len(b.m))
	}
	if b.Of(thrA) == b.Of(thrB) {
		t.Error("different Throttle sizes share a baseline")
	}
	got := b.For(dct, thrA)
	if got[0] != b.Of(dct) || got[1] != b.Of(thrA) {
		t.Error("For does not match Of")
	}
}

func TestBaselinesMissingSpecPanics(t *testing.T) {
	opts := poolTestOpts()
	dct, _ := workload.ByName("DCT")
	fft, _ := workload.ByName("FFT")
	b := MeasureBaselines("missing", opts, dct)
	defer func() {
		if recover() == nil {
			t.Fatal("Of on an unmeasured spec did not panic")
		}
	}()
	b.Of(fft)
}

// poolTestOpts shrinks windows so harness-level tests stay fast.
func poolTestOpts() Options {
	o := Quick()
	o.Warmup = 20 * time.Millisecond
	o.Measure = 100 * time.Millisecond
	return o
}

// The acceptance bar for the harness: serial and parallel runs of the
// same experiment emit byte-identical tables for the same seed.
func TestFig6SerialParallelIdentical(t *testing.T) {
	opts := poolTestOpts()
	opts.Parallel = 1
	serial := Fig6(opts).String()
	opts.Parallel = 4
	parallel := Fig6(opts).String()
	if serial != parallel {
		t.Fatalf("fig6 serial vs parallel diverged:\n%s\nvs\n%s", serial, parallel)
	}
}

// Same bar for a multi-stage driver with shared baselines and custom rigs.
func TestAblationParamsSerialParallelIdentical(t *testing.T) {
	opts := poolTestOpts()
	opts.Parallel = 1
	serial := AblationParams(opts).String()
	opts.Parallel = 4
	parallel := AblationParams(opts).String()
	if serial != parallel {
		t.Fatalf("ablation-params serial vs parallel diverged:\n%s\nvs\n%s", serial, parallel)
	}
}

// Stats must reflect the jobs of the last experiment after a reset.
func TestPoolStats(t *testing.T) {
	ResetStats()
	opts := Quick()
	opts.Parallel = 2
	RunJobs(opts, seedJobs(6))
	jobs, _ := Stats()
	if jobs != 6 {
		t.Fatalf("Stats jobs = %d, want 6", jobs)
	}
	ResetStats()
	if jobs, _ := Stats(); jobs != 0 {
		t.Fatalf("Stats jobs = %d after reset, want 0", jobs)
	}
}
