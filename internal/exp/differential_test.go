package exp

import (
	"testing"

	"repro/internal/sim"
)

// renderWithQueue renders one experiment's table with the engine's
// event queue pinned to the given kind. DefaultEventQueue is a package
// variable, so the run is kept serial (Parallel=1) and the previous
// kind restored afterwards; scenario workers spawned with a different
// default would defeat the comparison.
func renderWithQueue(t *testing.T, id string, kind sim.EventQueueKind) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	prev := sim.DefaultEventQueue
	sim.DefaultEventQueue = kind
	defer func() { sim.DefaultEventQueue = prev }()
	opts := Quick()
	opts.Parallel = 1
	return e.Run(opts).String()
}

// TestDifferentialQueueTables renders fig6 (the paper's core fairness
// artifact: saturating co-runner pairs across every scheduler) and
// serve (the open-loop traffic path: admission, placement, latency
// digests) on both the timing-wheel queue and the retained legacy heap
// and requires byte-identical tables. Together with the event-storm
// trace test in internal/sim, this pins that the queue swap preserved
// the engine's (time, seq) dispatch order end-to-end through the full
// model stack, not just in isolation.
func TestDifferentialQueueTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig6 + serve twice each (~2s)")
	}
	for _, id := range []string{"fig6", "serve"} {
		wheel := renderWithQueue(t, id, sim.WheelQueue)
		legacy := renderWithQueue(t, id, sim.LegacyHeapQueue)
		if wheel != legacy {
			t.Errorf("%s: table differs between WheelQueue and LegacyHeapQueue:\nwheel:\n%s\nlegacy:\n%s",
				id, wheel, legacy)
		}
	}
}
