package exp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// renderWithQueue renders one experiment's table with the engine's
// event queue pinned to the given kind. DefaultEventQueue is a package
// variable, so the run is kept serial (Parallel=1) and the previous
// kind restored afterwards; scenario workers spawned with a different
// default would defeat the comparison.
func renderWithQueue(t *testing.T, id string, kind sim.EventQueueKind) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	prev := sim.DefaultEventQueue
	sim.DefaultEventQueue = kind
	defer func() { sim.DefaultEventQueue = prev }()
	opts := Quick()
	opts.Parallel = 1
	return e.Run(opts).String()
}

// TestDifferentialQueueTables renders fig6 (the paper's core fairness
// artifact: saturating co-runner pairs across every scheduler) and
// serve (the open-loop traffic path: admission, placement, latency
// digests) on both the timing-wheel queue and the retained legacy heap
// and requires byte-identical tables. Together with the event-storm
// trace test in internal/sim, this pins that the queue swap preserved
// the engine's (time, seq) dispatch order end-to-end through the full
// model stack, not just in isolation.
func TestDifferentialQueueTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig6 + serve twice each (~2s)")
	}
	for _, id := range []string{"fig6", "serve"} {
		wheel := renderWithQueue(t, id, sim.WheelQueue)
		legacy := renderWithQueue(t, id, sim.LegacyHeapQueue)
		if wheel != legacy {
			t.Errorf("%s: table differs between WheelQueue and LegacyHeapQueue:\nwheel:\n%s\nlegacy:\n%s",
				id, wheel, legacy)
		}
	}
}

// renderWithLedger renders one experiment's table with the DFQ
// virtual-time ledger pinned to the given kind — the same seam
// discipline as renderWithQueue: DefaultDFQLedger is a package
// variable, so the run stays serial and the previous kind is restored.
func renderWithLedger(t *testing.T, id string, kind core.DFQLedgerKind) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	prev := core.DefaultDFQLedger
	core.DefaultDFQLedger = kind
	defer func() { core.DefaultDFQLedger = prev }()
	opts := Quick()
	opts.Parallel = 1
	return e.Run(opts).String()
}

// TestDifferentialLedgerTables renders fig6 (pairwise fairness under
// every scheduler — the paper's core DFQ artifact) and tiers (weighted
// shares under overload, the path most sensitive to virtual-time
// arithmetic) on both the indexed and the linear DFQ ledger and
// requires byte-identical tables. Together with core's
// TestDifferentialDFQIndex op storms, this pins that the min-VT heap
// and lazy idle catch-up changed the cost of the engagement cycle, not
// its decisions, end-to-end through the full model stack.
func TestDifferentialLedgerTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig6 + tiers twice each (~4s)")
	}
	for _, id := range []string{"fig6", "tiers"} {
		indexed := renderWithLedger(t, id, core.IndexedLedger)
		linear := renderWithLedger(t, id, core.LinearLedger)
		if indexed != linear {
			t.Errorf("%s: table differs between IndexedLedger and LinearLedger:\nindexed:\n%s\nlinear:\n%s",
				id, indexed, linear)
		}
	}
}
