package metrics

import (
	"math"
	"math/bits"
	"time"
)

// digestSubBits sets the Digest's resolution: each power-of-two octave
// is split into 2^digestSubBits linear sub-buckets.
const digestSubBits = 5

// digestSubCount is the number of linear sub-buckets per octave (32).
const digestSubCount = 1 << digestSubBits

// Digest is a streaming quantile sketch for latency observations — an
// HDR-histogram-style structure: exact counts below 32 ns, then 32
// linear sub-buckets per power-of-two octave. Adds are O(1), memory is
// bounded (~1900 buckets covers 1 ns to ~292 years), digests merge by
// bucket-wise addition, and everything is deterministic — no sampling,
// no randomized compaction — so parallel and serial experiment runs
// stay byte-identical.
//
// Accuracy: a reported quantile is the midpoint of the bucket holding
// the true rank-q observation, so its relative error is at most half a
// sub-bucket width — 1/64 (~1.6%) — for values >= 32 ns, and zero below.
// Reported values are additionally clamped to the observed [min, max],
// making one-point distributions exact. TestDigestQuantileAccuracy pins
// the bound against exact sorted-sample quantiles.
type Digest struct {
	counts []int64
	total  int64
	min    int64
	max    int64
}

// digestBucket maps a non-negative value to its bucket index.
func digestBucket(v int64) int {
	if v < digestSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v) >= digestSubBits
	shift := exp - digestSubBits
	base := (exp - digestSubBits + 1) << digestSubBits
	return base + int((v>>shift)&(digestSubCount-1))
}

// digestMid returns the midpoint value of a bucket.
func digestMid(b int) int64 {
	if b < digestSubCount {
		return int64(b)
	}
	block := b >> digestSubBits
	sub := int64(b & (digestSubCount - 1))
	shift := block - 1
	low := (digestSubCount + sub) << shift
	return low + (int64(1)<<shift)/2
}

// Add records one duration observation. Negative durations count as 0.
func (d *Digest) Add(v time.Duration) {
	x := int64(v)
	if x < 0 {
		x = 0
	}
	b := digestBucket(x)
	if b >= len(d.counts) {
		grown := make([]int64, b+1)
		copy(grown, d.counts)
		d.counts = grown
	}
	d.counts[b]++
	if d.total == 0 || x < d.min {
		d.min = x
	}
	if d.total == 0 || x > d.max {
		d.max = x
	}
	d.total++
}

// N returns the observation count.
func (d *Digest) N() int64 { return d.total }

// Min and Max return the exact observed extremes (0 when empty).
func (d *Digest) Min() time.Duration { return time.Duration(d.min) }
func (d *Digest) Max() time.Duration { return time.Duration(d.max) }

// Quantile returns the value at quantile q in [0, 1] — the bucket
// midpoint of the ceil(q*N)-th smallest observation, clamped to the
// observed range. An empty digest returns 0.
func (d *Digest) Quantile(q float64) time.Duration {
	if d.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(d.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > d.total {
		rank = d.total
	}
	var cum int64
	for b, c := range d.counts {
		cum += c
		if cum >= rank {
			v := digestMid(b)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(d.max)
}

// Merge folds another digest's observations into this one.
func (d *Digest) Merge(o *Digest) {
	if o.total == 0 {
		return
	}
	if len(o.counts) > len(d.counts) {
		grown := make([]int64, len(o.counts))
		copy(grown, d.counts)
		d.counts = grown
	}
	for b, c := range o.counts {
		d.counts[b] += c
	}
	if d.total == 0 || o.min < d.min {
		d.min = o.min
	}
	if d.total == 0 || o.max > d.max {
		d.max = o.max
	}
	d.total += o.total
}

// Reset clears the digest for reuse (warmup exclusion).
func (d *Digest) Reset() {
	for i := range d.counts {
		d.counts[i] = 0
	}
	d.total, d.min, d.max = 0, 0, 0
}
