package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Fatal("zero mean not zero")
	}
	m.Add(2)
	m.Add(4)
	m.Add(6)
	if m.Value() != 4 || m.N() != 3 {
		t.Fatalf("mean = %v n = %d", m.Value(), m.N())
	}
}

func TestMeanDuration(t *testing.T) {
	var m Mean
	m.AddDuration(10 * time.Microsecond)
	m.AddDuration(30 * time.Microsecond)
	if m.Duration() != 20*time.Microsecond {
		t.Fatalf("Duration = %v", m.Duration())
	}
}

func TestLog2HistBinning(t *testing.T) {
	var h Log2Hist
	h.Add(500 * time.Nanosecond) // sub-us -> bin 0
	h.Add(1 * time.Microsecond)  // bin 0
	h.Add(3 * time.Microsecond)  // bin 1
	h.Add(1 * time.Millisecond)  // log2(1000)=9.96 -> bin 9
	h.Add(time.Hour)             // clamps to last bin
	if h.Bins[0] != 2 || h.Bins[1] != 1 || h.Bins[9] != 1 || h.Bins[17] != 1 {
		t.Fatalf("bins = %v", h.Bins)
	}
	if h.Total != 5 {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestLog2HistCDF(t *testing.T) {
	var h Log2Hist
	for i := 0; i < 4; i++ {
		h.Add(2 * time.Microsecond) // bin 1
	}
	h.Add(100 * time.Microsecond) // bin 6
	cdf := h.CDF()
	if cdf[0] != 0 || cdf[1] != 80 || cdf[5] != 80 || cdf[6] != 100 || cdf[17] != 100 {
		t.Fatalf("cdf = %v", cdf)
	}
}

func TestEmptyCDFAllZero(t *testing.T) {
	var h Log2Hist
	for _, v := range h.CDF() {
		if v != 0 {
			t.Fatal("empty CDF nonzero")
		}
	}
	if h.FractionBelow(time.Second) != 0 {
		t.Fatal("empty FractionBelow nonzero")
	}
}

func TestFractionBelow(t *testing.T) {
	var h Log2Hist
	h.Add(2 * time.Microsecond)   // bin 1
	h.Add(100 * time.Microsecond) // bin 6
	// Below 10us = bins < log2(10)=3: only the 2us one.
	if got := h.FractionBelow(10 * time.Microsecond); got != 0.5 {
		t.Fatalf("FractionBelow(10us) = %v", got)
	}
}

func TestSlowdown(t *testing.T) {
	if Slowdown(200, 100) != 2 {
		t.Fatal("basic slowdown")
	}
	if Slowdown(100, 0) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

func TestEfficiencyDefinition(t *testing.T) {
	alone := []time.Duration{100, 100}
	conc := []time.Duration{200, 200}
	if got := Efficiency(alone, conc); got != 1.0 {
		t.Fatalf("perfect split efficiency = %v", got)
	}
	conc = []time.Duration{400, 400}
	if got := Efficiency(alone, conc); got != 0.5 {
		t.Fatalf("half efficiency = %v", got)
	}
	// Overlap can exceed 1.0.
	conc = []time.Duration{120, 120}
	if got := Efficiency(alone, conc); got <= 1.0 {
		t.Fatalf("synergy efficiency = %v", got)
	}
}

func TestEfficiencyMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Efficiency([]time.Duration{1}, []time.Duration{1, 2})
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal shares index = %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("max unfair index = %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate cases")
	}
}

// TestPropertyCDFMonotone: CDFs are nondecreasing and end at 100.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(us []uint16) bool {
		if len(us) == 0 {
			return true
		}
		var h Log2Hist
		for _, u := range us {
			h.Add(time.Duration(u) * time.Microsecond)
		}
		cdf := h.CDF()
		prev := 0.0
		for _, v := range cdf {
			if v < prev {
				return false
			}
			prev = v
		}
		return math.Abs(cdf[17]-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyJainBounds: Jain's index lies in [1/n, 1] for positive
// inputs.
func TestPropertyJainBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		j := JainIndex(pos)
		return j >= 1/float64(len(pos))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
