// Package metrics provides the measurement helpers used throughout the
// evaluation: log2-binned histograms with CDF extraction (Figure 2),
// online means, and the paper's slowdown and concurrency-efficiency
// definitions (Section 5.3).
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Mean is an online arithmetic mean.
type Mean struct {
	n   int64
	sum float64
}

// Add folds in one observation.
func (m *Mean) Add(x float64) { m.n++; m.sum += x }

// AddDuration folds in a duration observation, in nanoseconds.
func (m *Mean) AddDuration(d time.Duration) { m.Add(float64(d)) }

// N returns the observation count.
func (m *Mean) N() int64 { return m.n }

// Value returns the mean, or 0 with no observations.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Duration returns the mean as a duration.
func (m *Mean) Duration() time.Duration { return time.Duration(m.Value()) }

// Log2Hist bins durations by floor(log2(microseconds)), matching the
// paper's Figure 2 axes (bins 0..17 cover 1 µs to ~0.26 s; sub-µs
// observations land in bin 0).
type Log2Hist struct {
	Bins  [18]int64
	Total int64
}

// Add records one duration.
func (h *Log2Hist) Add(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	bin := 0
	if us >= 1 {
		bin = int(math.Log2(us))
	}
	if bin >= len(h.Bins) {
		bin = len(h.Bins) - 1
	}
	h.Bins[bin]++
	h.Total++
}

// CDF returns cumulative percentages per bin (0..100).
func (h *Log2Hist) CDF() [18]float64 {
	var out [18]float64
	if h.Total == 0 {
		return out
	}
	var cum int64
	for i, c := range h.Bins {
		cum += c
		out[i] = 100 * float64(cum) / float64(h.Total)
	}
	return out
}

// FractionBelow returns the fraction of observations strictly below the
// bin containing d (i.e. with bin index < bin(d)).
func (h *Log2Hist) FractionBelow(d time.Duration) float64 {
	if h.Total == 0 {
		return 0
	}
	us := float64(d) / float64(time.Microsecond)
	limit := 0
	if us >= 1 {
		limit = int(math.Log2(us))
	}
	var cum int64
	for i := 0; i < limit && i < len(h.Bins); i++ {
		cum += h.Bins[i]
	}
	return float64(cum) / float64(h.Total)
}

// Slowdown is the paper's per-application degradation metric: the ratio
// of the application's per-round time in the evaluated scenario to its
// per-round time running alone with direct access.
func Slowdown(concurrent, alone time.Duration) float64 {
	if alone <= 0 {
		return 0
	}
	return float64(concurrent) / float64(alone)
}

// Efficiency is the paper's concurrency efficiency: given each
// application's round time alone (t_i) and in the concurrent run (tc_i),
// it sums the resource shares t_i/tc_i. Below 1.0 resources were lost;
// above 1.0 the applications overlapped productively.
func Efficiency(alone, concurrent []time.Duration) float64 {
	if len(alone) != len(concurrent) {
		panic(fmt.Sprintf("metrics: mismatched lengths %d vs %d", len(alone), len(concurrent)))
	}
	sum := 0.0
	for i := range alone {
		if concurrent[i] > 0 {
			sum += float64(alone[i]) / float64(concurrent[i])
		}
	}
	return sum
}

// JainIndex is Jain's fairness index over per-task normalized service:
// 1.0 is perfectly fair, 1/n maximally unfair. Used by property tests.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
