package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile returns the ceil(q*n)-th smallest sample — the same
// rank definition Digest.Quantile uses, so the two are comparable.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestDigestQuantileAccuracy compares p50/p95/p99 against exact
// sorted-sample quantiles on uniform, heavy-tailed, and constant
// distributions. The digest's stated error is half a sub-bucket (1/64
// relative, ~1.6%); the test allows 2% for rank-boundary effects.
func TestDigestQuantileAccuracy(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() time.Duration{
		"uniform": func() time.Duration { // 1 µs .. 1 ms
			return time.Microsecond + time.Duration(rng.Int63n(int64(999*time.Microsecond)))
		},
		"heavy-tailed": func() time.Duration { // Pareto, alpha 1.3, scale 50 µs
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			return time.Duration(float64(50*time.Microsecond) / math.Pow(u, 1/1.3))
		},
		"constant": func() time.Duration { return 250 * time.Microsecond },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			var d Digest
			samples := make([]time.Duration, n)
			for i := range samples {
				samples[i] = draw()
				d.Add(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.50, 0.95, 0.99} {
				exact := exactQuantile(samples, q)
				got := d.Quantile(q)
				relErr := math.Abs(float64(got-exact)) / float64(exact)
				if relErr > 0.02 {
					t.Errorf("q=%.2f: digest %v vs exact %v (rel err %.2f%%, want <= 2%%)",
						q, got, exact, 100*relErr)
				}
			}
			if name == "constant" {
				// One-point distributions must be exact: the reported value
				// is clamped to the observed min/max.
				for _, q := range []float64{0, 0.5, 1} {
					if got := d.Quantile(q); got != 250*time.Microsecond {
						t.Errorf("constant q=%.1f: got %v, want 250µs exactly", q, got)
					}
				}
			}
		})
	}
}

// TestDigestMerge: merging two halves must be equivalent to observing
// the whole stream in one digest.
func TestDigestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Digest
	for i := 0; i < 4000; i++ {
		v := time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%.2f: merged %v != whole %v", q, got, want)
		}
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged extremes [%v, %v] != whole [%v, %v]", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

// TestDigestEdgeCases: empty digests, zero/negative values, and Reset.
func TestDigestEdgeCases(t *testing.T) {
	var d Digest
	if d.Quantile(0.5) != 0 || d.N() != 0 {
		t.Fatal("empty digest should report 0")
	}
	d.Add(-time.Second) // clamps to 0
	d.Add(0)
	d.Add(10 * time.Nanosecond) // sub-32ns values are exact
	if got := d.Quantile(1); got != 10*time.Nanosecond {
		t.Fatalf("max quantile = %v, want 10ns", got)
	}
	if got := d.Quantile(0); got != 0 {
		t.Fatalf("min quantile = %v, want 0", got)
	}
	d.Reset()
	if d.N() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("Reset did not clear the digest")
	}
	d.Add(time.Hour) // far octave after reset still lands correctly
	if got := d.Quantile(0.5); got != time.Hour {
		t.Fatalf("post-reset quantile = %v, want 1h", got)
	}
}

// TestDigestBucketMonotone: bucket indexing must be monotone and
// midpoints must land inside their buckets across octave boundaries.
func TestDigestBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1 << 20, 1<<20 + 1, 1 << 40} {
		b := digestBucket(v)
		if b < prev {
			t.Fatalf("bucket(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
		if got := digestBucket(digestMid(b)); got != b {
			t.Errorf("midpoint of bucket %d (value %d) maps to bucket %d", b, digestMid(b), got)
		}
	}
}
