package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(sim.NewEngine(), Config{Devices: 0}); err == nil {
		t.Fatal("Devices: 0 should fail")
	}
	if _, err := New(sim.NewEngine(), Config{Devices: 1, DFQ: core.DFQConfig{Fleet: NewBoard()}}); err == nil {
		t.Fatal("pre-set DFQ.Fleet should fail: the fleet installs its own board")
	}
	f, err := New(sim.NewEngine(), Config{Devices: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(f.Nodes()) != 3 {
		t.Fatalf("got %d nodes, want 3", len(f.Nodes()))
	}
	for i, n := range f.Nodes() {
		if n.Device.Name() == "" || n.Kernel.Label != n.Device.Name() {
			t.Fatalf("node %d: device name %q, kernel label %q", i, n.Device.Name(), n.Kernel.Label)
		}
	}
	if f.Nodes()[0].Device.Name() == f.Nodes()[1].Device.Name() {
		t.Fatal("device names must be distinct")
	}
}

func TestFleetClassesCycleOverDevices(t *testing.T) {
	f, err := New(sim.NewEngine(), Config{Devices: 4, Classes: []string{"k20", "consumer"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []string{"k20", "consumer", "k20", "consumer"}
	for i, n := range f.Nodes() {
		if n.Class.Name != want[i] {
			t.Errorf("node %d class = %s, want %s", i, n.Class.Name, want[i])
		}
		if n.Speed() != n.Device.ClassSpeed() {
			t.Errorf("node %d speed %v disagrees with device %v", i, n.Speed(), n.Device.ClassSpeed())
		}
	}
	if _, err := New(sim.NewEngine(), Config{Devices: 2, Classes: []string{"bogus"}}); err == nil {
		t.Fatal("unknown class should fail fleet construction")
	}
	// Unset classes default every node to the reference class.
	f, err = New(sim.NewEngine(), Config{Devices: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, n := range f.Nodes() {
		if n.Speed() != 1.0 {
			t.Errorf("node %d default speed = %v, want reference 1.0", i, n.Speed())
		}
	}
}

func TestRequestDoneUnderflowPanicsWithNodeName(t *testing.T) {
	f, err := New(sim.NewEngine(), Config{Devices: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := f.Nodes()[0]
	for _, retire := range []struct {
		name string
		fn   func()
	}{
		{"RequestDone", func() { f.RequestDone(n) }},
		{"roundDone", func() { f.roundDone(n) }},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s with nothing in flight must panic, not corrupt queue depth", retire.name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, n.Device.Name()) {
					t.Fatalf("%s panic %v does not name node %s", retire.name, r, n.Device.Name())
				}
			}()
			retire.fn()
		}()
	}
	if n.Load() != 0 {
		t.Fatalf("load = %d after refused retires, want 0", n.Load())
	}
}

// Regression: a partially populated cfg.GPU must keep the caller's
// fields and default only the unset ones — fleet.New used to replace
// the whole struct with gpu.DefaultConfig() whenever MaxContexts was
// zero, silently discarding, e.g., a custom GraphicsPenalty.
func TestFleetGPUConfigDefaultsOnlyUnsetFields(t *testing.T) {
	f, err := New(sim.NewEngine(), Config{
		Devices: 2,
		GPU:     gpu.Config{GraphicsPenalty: 5},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	def := gpu.DefaultConfig()
	for i, n := range f.Nodes() {
		got := n.Device.Config()
		if got.GraphicsPenalty != 5 {
			t.Errorf("node %d: GraphicsPenalty = %d, caller's 5 was discarded", i, got.GraphicsPenalty)
		}
		if got.MaxContexts != def.MaxContexts {
			t.Errorf("node %d: MaxContexts = %d, want default %d", i, got.MaxContexts, def.MaxContexts)
		}
		if got.MemoryBytes != def.MemoryBytes {
			t.Errorf("node %d: MemoryBytes = %d, want default %d", i, got.MemoryBytes, def.MemoryBytes)
		}
		if got.Costs == (cost.Model{}) {
			t.Errorf("node %d: zero cost model; default was not applied", i)
		}
	}
	// The other direction: a set MaxContexts with everything else unset
	// keeps the custom value and still gets defaults for the rest.
	f, err = New(sim.NewEngine(), Config{Devices: 1, GPU: gpu.Config{MaxContexts: 7}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got := f.Nodes()[0].Device.Config()
	if got.MaxContexts != 7 {
		t.Errorf("MaxContexts = %d, want caller's 7", got.MaxContexts)
	}
	if got.GraphicsPenalty != def.GraphicsPenalty || got.Costs == (cost.Model{}) {
		t.Errorf("unset fields not defaulted: penalty %d, costs zero=%v",
			got.GraphicsPenalty, got.Costs == (cost.Model{}))
	}
}

// Regression: Node.Utilization must stay in [0, 1] even when the caller
// passes a window shorter than the busy time accumulated since
// ResetStats.
func TestNodeUtilizationClamped(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 1, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.Launch(workload.FleetPopulation(1, "uniform")[0])
	eng.RunFor(100 * time.Millisecond)
	n := f.Nodes()[0]
	if n.BusySince() <= time.Millisecond {
		t.Fatalf("saturating tenant kept the device only %v busy; scenario too idle", n.BusySince())
	}
	if u := n.Utilization(time.Millisecond); u != 1 {
		t.Errorf("Utilization(1ms) = %v with %v busy, want clamp to 1", u, n.BusySince())
	}
	if u := n.Utilization(100 * time.Millisecond); u < 0 || u > 1 {
		t.Errorf("Utilization(full window) = %v, want within [0,1]", u)
	}
	if u := n.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %v, want 0", u)
	}
}

// Weighted fair queueing end to end on one device: two saturating
// tenants with a 4x weight ratio must split device time ~4:1, i.e.
// their WeightedWork (normalized work over weight) must come out about
// equal.
func TestFleetWeightedSharesProportional(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 1, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	specs := workload.FleetPopulation(1, "uniform")[:2]
	specs[0].Name, specs[0].Weight = "premium", 4
	specs[1].Name, specs[1].Weight = "standard", 1
	prem := f.Launch(specs[0])
	std := f.Launch(specs[1])
	eng.RunFor(200 * time.Millisecond)
	f.ResetStats()
	eng.RunFor(800 * time.Millisecond)

	for _, tn := range []*Tenant{prem, std} {
		if tn.SetupError() != nil {
			t.Fatalf("tenant %s setup: %v", tn.Spec.Name, tn.SetupError())
		}
	}
	ratio := float64(prem.NormalizedWork()) / float64(std.NormalizedWork())
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("premium/standard service ratio = %.2f, want ~4 (weighted DFQ)", ratio)
	}
	wp, ws := float64(prem.WeightedWork()), float64(std.WeightedWork())
	if lo, hi := min(wp, ws), max(wp, ws); lo/hi < 0.6 {
		t.Errorf("weighted work not equalized: premium %.0f vs standard %.0f", wp, ws)
	}
}

func TestTenantsRunAndMigrationsCost(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 2, Policy: NewRoundRobin(), Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var tenants []*Tenant
	for _, ts := range workload.FleetPopulation(2, "uniform") {
		tenants = append(tenants, f.Launch(ts))
	}
	eng.RunFor(200 * time.Millisecond)

	for _, tn := range tenants {
		if tn.SetupError() != nil {
			t.Fatalf("tenant %s setup: %v", tn.Spec.Name, tn.SetupError())
		}
		if tn.Rounds == 0 {
			t.Fatalf("tenant %s made no progress", tn.Spec.Name)
		}
		if tn.ServiceTime() <= 0 {
			t.Fatalf("tenant %s received no device time", tn.Spec.Name)
		}
	}
	if f.Placements == 0 {
		t.Fatal("no placements recorded")
	}
	if f.Board().Episodes == 0 {
		t.Fatal("no fleet reconciliation episodes: per-device DFQ is not reporting")
	}
}

func TestResetStatsRebaselines(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 2, Policy: NewLocalitySticky(DefaultStickyDepth), Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tn := f.Launch(workload.FleetPopulation(2, "uniform")[0])
	eng.RunFor(100 * time.Millisecond)
	if tn.Rounds == 0 {
		t.Fatal("no rounds before reset")
	}
	f.ResetStats()
	if tn.Rounds != 0 || tn.ServiceTime() != 0 || f.Placements != 0 {
		t.Fatalf("reset left rounds=%d service=%v placements=%d",
			tn.Rounds, tn.ServiceTime(), f.Placements)
	}
	eng.RunFor(100 * time.Millisecond)
	if tn.Rounds == 0 || tn.ServiceTime() <= 0 {
		t.Fatal("no progress after reset")
	}
	for _, n := range f.Nodes() {
		if n.BusySince() < 0 {
			t.Fatalf("negative BusySince on %s", n.Device.Name())
		}
	}
}
