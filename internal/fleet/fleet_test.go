package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(sim.NewEngine(), Config{Devices: 0}); err == nil {
		t.Fatal("Devices: 0 should fail")
	}
	if _, err := New(sim.NewEngine(), Config{Devices: 1, DFQ: core.DFQConfig{Fleet: NewBoard()}}); err == nil {
		t.Fatal("pre-set DFQ.Fleet should fail: the fleet installs its own board")
	}
	f, err := New(sim.NewEngine(), Config{Devices: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(f.Nodes()) != 3 {
		t.Fatalf("got %d nodes, want 3", len(f.Nodes()))
	}
	for i, n := range f.Nodes() {
		if n.Device.Name() == "" || n.Kernel.Label != n.Device.Name() {
			t.Fatalf("node %d: device name %q, kernel label %q", i, n.Device.Name(), n.Kernel.Label)
		}
	}
	if f.Nodes()[0].Device.Name() == f.Nodes()[1].Device.Name() {
		t.Fatal("device names must be distinct")
	}
}

func TestFleetClassesCycleOverDevices(t *testing.T) {
	f, err := New(sim.NewEngine(), Config{Devices: 4, Classes: []string{"k20", "consumer"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []string{"k20", "consumer", "k20", "consumer"}
	for i, n := range f.Nodes() {
		if n.Class.Name != want[i] {
			t.Errorf("node %d class = %s, want %s", i, n.Class.Name, want[i])
		}
		if n.Speed() != n.Device.ClassSpeed() {
			t.Errorf("node %d speed %v disagrees with device %v", i, n.Speed(), n.Device.ClassSpeed())
		}
	}
	if _, err := New(sim.NewEngine(), Config{Devices: 2, Classes: []string{"bogus"}}); err == nil {
		t.Fatal("unknown class should fail fleet construction")
	}
	// Unset classes default every node to the reference class.
	f, err = New(sim.NewEngine(), Config{Devices: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, n := range f.Nodes() {
		if n.Speed() != 1.0 {
			t.Errorf("node %d default speed = %v, want reference 1.0", i, n.Speed())
		}
	}
}

func TestRequestDoneUnderflowPanicsWithNodeName(t *testing.T) {
	f, err := New(sim.NewEngine(), Config{Devices: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := f.Nodes()[0]
	for _, retire := range []struct {
		name string
		fn   func()
	}{
		{"RequestDone", func() { f.RequestDone(n) }},
		{"roundDone", func() { f.roundDone(n) }},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s with nothing in flight must panic, not corrupt queue depth", retire.name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, n.Device.Name()) {
					t.Fatalf("%s panic %v does not name node %s", retire.name, r, n.Device.Name())
				}
			}()
			retire.fn()
		}()
	}
	if n.Load() != 0 {
		t.Fatalf("load = %d after refused retires, want 0", n.Load())
	}
}

func TestTenantsRunAndMigrationsCost(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 2, Policy: NewRoundRobin(), Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var tenants []*Tenant
	for _, ts := range workload.FleetPopulation(2, "uniform") {
		tenants = append(tenants, f.Launch(ts))
	}
	eng.RunFor(200 * time.Millisecond)

	for _, tn := range tenants {
		if tn.SetupError() != nil {
			t.Fatalf("tenant %s setup: %v", tn.Spec.Name, tn.SetupError())
		}
		if tn.Rounds == 0 {
			t.Fatalf("tenant %s made no progress", tn.Spec.Name)
		}
		if tn.ServiceTime() <= 0 {
			t.Fatalf("tenant %s received no device time", tn.Spec.Name)
		}
	}
	if f.Placements == 0 {
		t.Fatal("no placements recorded")
	}
	if f.Board().Episodes == 0 {
		t.Fatal("no fleet reconciliation episodes: per-device DFQ is not reporting")
	}
}

func TestResetStatsRebaselines(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 2, Policy: NewLocalitySticky(DefaultStickyDepth), Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tn := f.Launch(workload.FleetPopulation(2, "uniform")[0])
	eng.RunFor(100 * time.Millisecond)
	if tn.Rounds == 0 {
		t.Fatal("no rounds before reset")
	}
	f.ResetStats()
	if tn.Rounds != 0 || tn.ServiceTime() != 0 || f.Placements != 0 {
		t.Fatalf("reset left rounds=%d service=%v placements=%d",
			tn.Rounds, tn.ServiceTime(), f.Placements)
	}
	eng.RunFor(100 * time.Millisecond)
	if tn.Rounds == 0 || tn.ServiceTime() <= 0 {
		t.Fatal("no progress after reset")
	}
	for _, n := range f.Nodes() {
		if n.BusySince() < 0 {
			t.Fatalf("negative BusySince on %s", n.Device.Name())
		}
	}
}
