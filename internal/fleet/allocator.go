package fleet

import (
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
)

// DefaultAllocEvery is the allocator's round period: long against the
// DFQ sampling period (so the mechanism settles between rounds), short
// against experiment measurement windows (so targets take effect well
// inside warmup).
const DefaultAllocEvery = 5 * sim.Duration(time.Millisecond)

// allocator is the round-based enforcement half of the policy/mechanism
// split: every AllocEvery it snapshots the tenant×class matrix, asks
// the policy for targets, and pushes them into the existing machinery —
// effective DFQ weights through Tenant.setAllocWeight (the ledgers read
// Task.Weight at every charging step, so re-weighting is a plain store;
// see the dynamic-weight contract in core/dfq.go) and class-preference
// hints the fastest-fit placement consumes. It computes nothing itself:
// policies decide, the weighted-DFQ/placement/admission mechanisms the
// repo already had enforce.
type allocator struct {
	f     *Fleet
	pol   policy.Policy
	every sim.Duration
}

// start schedules the recurring allocation rounds. The first round runs
// one period in — tenant populations are launched after fleet
// construction, and policies are round-based approximations by design.
func (a *allocator) start() {
	var tick func()
	tick = func() {
		a.round()
		a.f.eng.After(a.every, tick)
	}
	a.f.eng.After(a.every, tick)
}

// round recomputes targets and applies them. It runs in engine context
// and only reads fleet state and writes weights/hints, so a policy
// whose targets match the live weights (static over an unchanged
// population) leaves the event timeline bit-for-bit unchanged.
func (a *allocator) round() {
	f := a.f
	if len(f.tenants) == 0 {
		return
	}
	snap := f.Snapshot()
	tg := a.pol.Allocate(snap)
	for i, t := range f.tenants {
		if i < len(tg.Weight) && tg.Weight[i] > 0 {
			t.setAllocWeight(tg.Weight[i])
		}
		t.hintClasses = policy.ClassPreference(snap, tg, i)
	}
	f.AllocRounds++
	if f.onTargets != nil {
		f.onTargets(snap, tg)
	}
}

// Snapshot assembles the policy layer's view of the fleet: device
// classes with their populations (in node-index first-appearance
// order, so snapshots are deterministic), and one tenant row per
// registered tenant with its contract terms and offered-demand
// ceiling. Demand is the spec's duty cycle — device time per wall
// second when running unthrottled — scaled by the fleet's fastest
// class speed: the most normalized work the tenant could consume if
// always placed on the fastest device. Open-loop serving tenants
// (no think or off time) are saturating.
func (f *Fleet) Snapshot() policy.Snapshot {
	var classes []policy.Class
	maxSpeed := 0.0
	for _, n := range f.nodes {
		if s := n.Speed(); s > maxSpeed {
			maxSpeed = s
		}
		found := false
		for i := range classes {
			if classes[i].Name == n.Class.Name {
				classes[i].Devices++
				found = true
				break
			}
		}
		if !found {
			classes = append(classes, policy.Class{Name: n.Class.Name, Speed: n.Speed(), Devices: 1})
		}
	}
	tenants := make([]policy.Tenant, len(f.tenants))
	for i, t := range f.tenants {
		spec := t.Spec
		duty := 0.0
		if cycle := spec.ActiveTime() + spec.OffTime(); cycle > 0 {
			duty = float64(spec.GPUTime()) / float64(cycle)
		}
		tenants[i] = policy.Tenant{
			Name:   spec.Name,
			Org:    spec.Org,
			Weight: spec.ShareWeight(),
			Tier:   spec.Tier.Normalize(),
			Demand: duty * maxSpeed,
		}
	}
	return policy.Snapshot{Tenants: tenants, Classes: classes}
}

// OnTargets registers a hook called after every allocation round with
// the snapshot and the targets just applied. The serving layer uses it
// to refresh admission tier bounds from the active policy; tests use
// it to observe rounds. Only one hook is held — last registration
// wins.
func (f *Fleet) OnTargets(fn func(policy.Snapshot, policy.Targets)) { f.onTargets = fn }

// AllocPolicy returns the active allocation policy, nil when the fleet
// runs without the allocator (the pre-policy behavior).
func (f *Fleet) AllocPolicy() policy.Policy { return f.allocPol }
