package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
	"repro/internal/workload"
)

// Tenant is one fleet resource principal: it runs its spec's round loop
// forever, asking the placement policy for a device before every round.
// The first touch of a device pays the usual context/channel setup
// syscalls; thereafter the tenant's warm working set lives on whichever
// device ran its previous round, and a round placed anywhere else first
// pays WorkingSet of device time to reconstruct it (data migration plus
// re-initialization kernels occupying the destination engine) — the
// locality cost sticky placement exists to avoid.
type Tenant struct {
	Spec workload.TenantSpec

	fleet   *Fleet
	last    *Node
	clients map[*Node]*userlib.Client
	tasks   map[*Node]*neon.Task
	rng     *sim.RNG
	busy0   sim.Duration
	work0   core.Work

	// allocWeight is the fair-share weight the round-based allocator
	// last applied (0 = no allocator, use the spec weight), and
	// hintClasses the class speeds the active policy wants this
	// tenant's work steered toward (empty = no preference).
	allocWeight float64
	hintClasses []float64

	// Continuation-machine state (DESIGN.md §14), mirroring
	// workload.App: phase/idx drive the round, pending/fencing the
	// frame fence, awaiting the blocking request in flight, slowFault
	// the committed fault handoff, and stopped halts the slow lane.
	eng        *sim.Engine
	reqs       []workload.Req
	coldKind   gpu.Kind
	node       *Node
	client     *userlib.Client
	phase      int
	idx        int
	pending    int
	fencing    bool
	awaiting   *gpu.Request
	placed     bool
	slowFault  bool
	stopped    bool
	retire     []*gpu.Request
	roundStart sim.Time
	slowGate   *sim.Gate
	stepFn     func()
	fireDone   func(*gpu.Request)
	blockDone  func(*gpu.Request)

	// Rounds and RoundTime accumulate since the last ResetStats.
	Rounds    int64
	RoundTime sim.Duration
	// Migrations counts rounds that moved off the previous device;
	// ColdTime is the device time those moves spent rebuilding state.
	Migrations int64
	ColdTime   sim.Duration
	// PerDevice counts rounds completed on each node index.
	PerDevice []int64

	setupErr error
}

// NewTenant registers a tenant with the fleet without starting the
// closed-loop round loop. The open-loop serving layer (internal/traffic)
// uses this: it drives the tenant's requests from an arrival process
// instead, but still wants fleet placement, per-node depth accounting,
// and the tenant's lazily opened per-device clients.
//
// Invalid contract terms (negative or non-finite weight, unknown tier)
// panic, mirroring workload.FleetPopulation's convention: tenant specs
// are experiment-grid configuration, not user input, and a bad weight
// silently clamped to 1 by the ledgers would corrupt every fairness
// table downstream. The serving layer validates with a proper error
// before reaching here.
func (f *Fleet) NewTenant(spec workload.TenantSpec) *Tenant {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("fleet: %v", err))
	}
	t := &Tenant{
		Spec:      spec,
		fleet:     f,
		clients:   make(map[*Node]*userlib.Client),
		tasks:     make(map[*Node]*neon.Task),
		rng:       sim.NewRNG(sim.StreamSeed(f.seed, "tenant", len(f.tenants))),
		PerDevice: make([]int64, len(f.nodes)),
	}
	f.tenants = append(f.tenants, t)
	return t
}

// Launch starts a tenant's round loop on the fleet.
func (f *Fleet) Launch(spec workload.TenantSpec) *Tenant {
	t := f.NewTenant(spec)
	f.eng.Spawn("tenant/"+spec.Name, t.run)
	return t
}

// SetupError returns any context/channel allocation failure.
func (t *Tenant) SetupError() error { return t.setupErr }

// AvgRound returns the mean round time since the last ResetStats.
func (t *Tenant) AvgRound() sim.Duration {
	if t.Rounds == 0 {
		return 0
	}
	return t.RoundTime / sim.Duration(t.Rounds)
}

// ServiceTime returns the raw device time the tenant has received
// across the fleet since the last ResetStats — including any
// working-set reconstruction, which is capacity the tenant consumed.
// On a heterogeneous fleet raw device time overstates service received
// on slow devices; compare tenants with NormalizedWork instead.
func (t *Tenant) ServiceTime() sim.Duration {
	var b sim.Duration
	for _, task := range t.tasks {
		b += task.BusyTime()
	}
	return b - t.busy0
}

// NormalizedWork returns the class-normalized service the tenant has
// received across the fleet since the last ResetStats: per-device busy
// time scaled by each device's class speed, summed. This is the unit
// the fleet board accounts fairness in, so it is the unit per-tenant
// shares must be compared in on a mixed fleet. (The sum is commutative,
// so map iteration order does not affect it.)
func (t *Tenant) NormalizedWork() core.Work {
	var w core.Work
	for n, task := range t.tasks {
		w += core.WorkFor(task.BusyTime(), n.Speed())
	}
	return w - t.work0
}

// WeightedWork returns the tenant's normalized work divided by its
// effective fair-share weight — the unit weighted fair queueing
// equalizes across tenants. Under contention every backlogged tenant's
// WeightedWork should advance at the same rate no matter how its weight
// (and hence its raw share) differs; the tiers experiment's fairness
// columns are computed over it.
func (t *Tenant) WeightedWork() core.Work {
	return core.PerWeight(t.NormalizedWork(), t.EffectiveWeight())
}

// EffectiveWeight returns the fair-share weight the mechanism charges
// the tenant at: the weight the round-based allocator last applied when
// an allocation policy is active, otherwise the spec's own weight.
func (t *Tenant) EffectiveWeight() float64 {
	if t.allocWeight > 0 {
		return t.allocWeight
	}
	return t.Spec.ShareWeight()
}

// setAllocWeight installs an allocator-computed weight: every live
// kernel task re-weights immediately (the DFQ ledgers read Task.Weight
// at each charging step, so no ledger state needs rewriting — see the
// dynamic-weight contract in core/dfq.go), and tasks opened later
// inherit it at creation.
func (t *Tenant) setAllocWeight(w float64) {
	t.allocWeight = w
	for _, task := range t.tasks {
		task.Weight = t.EffectiveWeight()
	}
}

// ResetStats clears round statistics and re-baselines service time.
func (t *Tenant) ResetStats() {
	t.busy0 += t.ServiceTime()
	t.work0 += t.NormalizedWork()
	t.Rounds = 0
	t.RoundTime = 0
	t.Migrations = 0
	t.ColdTime = 0
	t.PerDevice = make([]int64, len(t.fleet.nodes))
}

// Client lazily opens the tenant's context and channels on the node,
// paying the setup syscalls on first touch (the exported form for the
// serving layer's dispatchers).
func (t *Tenant) Client(p *sim.Proc, n *Node) (*userlib.Client, error) {
	return t.clientOn(p, n)
}

// Task returns the tenant's kernel task on the node, nil before the
// first Client call there.
func (t *Tenant) Task(n *Node) *neon.Task { return t.tasks[n] }

// clientOn lazily opens the tenant's context and channels on the node,
// paying the setup syscalls on first touch.
func (t *Tenant) clientOn(p *sim.Proc, n *Node) (*userlib.Client, error) {
	if c, ok := t.clients[n]; ok {
		if !c.Task.Alive {
			// Killed on this node: the logical handle is dead and round
			// loops must stop rather than spin on nil submissions.
			return nil, gpu.ErrContextDead
		}
		return c, nil
	}
	task := n.Kernel.NewTask(t.Spec.Name)
	task.Weight = t.EffectiveWeight()
	kinds := t.Spec.Channels
	if len(kinds) == 0 {
		kinds = []gpu.Kind{gpu.Compute}
	}
	// Logical (virtual-context) handle: the node's kernel multiplexes
	// the device's fixed hardware-context pool underneath, so tenant
	// populations are no longer capped by gpu.Config.MaxContexts.
	c, err := userlib.OpenVirtual(p, n.Kernel, task, t.Spec.Name, kinds...)
	if err != nil {
		return nil, err
	}
	t.tasks[n] = task
	t.clients[n] = c
	return c, nil
}

// Tenant round-machine phases, mirroring workload.App's machine: the
// placed round loop runs as an engine-driven state machine on the async
// submission path, and the tenant's process survives as the slow lane
// for anything that must block — first-touch client setup, blocking
// attach of a detached virtual context, and submissions committed to
// the fault path at an engine-instant refusal (see userlib.Engaged).
const (
	tphPlace  = iota // round start: place, open client, cold rebuild
	tphCold          // cold-rebuild request in flight
	tphThink         // jittered CPU think timer in flight
	tphSubmit        // submitting reqs[idx:]
	tphFence         // waiting for pending to reach zero
	tphOff           // off-period timer in flight
)

// run drives the tenant's placed round loop as a continuation machine.
func (t *Tenant) run(p *sim.Proc) {
	t.eng = p.Engine()
	t.reqs = t.Spec.Requests()
	t.coldKind = gpu.Compute
	if kinds := t.Spec.Channels; len(kinds) > 0 {
		t.coldKind = kinds[0]
	}
	t.slowGate = t.eng.NewGate("slow-tenant-" + t.Spec.Name)
	t.stepFn = func() { t.step(nil) }
	t.fireDone = func(r *gpu.Request) { t.oneDone(r) }
	t.blockDone = func(*gpu.Request) { t.eng.After(0, t.stepFn) }

	t.phase = tphPlace
	t.step(p)
	for !t.stopped {
		p.Wait(t.slowGate)
		if t.stopped {
			return
		}
		t.step(p)
	}
}

// oneDone is the completion continuation of fire-and-forget requests.
func (t *Tenant) oneDone(r *gpu.Request) {
	t.pending--
	if !r.Aborted {
		t.retire = append(t.retire, r)
	}
	if t.fencing && t.pending == 0 {
		t.eng.After(0, t.stepFn)
	}
}

// step advances the round machine; p == nil means engine context (must
// not block — blocking work hands off to the slow lane), p != nil means
// the slow-lane process.
func (t *Tenant) step(p *sim.Proc) {
	if r := t.awaiting; r != nil {
		t.awaiting = nil
		r.Release()
		t.advance()
	}
	for {
		switch t.phase {
		case tphPlace:
			// Place exactly once per round: a slow-lane handoff re-enters
			// this phase, and the placement decision must not be redrawn
			// (round-robin advances on every Place call).
			if !t.placed {
				t.roundStart = t.eng.Now()
				t.node = t.fleet.Place(t)
				t.placed = true
			}
			if p == nil {
				if c, ok := t.clients[t.node]; !ok || !c.Task.Alive {
					// First touch (setup syscalls) or a dead handle:
					// both need the process.
					t.toProc(t.coldKind, false)
					return
				}
			}
			client, err := t.clientOn(p, t.node)
			if err != nil {
				t.setupErr = err
				t.fleet.roundDone(t.node)
				t.stop()
				return
			}
			t.client = client
			cold := t.last != nil && t.last != t.node && t.Spec.WorkingSet > 0
			t.last = t.node
			if !cold {
				t.phase = tphThink
				continue
			}
			// Cold round: rebuild the warm state before the round's own
			// requests. The reconstruction occupies the destination
			// engine, so migration costs the fleet real capacity.
			t.Migrations++
			t.ColdTime += t.Spec.WorkingSet
			t.phase = tphCold
		case tphCold:
			if !t.submitBlocking(p, t.coldKind, t.Spec.WorkingSet) {
				return
			}
		case tphThink:
			t.phase = tphSubmit
			t.idx = 0
			t.eng.After(t.rng.Jitter(t.Spec.CPU, t.Spec.Jitter), t.stepFn)
			return
		case tphSubmit:
			if t.idx == len(t.reqs) {
				t.phase = tphFence
				continue
			}
			rq := t.reqs[t.idx]
			if rq.Trivial || t.Spec.Pipelined {
				fault := t.slowFault
				t.slowFault = false
				if !fault {
					if _, ok := t.client.SubmitAsync(t.eng, rq.Kind, rq.Size, t.fireDone); ok {
						t.pending++
						t.idx++
						dw := t.node.Kernel.Costs().DirectWrite
						if p == nil {
							t.eng.After(dw, t.stepFn)
							return
						}
						p.Sleep(dw)
						continue
					}
					if p == nil {
						t.toProc(rq.Kind, true)
						return
					}
				}
				if fault {
					t.pending++
					if t.client.SubmitEngaged(p, rq.Kind, rq.Size, t.fireDone) == nil {
						t.pending--
					}
				} else if r := t.client.SubmitDetached(p, rq.Kind, rq.Size); r != nil {
					t.pending++
					if r.IsDone() {
						t.fireDone(r)
					} else {
						r.OnDone = t.fireDone
					}
				}
				t.idx++
			} else if !t.submitBlocking(p, rq.Kind, rq.Size) {
				return
			}
		case tphFence:
			if t.pending > 0 {
				t.fencing = true
				return
			}
			t.fencing = false
			for i, r := range t.retire {
				r.Release()
				t.retire[i] = nil
			}
			t.retire = t.retire[:0]
			t.fleet.roundDone(t.node)
			if off := t.Spec.OffTime(); off > 0 {
				t.phase = tphOff
				t.eng.After(off, t.stepFn)
				return
			}
			t.endRound()
		case tphOff:
			t.endRound()
		}
	}
}

// submitBlocking issues one submit-and-wait request for the current
// phase. It returns false when the machine must yield: the request is
// in flight with a continuation, or the submission was handed to the
// slow lane. On a nil (dead-handle) submission it advances as the old
// blocking loop did — the next placement notices the dead task.
func (t *Tenant) submitBlocking(p *sim.Proc, kind gpu.Kind, size sim.Duration) bool {
	fault := t.slowFault
	t.slowFault = false
	if !fault {
		if r, ok := t.client.SubmitAsync(t.eng, kind, size, t.blockDone); ok {
			t.awaiting = r
			return false
		}
		if p == nil {
			t.toProc(kind, true)
			return false
		}
	}
	var r *gpu.Request
	if fault {
		if r = t.client.SubmitEngaged(p, kind, size, nil); r != nil {
			p.Wait(r.DoneGate())
		}
	} else {
		r = t.client.SubmitSync(p, kind, size)
	}
	if r != nil {
		r.Release()
	}
	t.advance()
	return true
}

// advance moves past the blocking submission that just completed: the
// cold rebuild yields to the think phase, a round request to the next
// request in the sequence.
func (t *Tenant) advance() {
	if t.phase == tphCold {
		t.phase = tphThink
	} else {
		t.idx++
	}
}

// endRound accounts the finished round; the step loop then re-enters
// tphPlace in the same turn, exactly as the blocking loop began its
// next round without yielding.
func (t *Tenant) endRound() {
	now := t.eng.Now()
	t.Rounds++
	t.PerDevice[t.node.Index]++
	t.RoundTime += now.Sub(t.roundStart)
	t.phase = tphPlace
	t.placed = false
}

// toProc hands the machine to the slow-lane process. When the handoff
// is for a refused submission, the fault-or-direct decision is
// committed here, at the refusal instant, because the scheduler may
// flip the channel's engagement within the same instant (see
// userlib.Engaged and workload.App.toProc).
func (t *Tenant) toProc(kind gpu.Kind, submission bool) {
	if submission {
		t.slowFault = t.client.Engaged(kind)
	}
	t.slowGate.Signal()
}

// stop halts the machine and releases the slow-lane process.
func (t *Tenant) stop() {
	t.stopped = true
	t.slowGate.Signal()
}
