package fleet

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
	"repro/internal/workload"
)

// Tenant is one fleet resource principal: it runs its spec's round loop
// forever, asking the placement policy for a device before every round.
// The first touch of a device pays the usual context/channel setup
// syscalls; thereafter the tenant's warm working set lives on whichever
// device ran its previous round, and a round placed anywhere else first
// pays WorkingSet of device time to reconstruct it (data migration plus
// re-initialization kernels occupying the destination engine) — the
// locality cost sticky placement exists to avoid.
type Tenant struct {
	Spec workload.TenantSpec

	fleet   *Fleet
	last    *Node
	clients map[*Node]*userlib.Client
	tasks   map[*Node]*neon.Task
	rng     *sim.RNG
	busy0   sim.Duration
	work0   core.Work

	// Rounds and RoundTime accumulate since the last ResetStats.
	Rounds    int64
	RoundTime sim.Duration
	// Migrations counts rounds that moved off the previous device;
	// ColdTime is the device time those moves spent rebuilding state.
	Migrations int64
	ColdTime   sim.Duration
	// PerDevice counts rounds completed on each node index.
	PerDevice []int64

	setupErr error
}

// NewTenant registers a tenant with the fleet without starting the
// closed-loop round loop. The open-loop serving layer (internal/traffic)
// uses this: it drives the tenant's requests from an arrival process
// instead, but still wants fleet placement, per-node depth accounting,
// and the tenant's lazily opened per-device clients.
func (f *Fleet) NewTenant(spec workload.TenantSpec) *Tenant {
	t := &Tenant{
		Spec:      spec,
		fleet:     f,
		clients:   make(map[*Node]*userlib.Client),
		tasks:     make(map[*Node]*neon.Task),
		rng:       sim.NewRNG(sim.StreamSeed(f.seed, "tenant", len(f.tenants))),
		PerDevice: make([]int64, len(f.nodes)),
	}
	f.tenants = append(f.tenants, t)
	return t
}

// Launch starts a tenant's round loop on the fleet.
func (f *Fleet) Launch(spec workload.TenantSpec) *Tenant {
	t := f.NewTenant(spec)
	f.eng.Spawn("tenant/"+spec.Name, t.run)
	return t
}

// SetupError returns any context/channel allocation failure.
func (t *Tenant) SetupError() error { return t.setupErr }

// AvgRound returns the mean round time since the last ResetStats.
func (t *Tenant) AvgRound() sim.Duration {
	if t.Rounds == 0 {
		return 0
	}
	return t.RoundTime / sim.Duration(t.Rounds)
}

// ServiceTime returns the raw device time the tenant has received
// across the fleet since the last ResetStats — including any
// working-set reconstruction, which is capacity the tenant consumed.
// On a heterogeneous fleet raw device time overstates service received
// on slow devices; compare tenants with NormalizedWork instead.
func (t *Tenant) ServiceTime() sim.Duration {
	var b sim.Duration
	for _, task := range t.tasks {
		b += task.BusyTime()
	}
	return b - t.busy0
}

// NormalizedWork returns the class-normalized service the tenant has
// received across the fleet since the last ResetStats: per-device busy
// time scaled by each device's class speed, summed. This is the unit
// the fleet board accounts fairness in, so it is the unit per-tenant
// shares must be compared in on a mixed fleet. (The sum is commutative,
// so map iteration order does not affect it.)
func (t *Tenant) NormalizedWork() core.Work {
	var w core.Work
	for n, task := range t.tasks {
		w += core.WorkFor(task.BusyTime(), n.Speed())
	}
	return w - t.work0
}

// WeightedWork returns the tenant's normalized work divided by its
// fair-share weight — the unit weighted fair queueing equalizes across
// tenants. Under contention every backlogged tenant's WeightedWork
// should advance at the same rate no matter how its Weight (and hence
// its raw share) differs; the tiers experiment's fairness columns are
// computed over it.
func (t *Tenant) WeightedWork() core.Work {
	return core.PerWeight(t.NormalizedWork(), t.Spec.ShareWeight())
}

// ResetStats clears round statistics and re-baselines service time.
func (t *Tenant) ResetStats() {
	t.busy0 += t.ServiceTime()
	t.work0 += t.NormalizedWork()
	t.Rounds = 0
	t.RoundTime = 0
	t.Migrations = 0
	t.ColdTime = 0
	t.PerDevice = make([]int64, len(t.fleet.nodes))
}

// Client lazily opens the tenant's context and channels on the node,
// paying the setup syscalls on first touch (the exported form for the
// serving layer's dispatchers).
func (t *Tenant) Client(p *sim.Proc, n *Node) (*userlib.Client, error) {
	return t.clientOn(p, n)
}

// Task returns the tenant's kernel task on the node, nil before the
// first Client call there.
func (t *Tenant) Task(n *Node) *neon.Task { return t.tasks[n] }

// clientOn lazily opens the tenant's context and channels on the node,
// paying the setup syscalls on first touch.
func (t *Tenant) clientOn(p *sim.Proc, n *Node) (*userlib.Client, error) {
	if c, ok := t.clients[n]; ok {
		if !c.Task.Alive {
			// Killed on this node: the logical handle is dead and round
			// loops must stop rather than spin on nil submissions.
			return nil, gpu.ErrContextDead
		}
		return c, nil
	}
	task := n.Kernel.NewTask(t.Spec.Name)
	task.Weight = t.Spec.ShareWeight()
	kinds := t.Spec.Channels
	if len(kinds) == 0 {
		kinds = []gpu.Kind{gpu.Compute}
	}
	// Logical (virtual-context) handle: the node's kernel multiplexes
	// the device's fixed hardware-context pool underneath, so tenant
	// populations are no longer capped by gpu.Config.MaxContexts.
	c, err := userlib.OpenVirtual(p, n.Kernel, task, t.Spec.Name, kinds...)
	if err != nil {
		return nil, err
	}
	t.tasks[n] = task
	t.clients[n] = c
	return c, nil
}

// run is the tenant's placed round loop.
func (t *Tenant) run(p *sim.Proc) {
	reqs := t.Spec.Requests()
	kinds := t.Spec.Channels
	coldKind := gpu.Compute
	if len(kinds) > 0 {
		coldKind = kinds[0]
	}
	for {
		start := p.Now()
		n := t.fleet.Place(t)
		client, err := t.clientOn(p, n)
		if err != nil {
			t.setupErr = err
			t.fleet.roundDone(n)
			return
		}
		if t.last != nil && t.last != n && t.Spec.WorkingSet > 0 {
			// Cold round: rebuild the warm state before the round's own
			// requests. The reconstruction occupies the destination
			// engine, so migration costs the fleet real capacity.
			t.Migrations++
			t.ColdTime += t.Spec.WorkingSet
			client.SubmitSync(p, coldKind, t.Spec.WorkingSet)
		}
		t.last = n

		p.Sleep(t.rng.Jitter(t.Spec.CPU, t.Spec.Jitter))
		for _, rq := range reqs {
			if rq.Trivial || t.Spec.Pipelined {
				client.Submit(p, rq.Kind, rq.Size)
			} else {
				client.SubmitSync(p, rq.Kind, rq.Size)
			}
		}
		client.Fence(p)
		t.fleet.roundDone(n)

		if off := t.Spec.OffTime(); off > 0 {
			p.Sleep(off)
		}
		t.Rounds++
		t.PerDevice[n.Index]++
		t.RoundTime += p.Now().Sub(start)
	}
}
