package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/workload"
)

const ms = time.Millisecond

// wms is a board charge of n milliseconds of normalized work.
func wms(n int) core.Work { return core.Work(n) * core.Work(ms) }

func TestBoardAccumulatesAcrossDevices(t *testing.T) {
	b := NewBoard()

	// A consumes on two devices in the same window; B on one.
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(5), "B": wms(5)},
		map[string]bool{"A": true, "B": true})
	leads := b.ReconcileEpisode("dev1", map[string]core.Work{"A": wms(5)},
		map[string]bool{"A": true})

	if got := b.VirtualTime("A"); got != wms(10) {
		t.Fatalf("A virtual time = %v, want 10ms (charges from both devices)", got)
	}
	if leads["A"] != wms(10)-b.SystemVirtualTime() {
		t.Fatalf("A lead = %v, sysVT = %v", leads["A"], b.SystemVirtualTime())
	}
	if leads["A"] <= 0 {
		t.Fatalf("multi-device consumer should lead the system VT, got %v", leads["A"])
	}
}

func TestBoardSystemVTFollowsOldestActive(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(8), "B": wms(2)},
		map[string]bool{"A": true, "B": true})
	if got := b.SystemVirtualTime(); got != wms(2) {
		t.Fatalf("sysVT = %v, want 2ms (oldest active VT)", got)
	}
	// B goes idle: it forfeits unused credit up to the system VT.
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(4)},
		map[string]bool{"A": true, "B": false})
	if got, sys := b.VirtualTime("B"), b.SystemVirtualTime(); got != sys {
		t.Fatalf("idle B vt = %v, want forfeited to sysVT %v", got, sys)
	}
}

func TestBoardLateJoinerStartsAtSystemVT(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(8)},
		map[string]bool{"A": true})
	leads := b.ReconcileEpisode("dev1", nil, map[string]bool{"C": true})
	if leads["C"] != 0 {
		t.Fatalf("late joiner lead = %v, want 0 (starts at system VT)", leads["C"])
	}
}

// TestBoardHeterogeneousCharges reconciles episodes whose per-episode
// charge rates differ because the reporting devices are of different
// classes. Once charges are stated in normalized work, equal *work*
// must mean equal ledger positions no matter which device reported it:
// 10ms of consumer-card device time (speed 0.5) and 2.5ms of nextgen
// time (speed 2.0) are the same 5ms of work.
func TestBoardHeterogeneousCharges(t *testing.T) {
	slow, err := cost.ClassByName("consumer")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := cost.ClassByName("nextgen")
	if err != nil {
		t.Fatal(err)
	}

	b := NewBoard()
	// Register both principals before any charge so neither gets a
	// late-joiner head start.
	b.ReconcileEpisode("dev-slow", nil, map[string]bool{"A": true})
	b.ReconcileEpisode("dev-fast", nil, map[string]bool{"B": true})
	// A is served by the slow device, B by the fast one; both receive
	// the same normalized work per episode, delivered as very different
	// amounts of device time.
	for i := 0; i < 4; i++ {
		b.ReconcileEpisode("dev-slow",
			map[string]core.Work{"A": core.WorkFor(10*ms, slow.Speed)},
			map[string]bool{"A": true})
		b.ReconcileEpisode("dev-fast",
			map[string]core.Work{"B": core.WorkFor(2500*time.Microsecond, fast.Speed)},
			map[string]bool{"B": true})
	}
	if va, vb := b.VirtualTime("A"), b.VirtualTime("B"); va != vb {
		t.Fatalf("equal normalized work must reconcile to equal VTs: A=%v B=%v", va, vb)
	}
	if got := b.VirtualTime("A"); got != wms(20) {
		t.Fatalf("A vt = %v, want 20ms of work over 4 episodes", got)
	}

	// The same episodes charged raw (device time, unscaled) split the
	// ledger 4:1 — the distortion the RawCharges ablation reintroduces
	// and the hetero experiment shows starving slow-device tenants.
	raw := NewBoard()
	raw.ReconcileEpisode("dev-slow", nil, map[string]bool{"A": true})
	raw.ReconcileEpisode("dev-fast", nil, map[string]bool{"B": true})
	for i := 0; i < 4; i++ {
		raw.ReconcileEpisode("dev-slow", map[string]core.Work{"A": wms(10)},
			map[string]bool{"A": true})
		raw.ReconcileEpisode("dev-fast",
			map[string]core.Work{"B": core.Work(2500 * time.Microsecond)},
			map[string]bool{"B": true})
	}
	if va, vb := raw.VirtualTime("A"), raw.VirtualTime("B"); va != 4*vb {
		t.Fatalf("raw charges should overcharge the slow-device tenant 4:1, got A=%v B=%v", va, vb)
	}
}

// TestBoardEpochLeadBound pins the epoch-batching contract: against a
// per-episode board on an identical charge stream, a batched board's
// reported leads are never lower (denial stays conservative — the stale
// system virtual time is an under-estimate), and never exceed the
// per-episode lead by more than the total work charged since the
// batched board's last fold. Every principal stays fleet-active so the
// only divergence source is the fold cadence itself.
func TestBoardEpochLeadBound(t *testing.T) {
	const epoch = 4
	b1 := NewBoardWith(8, 1)
	be := NewBoardWith(8, epoch)
	rng := sim.NewRNG(sim.StreamSeed(1, "board-epoch-bound", 0))

	names := []string{"A", "B", "C", "D", "E"}
	var sinceFold core.Work
	for ep := 0; ep < 200; ep++ {
		charges := map[string]core.Work{}
		active := map[string]bool{}
		var total core.Work
		for j, n := range names {
			// Skewed rates keep a genuine leader and a laggard.
			c := wms(1+rng.Intn(3*(j+1))) / 4
			charges[n] = c
			active[n] = true
			total += c
		}
		dev := "dev" + string(rune('0'+ep%2))
		foldsBefore := be.Folds
		l1 := b1.ReconcileEpisode(dev, charges, active)
		le := be.ReconcileEpisode(dev, charges, active)
		if be.Folds > foldsBefore {
			sinceFold = 0
		} else {
			sinceFold += total
		}
		for _, n := range names {
			if le[n] < l1[n] {
				t.Fatalf("episode %d: batched lead for %s = %v below per-episode lead %v; denial no longer conservative",
					ep, n, le[n], l1[n])
			}
			if over := le[n] - l1[n]; over > sinceFold {
				t.Fatalf("episode %d: batched lead for %s over-estimates by %v, more than the %v charged since the last fold",
					ep, n, over, sinceFold)
			}
		}
	}
	if want := int64(200 / epoch); be.Folds != want {
		t.Fatalf("batched board folded %d times over 200 episodes, want %d (epoch %d)", be.Folds, want, epoch)
	}
	if b1.Folds != b1.Episodes {
		t.Fatalf("per-episode board must fold every episode: %d folds, %d episodes", b1.Folds, b1.Episodes)
	}
}

// TestBoardShardCountInvariance reruns one randomized reconciliation
// stream on boards with 1, 3, and 16 shards and requires identical
// virtual times, system virtual time, and reported leads: sharding is a
// cost structure, never a semantics knob.
func TestBoardShardCountInvariance(t *testing.T) {
	run := func(shards int) (*Board, []map[string]core.Work) {
		b := NewBoardWith(shards, 1)
		rng := sim.NewRNG(sim.StreamSeed(1, "board-shard-invariance", 0))
		names := make([]string, 40)
		for i := range names {
			names[i] = "tenant-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		var all []map[string]core.Work
		for ep := 0; ep < 120; ep++ {
			charges := map[string]core.Work{}
			active := map[string]bool{}
			for k := 0; k < 12; k++ {
				n := names[rng.Intn(len(names))]
				charges[n] = wms(1 + rng.Intn(5))
				active[n] = true
			}
			for k := 0; k < 4; k++ {
				active[names[rng.Intn(len(names))]] = false
			}
			all = append(all, b.ReconcileEpisode("dev"+string(rune('0'+ep%3)), charges, active))
		}
		return b, all
	}

	ref, refLeads := run(1)
	for _, shards := range []int{3, 16} {
		b, leads := run(shards)
		if got, want := b.SystemVirtualTime(), ref.SystemVirtualTime(); got != want {
			t.Fatalf("%d shards: sysVT = %v, want %v (1 shard)", shards, got, want)
		}
		for _, n := range ref.Principals() {
			if got, want := b.VirtualTime(n), ref.VirtualTime(n); got != want {
				t.Fatalf("%d shards: %s vt = %v, want %v (1 shard)", shards, n, got, want)
			}
		}
		for ep := range refLeads {
			for n, want := range refLeads[ep] {
				if got := leads[ep][n]; got != want {
					t.Fatalf("%d shards: episode %d lead for %s = %v, want %v (1 shard)", shards, ep, n, got, want)
				}
			}
		}
	}
}

// TestBoardShardUnderflowPanic pins the corruption tripwire: a
// deactivation that finds its shard heap slot not holding the principal
// it claims must panic with the tenant's name rather than let the
// fairness ledger rot silently.
func TestBoardShardUnderflowPanic(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]core.Work{"victim": wms(3)},
		map[string]bool{"victim": true})
	// Corrupt the slab: point the principal at a heap slot that does not
	// exist, as a lost heap write would.
	b.slab[b.byName["victim"]].heapPos = 99

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deactivating a principal with corrupt shard accounting must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, `"victim"`) || !strings.Contains(msg, "underflow") {
			t.Fatalf("panic %v must name the tenant and the underflow", r)
		}
	}()
	b.ReconcileEpisode("dev0", nil, map[string]bool{"victim": false})
}

// TestFleetWideFairness pins the tentpole property: a principal drawing
// service from two devices at once is throttled everywhere, so its
// fleet-wide share converges to the same as a single-device principal's.
// Without the board, the wide principal keeps one full device plus a
// half share of the contended one (~3x a fair share).
func TestFleetWideFairness(t *testing.T) {
	ratio := func(board *Board) float64 {
		eng := sim.NewEngine()
		mkNode := func(name string) *neon.Kernel {
			cfg := gpu.DefaultConfig()
			cfg.Name = name
			dcfg := core.DFQConfig{}
			if board != nil {
				dcfg.Fleet = board
			}
			return neon.NewKernel(gpu.New(eng, cfg), core.NewDisengagedFairQueueing(dcfg))
		}
		k0, k1 := mkNode("dev0"), mkNode("dev1")
		spec := workload.Throttle(300*time.Microsecond, 0)

		// "wide" runs on both devices at once; "narrow" shares dev0.
		wide := spec
		wide.Name = "wide"
		narrow := spec
		narrow.Name = "narrow"
		w0 := workload.Launch(k0, wide, sim.NewRNG(1))
		w1 := workload.Launch(k1, wide, sim.NewRNG(2))
		n0 := workload.Launch(k0, narrow, sim.NewRNG(3))
		eng.RunFor(500 * ms)

		wideBusy := w0.Task.BusyTime() + w1.Task.BusyTime()
		return float64(wideBusy) / float64(n0.Task.BusyTime())
	}

	without := ratio(nil)
	with := ratio(NewBoard())
	if without < 2.2 {
		t.Fatalf("without reconciliation the wide principal should get ~3x, got %.2fx", without)
	}
	if with >= without {
		t.Fatalf("reconciliation did not reduce the wide principal's share: %.2fx vs %.2fx", with, without)
	}
	if with > 1.8 {
		t.Fatalf("with reconciliation the wide principal should be near parity, got %.2fx", with)
	}
}

// eagerBoard is the pre-shard reference semantics of the fleet
// virtual-time exchange, written as directly as possible: flat maps, a
// full scan per fold, and the idle forfeit applied *eagerly* to every
// fleet-idle principal at the end of each episode — where the real
// board clamps lazily at charge/activate/read time. It exists only for
// the differential test below.
type eagerBoard struct {
	vt       map[string]core.Work
	activeOn map[string]map[string]bool
	sysVT    core.Work
}

func newEagerBoard() *eagerBoard {
	return &eagerBoard{vt: map[string]core.Work{}, activeOn: map[string]map[string]bool{}}
}

func (e *eagerBoard) ensure(name string) {
	if _, ok := e.vt[name]; !ok {
		e.vt[name] = e.sysVT
		e.activeOn[name] = map[string]bool{}
	}
}

// episode mirrors ReconcileEpisode's contract: all charges land first,
// then activity marks, then the fold, then the eager idle clamp, then
// leads. Every step is commutative across principals, so map iteration
// order cannot change the outcome.
func (e *eagerBoard) episode(device string, charges map[string]core.Work,
	active map[string]bool) map[string]core.Work {
	for name := range charges {
		e.ensure(name)
	}
	for name := range active {
		e.ensure(name)
	}
	for name, c := range charges {
		e.vt[name] += c
	}
	for name, a := range active {
		if a {
			e.activeOn[name][device] = true
		} else {
			delete(e.activeOn[name], device)
		}
	}
	first := true
	var min core.Work
	for name, devs := range e.activeOn {
		if len(devs) == 0 {
			continue
		}
		if vt := e.vt[name]; first || vt < min {
			min, first = vt, false
		}
	}
	if !first && min > e.sysVT {
		e.sysVT = min
	}
	for name, devs := range e.activeOn {
		if len(devs) == 0 && e.vt[name] < e.sysVT {
			e.vt[name] = e.sysVT
		}
	}
	leads := make(map[string]core.Work)
	for name := range charges {
		leads[name] = e.vt[name] - e.sysVT
	}
	for name := range active {
		leads[name] = e.vt[name] - e.sysVT
	}
	return leads
}

// TestBoardEagerClampDifferential pins ReconcileEpisode's same-episode
// ordering against the eager-clamp reference: a principal charged and
// deactivated in the *same* episode must keep the charge, leave the
// active set, and forfeit down to the system virtual time only when it
// later catches up — exactly what charges-before-marks plus the lazy
// read clamp produce. The storm forces that case every episode (some
// tenants appear in charges and in active=false simultaneously) across
// three reporting devices, and the comparison covers every reported
// lead, every principal's virtual time, and the system virtual time, at
// shard counts 1 and 8.
func TestBoardEagerClampDifferential(t *testing.T) {
	for _, shards := range []int{1, 8} {
		b := NewBoardWith(shards, 1)
		ref := newEagerBoard()
		rng := sim.NewRNG(sim.StreamSeed(2, "board-eager-differential", shards))
		names := make([]string, 60)
		for i := range names {
			names[i] = "tenant-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		for ep := 0; ep < 300; ep++ {
			charges := map[string]core.Work{}
			active := map[string]bool{}
			for k := 0; k < 10; k++ {
				n := names[rng.Intn(len(names))]
				charges[n] = wms(1 + rng.Intn(5))
				active[n] = true
			}
			// The ordering under test: charge and deactivate at once.
			for k := 0; k < 3; k++ {
				n := names[rng.Intn(len(names))]
				charges[n] = wms(1 + rng.Intn(5))
				active[n] = false
			}
			// Plus plain departures with no same-episode charge.
			for k := 0; k < 3; k++ {
				active[names[rng.Intn(len(names))]] = false
			}
			dev := "dev" + string(rune('0'+ep%3))
			got := b.ReconcileEpisode(dev, charges, active)
			want := ref.episode(dev, charges, active)
			if len(got) != len(want) {
				t.Fatalf("shards %d, episode %d: %d leads reported, reference has %d",
					shards, ep, len(got), len(want))
			}
			for n, w := range want {
				if got[n] != w {
					t.Fatalf("shards %d, episode %d: lead for %s = %v, reference %v",
						shards, ep, n, got[n], w)
				}
			}
			if got, want := b.SystemVirtualTime(), ref.sysVT; got != want {
				t.Fatalf("shards %d, episode %d: sysVT = %v, reference %v", shards, ep, got, want)
			}
		}
		for _, n := range b.Principals() {
			if got, want := b.VirtualTime(n), ref.vt[n]; got != want {
				t.Fatalf("shards %d: final vt for %s = %v, reference %v", shards, n, got, want)
			}
		}
	}
}
