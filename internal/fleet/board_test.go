package fleet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/workload"
)

const ms = time.Millisecond

func TestBoardAccumulatesAcrossDevices(t *testing.T) {
	b := NewBoard()

	// A consumes on two devices in the same window; B on one.
	b.ReconcileEpisode("dev0", map[string]sim.Duration{"A": 5 * ms, "B": 5 * ms},
		map[string]bool{"A": true, "B": true})
	leads := b.ReconcileEpisode("dev1", map[string]sim.Duration{"A": 5 * ms},
		map[string]bool{"A": true})

	if got := b.VirtualTime("A"); got != 10*ms {
		t.Fatalf("A virtual time = %v, want 10ms (charges from both devices)", got)
	}
	if leads["A"] != 10*ms-b.SystemVirtualTime() {
		t.Fatalf("A lead = %v, sysVT = %v", leads["A"], b.SystemVirtualTime())
	}
	if leads["A"] <= 0 {
		t.Fatalf("multi-device consumer should lead the system VT, got %v", leads["A"])
	}
}

func TestBoardSystemVTFollowsOldestActive(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]sim.Duration{"A": 8 * ms, "B": 2 * ms},
		map[string]bool{"A": true, "B": true})
	if got := b.SystemVirtualTime(); got != 2*ms {
		t.Fatalf("sysVT = %v, want 2ms (oldest active VT)", got)
	}
	// B goes idle: it forfeits unused credit up to the system VT.
	b.ReconcileEpisode("dev0", map[string]sim.Duration{"A": 4 * ms},
		map[string]bool{"A": true, "B": false})
	if got, sys := b.VirtualTime("B"), b.SystemVirtualTime(); got != sys {
		t.Fatalf("idle B vt = %v, want forfeited to sysVT %v", got, sys)
	}
}

func TestBoardLateJoinerStartsAtSystemVT(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]sim.Duration{"A": 8 * ms},
		map[string]bool{"A": true})
	leads := b.ReconcileEpisode("dev1", nil, map[string]bool{"C": true})
	if leads["C"] != 0 {
		t.Fatalf("late joiner lead = %v, want 0 (starts at system VT)", leads["C"])
	}
}

// TestFleetWideFairness pins the tentpole property: a principal drawing
// service from two devices at once is throttled everywhere, so its
// fleet-wide share converges to the same as a single-device principal's.
// Without the board, the wide principal keeps one full device plus a
// half share of the contended one (~3x a fair share).
func TestFleetWideFairness(t *testing.T) {
	ratio := func(board *Board) float64 {
		eng := sim.NewEngine()
		mkNode := func(name string) *neon.Kernel {
			cfg := gpu.DefaultConfig()
			cfg.Name = name
			dcfg := core.DFQConfig{}
			if board != nil {
				dcfg.Fleet = board
			}
			return neon.NewKernel(gpu.New(eng, cfg), core.NewDisengagedFairQueueing(dcfg))
		}
		k0, k1 := mkNode("dev0"), mkNode("dev1")
		spec := workload.Throttle(300*time.Microsecond, 0)

		// "wide" runs on both devices at once; "narrow" shares dev0.
		wide := spec
		wide.Name = "wide"
		narrow := spec
		narrow.Name = "narrow"
		w0 := workload.Launch(k0, wide, sim.NewRNG(1))
		w1 := workload.Launch(k1, wide, sim.NewRNG(2))
		n0 := workload.Launch(k0, narrow, sim.NewRNG(3))
		eng.RunFor(500 * ms)

		wideBusy := w0.Task.BusyTime() + w1.Task.BusyTime()
		return float64(wideBusy) / float64(n0.Task.BusyTime())
	}

	without := ratio(nil)
	with := ratio(NewBoard())
	if without < 2.2 {
		t.Fatalf("without reconciliation the wide principal should get ~3x, got %.2fx", without)
	}
	if with >= without {
		t.Fatalf("reconciliation did not reduce the wide principal's share: %.2fx vs %.2fx", with, without)
	}
	if with > 1.8 {
		t.Fatalf("with reconciliation the wide principal should be near parity, got %.2fx", with)
	}
}
