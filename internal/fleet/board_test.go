package fleet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/workload"
)

const ms = time.Millisecond

// wms is a board charge of n milliseconds of normalized work.
func wms(n int) core.Work { return core.Work(n) * core.Work(ms) }

func TestBoardAccumulatesAcrossDevices(t *testing.T) {
	b := NewBoard()

	// A consumes on two devices in the same window; B on one.
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(5), "B": wms(5)},
		map[string]bool{"A": true, "B": true})
	leads := b.ReconcileEpisode("dev1", map[string]core.Work{"A": wms(5)},
		map[string]bool{"A": true})

	if got := b.VirtualTime("A"); got != wms(10) {
		t.Fatalf("A virtual time = %v, want 10ms (charges from both devices)", got)
	}
	if leads["A"] != wms(10)-b.SystemVirtualTime() {
		t.Fatalf("A lead = %v, sysVT = %v", leads["A"], b.SystemVirtualTime())
	}
	if leads["A"] <= 0 {
		t.Fatalf("multi-device consumer should lead the system VT, got %v", leads["A"])
	}
}

func TestBoardSystemVTFollowsOldestActive(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(8), "B": wms(2)},
		map[string]bool{"A": true, "B": true})
	if got := b.SystemVirtualTime(); got != wms(2) {
		t.Fatalf("sysVT = %v, want 2ms (oldest active VT)", got)
	}
	// B goes idle: it forfeits unused credit up to the system VT.
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(4)},
		map[string]bool{"A": true, "B": false})
	if got, sys := b.VirtualTime("B"), b.SystemVirtualTime(); got != sys {
		t.Fatalf("idle B vt = %v, want forfeited to sysVT %v", got, sys)
	}
}

func TestBoardLateJoinerStartsAtSystemVT(t *testing.T) {
	b := NewBoard()
	b.ReconcileEpisode("dev0", map[string]core.Work{"A": wms(8)},
		map[string]bool{"A": true})
	leads := b.ReconcileEpisode("dev1", nil, map[string]bool{"C": true})
	if leads["C"] != 0 {
		t.Fatalf("late joiner lead = %v, want 0 (starts at system VT)", leads["C"])
	}
}

// TestBoardHeterogeneousCharges reconciles episodes whose per-episode
// charge rates differ because the reporting devices are of different
// classes. Once charges are stated in normalized work, equal *work*
// must mean equal ledger positions no matter which device reported it:
// 10ms of consumer-card device time (speed 0.5) and 2.5ms of nextgen
// time (speed 2.0) are the same 5ms of work.
func TestBoardHeterogeneousCharges(t *testing.T) {
	slow, err := cost.ClassByName("consumer")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := cost.ClassByName("nextgen")
	if err != nil {
		t.Fatal(err)
	}

	b := NewBoard()
	// Register both principals before any charge so neither gets a
	// late-joiner head start.
	b.ReconcileEpisode("dev-slow", nil, map[string]bool{"A": true})
	b.ReconcileEpisode("dev-fast", nil, map[string]bool{"B": true})
	// A is served by the slow device, B by the fast one; both receive
	// the same normalized work per episode, delivered as very different
	// amounts of device time.
	for i := 0; i < 4; i++ {
		b.ReconcileEpisode("dev-slow",
			map[string]core.Work{"A": core.WorkFor(10*ms, slow.Speed)},
			map[string]bool{"A": true})
		b.ReconcileEpisode("dev-fast",
			map[string]core.Work{"B": core.WorkFor(2500*time.Microsecond, fast.Speed)},
			map[string]bool{"B": true})
	}
	if va, vb := b.VirtualTime("A"), b.VirtualTime("B"); va != vb {
		t.Fatalf("equal normalized work must reconcile to equal VTs: A=%v B=%v", va, vb)
	}
	if got := b.VirtualTime("A"); got != wms(20) {
		t.Fatalf("A vt = %v, want 20ms of work over 4 episodes", got)
	}

	// The same episodes charged raw (device time, unscaled) split the
	// ledger 4:1 — the distortion the RawCharges ablation reintroduces
	// and the hetero experiment shows starving slow-device tenants.
	raw := NewBoard()
	raw.ReconcileEpisode("dev-slow", nil, map[string]bool{"A": true})
	raw.ReconcileEpisode("dev-fast", nil, map[string]bool{"B": true})
	for i := 0; i < 4; i++ {
		raw.ReconcileEpisode("dev-slow", map[string]core.Work{"A": wms(10)},
			map[string]bool{"A": true})
		raw.ReconcileEpisode("dev-fast",
			map[string]core.Work{"B": core.Work(2500 * time.Microsecond)},
			map[string]bool{"B": true})
	}
	if va, vb := raw.VirtualTime("A"), raw.VirtualTime("B"); va != 4*vb {
		t.Fatalf("raw charges should overcharge the slow-device tenant 4:1, got A=%v B=%v", va, vb)
	}
}

// TestFleetWideFairness pins the tentpole property: a principal drawing
// service from two devices at once is throttled everywhere, so its
// fleet-wide share converges to the same as a single-device principal's.
// Without the board, the wide principal keeps one full device plus a
// half share of the contended one (~3x a fair share).
func TestFleetWideFairness(t *testing.T) {
	ratio := func(board *Board) float64 {
		eng := sim.NewEngine()
		mkNode := func(name string) *neon.Kernel {
			cfg := gpu.DefaultConfig()
			cfg.Name = name
			dcfg := core.DFQConfig{}
			if board != nil {
				dcfg.Fleet = board
			}
			return neon.NewKernel(gpu.New(eng, cfg), core.NewDisengagedFairQueueing(dcfg))
		}
		k0, k1 := mkNode("dev0"), mkNode("dev1")
		spec := workload.Throttle(300*time.Microsecond, 0)

		// "wide" runs on both devices at once; "narrow" shares dev0.
		wide := spec
		wide.Name = "wide"
		narrow := spec
		narrow.Name = "narrow"
		w0 := workload.Launch(k0, wide, sim.NewRNG(1))
		w1 := workload.Launch(k1, wide, sim.NewRNG(2))
		n0 := workload.Launch(k0, narrow, sim.NewRNG(3))
		eng.RunFor(500 * ms)

		wideBusy := w0.Task.BusyTime() + w1.Task.BusyTime()
		return float64(wideBusy) / float64(n0.Task.BusyTime())
	}

	without := ratio(nil)
	with := ratio(NewBoard())
	if without < 2.2 {
		t.Fatalf("without reconciliation the wide principal should get ~3x, got %.2fx", without)
	}
	if with >= without {
		t.Fatalf("reconciliation did not reduce the wide principal's share: %.2fx vs %.2fx", with, without)
	}
	if with > 1.8 {
		t.Fatalf("with reconciliation the wide principal should be near parity, got %.2fx", with)
	}
}
