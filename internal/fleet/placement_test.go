package fleet

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func testFleet(t *testing.T, devices int) *Fleet {
	t.Helper()
	f, err := New(sim.NewEngine(), Config{Devices: devices})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestRoundRobinCycles(t *testing.T) {
	f := testFleet(t, 3)
	p := NewRoundRobin()
	tn := &Tenant{fleet: f}
	for i := 0; i < 7; i++ {
		if got := p.Pick(f, tn); got.Index != i%3 {
			t.Fatalf("pick %d: got node %d, want %d", i, got.Index, i%3)
		}
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	f := testFleet(t, 4)
	f.nodes[0].inflight = 2
	f.nodes[1].inflight = 1
	f.nodes[2].inflight = 1
	f.nodes[3].inflight = 3
	p := NewLeastLoaded()
	if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 1 {
		t.Fatalf("got node %d, want 1 (lowest index among minimum load)", got.Index)
	}
}

func TestLeastLoadedTieBreakDeterminism(t *testing.T) {
	// All-equal loads must always resolve to the lowest index: identical
	// fleet states place identically, run after run.
	f := testFleet(t, 4)
	p := NewLeastLoaded()
	for i := 0; i < 10; i++ {
		if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 0 {
			t.Fatalf("iteration %d: got node %d, want 0", i, got.Index)
		}
	}
}

func TestStickyThresholdBoundary(t *testing.T) {
	f := testFleet(t, 2)
	p := NewLocalitySticky(3)
	tn := &Tenant{fleet: f, last: f.nodes[1]}

	// One below the threshold: stick.
	f.nodes[1].inflight = p.Depth - 1
	if got := p.Pick(f, tn); got.Index != 1 {
		t.Fatalf("load %d < depth %d: got node %d, want sticky node 1",
			p.Depth-1, p.Depth, got.Index)
	}

	// Exactly at the threshold: spill to least-loaded.
	f.nodes[1].inflight = p.Depth
	if got := p.Pick(f, tn); got.Index != 0 {
		t.Fatalf("load %d = depth %d: got node %d, want spill to node 0",
			p.Depth, p.Depth, got.Index)
	}
}

func TestStickyFirstRoundSpills(t *testing.T) {
	f := testFleet(t, 3)
	f.nodes[0].inflight = 1
	p := NewLocalitySticky(3)
	if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 1 {
		t.Fatalf("first round: got node %d, want least-loaded node 1", got.Index)
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil || p == nil {
			t.Fatalf("NewPolicy(%q) = %v, %v", name, p, err)
		}
	}
	for alias, want := range map[string]string{
		"round-robin":     "round-robin",
		"ll":              "least-loaded",
		"locality-sticky": "locality-sticky",
	} {
		p, err := NewPolicy(alias)
		if err != nil || p.Name() != want {
			t.Fatalf("NewPolicy(%q) = %v, %v; want %s", alias, p, err, want)
		}
	}
	_, err := NewPolicy("bogus")
	if err == nil {
		t.Fatal("NewPolicy(bogus) should fail")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name valid policy %q", err, name)
		}
	}
}
