package fleet

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// setLoad forces a node's in-flight count through the fleet's load
// accounting, so the placement index the policies consult stays
// ordered — tests must not poke Node.inflight directly anymore.
func (f *Fleet) setLoad(n *Node, v int) {
	f.addLoad(n, v-n.inflight)
}

func testFleet(t *testing.T, devices int) *Fleet {
	t.Helper()
	f, err := New(sim.NewEngine(), Config{Devices: devices})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestRoundRobinCycles(t *testing.T) {
	f := testFleet(t, 3)
	p := NewRoundRobin()
	tn := &Tenant{fleet: f}
	for i := 0; i < 7; i++ {
		if got := p.Pick(f, tn); got.Index != i%3 {
			t.Fatalf("pick %d: got node %d, want %d", i, got.Index, i%3)
		}
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	f := testFleet(t, 4)
	f.setLoad(f.nodes[0], 2)
	f.setLoad(f.nodes[1], 1)
	f.setLoad(f.nodes[2], 1)
	f.setLoad(f.nodes[3], 3)
	p := NewLeastLoaded()
	if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 1 {
		t.Fatalf("got node %d, want 1 (lowest index among minimum load)", got.Index)
	}
}

func TestLeastLoadedTieBreakDeterminism(t *testing.T) {
	// All-equal loads must always resolve to the lowest index: identical
	// fleet states place identically, run after run.
	f := testFleet(t, 4)
	p := NewLeastLoaded()
	for i := 0; i < 10; i++ {
		if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 0 {
			t.Fatalf("iteration %d: got node %d, want 0", i, got.Index)
		}
	}
}

func TestStickyThresholdBoundary(t *testing.T) {
	f := testFleet(t, 2)
	p := NewLocalitySticky(3)
	tn := &Tenant{fleet: f, last: f.nodes[1]}

	// One below the threshold: stick.
	f.setLoad(f.nodes[1], p.Depth-1)
	if got := p.Pick(f, tn); got.Index != 1 {
		t.Fatalf("load %d < depth %d: got node %d, want sticky node 1",
			p.Depth-1, p.Depth, got.Index)
	}

	// Exactly at the threshold: spill to least-loaded.
	f.setLoad(f.nodes[1], p.Depth)
	if got := p.Pick(f, tn); got.Index != 0 {
		t.Fatalf("load %d = depth %d: got node %d, want spill to node 0",
			p.Depth, p.Depth, got.Index)
	}
}

func TestStickyFirstRoundSpills(t *testing.T) {
	f := testFleet(t, 3)
	f.setLoad(f.nodes[0], 1)
	p := NewLocalitySticky(3)
	if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 1 {
		t.Fatalf("first round: got node %d, want least-loaded node 1", got.Index)
	}
}

// heteroFleet builds a fleet whose node classes follow the given names.
func heteroFleet(t *testing.T, classes ...string) *Fleet {
	t.Helper()
	f, err := New(sim.NewEngine(), Config{Devices: len(classes), Classes: classes})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestFastestFitPrefersEffectiveThroughput(t *testing.T) {
	// nextgen (2.0) vs k20 (1.0) vs consumer (0.5), all idle: the
	// fastest class wins outright.
	f := heteroFleet(t, "consumer", "k20", "nextgen")
	p := NewFastestFit()
	if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 2 {
		t.Fatalf("idle fleet: got node %d, want nextgen node 2", got.Index)
	}

	// Queue the fast node until a slower, idler one serves sooner:
	// nextgen at depth 3 scores 2.0/4 = 0.5, k20 idle scores 1.0.
	f.setLoad(f.nodes[2], 3)
	if got := p.Pick(f, &Tenant{fleet: f}); got.Index != 1 {
		t.Fatalf("congested nextgen: got node %d, want idle k20 node 1", got.Index)
	}

	// Equal scores tie-break to the lowest index: two idle k20s.
	tie := heteroFleet(t, "k20", "k20")
	if got := p.Pick(tie, &Tenant{fleet: tie}); got.Index != 0 {
		t.Fatalf("tie: got node %d, want 0", got.Index)
	}
}

func TestFastestFitHomogeneousIsLeastLoaded(t *testing.T) {
	f := testFleet(t, 3)
	f.setLoad(f.nodes[0], 2)
	f.setLoad(f.nodes[1], 1)
	f.setLoad(f.nodes[2], 4)
	ff := NewFastestFit()
	ll := NewLeastLoaded()
	if a, b := ff.Pick(f, &Tenant{fleet: f}), ll.Pick(f, &Tenant{fleet: f}); a != b {
		t.Fatalf("homogeneous fleet: fastest-fit picked %d, least-loaded %d", a.Index, b.Index)
	}
}

func TestClassAwareStickyMigratesUpOnly(t *testing.T) {
	f := heteroFleet(t, "consumer", "k20", "nextgen")
	p := NewClassAwareSticky(3, 2.0)

	// Warm on the consumer node (0.5): both k20 (2x) and nextgen (4x)
	// clear the speedup bar; the higher effective throughput wins.
	tn := &Tenant{fleet: f, last: f.nodes[0]}
	if got := p.Pick(f, tn); got.Index != 2 {
		t.Fatalf("warm consumer: got node %d, want nextgen upgrade node 2", got.Index)
	}

	// Warm on k20 (1.0): only nextgen (2x) clears the bar.
	tn.last = f.nodes[1]
	if got := p.Pick(f, tn); got.Index != 2 {
		t.Fatalf("warm k20: got node %d, want nextgen node 2", got.Index)
	}

	// A congested upgrade target is not worth queueing for: stick.
	f.setLoad(f.nodes[2], p.Depth)
	if got := p.Pick(f, tn); got.Index != 1 {
		t.Fatalf("congested upgrade: got node %d, want warm node 1", got.Index)
	}

	// Warm on nextgen: nothing is 2x faster, stick.
	f.setLoad(f.nodes[2], 0)
	tn.last = f.nodes[2]
	if got := p.Pick(f, tn); got.Index != 2 {
		t.Fatalf("warm nextgen: got node %d, want warm node 2", got.Index)
	}

	// Congested warm node spills by effective throughput.
	f.setLoad(f.nodes[2], p.Depth)
	if got := p.Pick(f, tn); got.Index != 1 {
		t.Fatalf("spill: got node %d, want k20 node 1", got.Index)
	}
}

func TestClassAwareStickyHomogeneousSticks(t *testing.T) {
	// With every class equal the speedup bar is unreachable, so the
	// policy behaves exactly like locality-sticky.
	f := testFleet(t, 2)
	p := NewClassAwareSticky(3, 2.0)
	tn := &Tenant{fleet: f, last: f.nodes[1]}
	f.setLoad(f.nodes[1], p.Depth-1)
	if got := p.Pick(f, tn); got.Index != 1 {
		t.Fatalf("got node %d, want sticky node 1", got.Index)
	}
	f.setLoad(f.nodes[1], p.Depth)
	if got := p.Pick(f, tn); got.Index != 0 {
		t.Fatalf("got node %d, want spill node 0", got.Index)
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil || p == nil {
			t.Fatalf("NewPolicy(%q) = %v, %v", name, p, err)
		}
	}
	for alias, want := range map[string]string{
		"round-robin":        "round-robin",
		"ll":                 "least-loaded",
		"locality-sticky":    "locality-sticky",
		"ff":                 "fastest-fit",
		"class-aware-sticky": "class-aware-sticky",
	} {
		p, err := NewPolicy(alias)
		if err != nil || p.Name() != want {
			t.Fatalf("NewPolicy(%q) = %v, %v; want %s", alias, p, err, want)
		}
	}
	_, err := NewPolicy("bogus")
	if err == nil {
		t.Fatal("NewPolicy(bogus) should fail")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name valid policy %q", err, name)
		}
	}
}
