package fleet

// loadIndex keeps the fleet's nodes ordered by congestion so placement
// policies answer in O(log nodes) (or O(classes)) instead of scanning
// every node per placement — at fleet scale, placements happen once per
// tenant round or request, so the old scans were a nodes×tenants cost
// per wave. Two views are maintained incrementally on every in-flight
// change:
//
//   - all: one min-heap over every node by (load, index) — the
//     least-loaded query.
//   - groups: per class-speed min-heaps by (load, index). Within one
//     class the effective-throughput score speed/(load+1) is maximized
//     exactly by the group's head, so the class-aware policies compare
//     a handful of heads instead of every node.
//
// Both heaps order by (load, node index), so each head is the unique
// minimum under a total order and every query reproduces the linear
// scan's lowest-index tie-break exactly (the placement tests pin this
// equivalence policy by policy).
type loadIndex struct {
	all    nodeHeap
	groups []*classGroup
}

// classGroup is the heap of nodes sharing one class speed, in
// first-appearance (node index) order of creation.
type classGroup struct {
	speed float64
	nodes nodeHeap
}

// The two heap positions a node occupies (Node.heapPos slots).
const (
	heapAll = iota
	heapClass
	nodeHeaps
)

// newLoadIndex builds the index over the fleet's nodes.
func newLoadIndex(nodes []*Node) *loadIndex {
	x := &loadIndex{all: nodeHeap{slot: heapAll}}
	for _, n := range nodes {
		x.all.push(n)
		var g *classGroup
		for _, c := range x.groups {
			if c.speed == n.Speed() {
				g = c
				break
			}
		}
		if g == nil {
			g = &classGroup{speed: n.Speed(), nodes: nodeHeap{slot: heapClass}}
			x.groups = append(x.groups, g)
		}
		g.nodes.push(n)
	}
	return x
}

// fix restores both heap orders after n's load changed.
func (x *loadIndex) fix(n *Node) {
	x.all.fix(n)
	for _, g := range x.groups {
		if g.speed == n.Speed() {
			g.nodes.fix(n)
			return
		}
	}
}

// leastLoaded returns the node with the fewest work units in flight,
// ties to the lowest index — the head of the class-blind heap.
func (x *loadIndex) leastLoaded() *Node { return x.all.nodes[0] }

// bestEffective returns the node with the highest effective throughput
// (class speed over queue depth), ties to the lowest node index. Only
// group heads can win within their class, so the argmax is over one
// candidate per class.
func (x *loadIndex) bestEffective() *Node {
	var best *Node
	var bestScore float64
	for _, g := range x.groups {
		n := g.nodes.nodes[0]
		s := effectiveThroughput(n)
		if best == nil || s > bestScore || (s == bestScore && n.Index < best.Index) {
			best, bestScore = n, s
		}
	}
	return best
}

// bestEffectiveAmong is bestEffective restricted to classes whose
// speed appears in speeds (the allocator's class-preference hints).
// Nil when no fleet class matches — the caller falls back to the
// unrestricted pick.
func (x *loadIndex) bestEffectiveAmong(speeds []float64) *Node {
	var best *Node
	var bestScore float64
	for _, g := range x.groups {
		match := false
		for _, s := range speeds {
			if g.speed == s {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		n := g.nodes.nodes[0]
		s := effectiveThroughput(n)
		if best == nil || s > bestScore || (s == bestScore && n.Index < best.Index) {
			best, bestScore = n, s
		}
	}
	return best
}

// upgradeFor returns the best node worth migrating warm state to: class
// speed at least speedup times the warm node's, queue depth under
// depth, highest effective throughput (ties to the lowest index), or
// nil. The warm node's own class never clears a speedup bar above 1, so
// warm needs no explicit exclusion.
func (x *loadIndex) upgradeFor(warm *Node, depth int, speedup float64) *Node {
	var best *Node
	var bestScore float64
	for _, g := range x.groups {
		if g.speed < speedup*warm.Speed() {
			continue
		}
		// The group head has the class's minimum load; if it misses the
		// depth bound, every node of the class does.
		n := g.nodes.nodes[0]
		if n.Load() >= depth {
			continue
		}
		s := effectiveThroughput(n)
		if best == nil || s > bestScore || (s == bestScore && n.Index < best.Index) {
			best, bestScore = n, s
		}
	}
	return best
}

// nodeHeap is a binary min-heap of nodes by (load, index) writing
// positions into Node.heapPos[slot].
type nodeHeap struct {
	slot  int
	nodes []*Node
}

func nodeLess(a, b *Node) bool {
	if a.inflight != b.inflight {
		return a.inflight < b.inflight
	}
	return a.Index < b.Index
}

func (h *nodeHeap) push(n *Node) {
	h.nodes = append(h.nodes, n)
	n.heapPos[h.slot] = int32(len(h.nodes) - 1)
	h.up(len(h.nodes) - 1)
}

// fix restores order around a node whose load changed in place.
func (h *nodeHeap) fix(n *Node) {
	pos := int(n.heapPos[h.slot])
	h.down(pos)
	h.up(int(n.heapPos[h.slot]))
}

func (h *nodeHeap) up(pos int) {
	for pos > 0 {
		parent := (pos - 1) / 2
		if !nodeLess(h.nodes[pos], h.nodes[parent]) {
			return
		}
		h.swap(pos, parent)
		pos = parent
	}
}

func (h *nodeHeap) down(pos int) {
	n := len(h.nodes)
	for {
		l := 2*pos + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && nodeLess(h.nodes[r], h.nodes[l]) {
			min = r
		}
		if !nodeLess(h.nodes[min], h.nodes[pos]) {
			return
		}
		h.swap(pos, min)
		pos = min
	}
}

func (h *nodeHeap) swap(x, y int) {
	h.nodes[x], h.nodes[y] = h.nodes[y], h.nodes[x]
	h.nodes[x].heapPos[h.slot] = int32(x)
	h.nodes[y].heapPos[h.slot] = int32(y)
}
