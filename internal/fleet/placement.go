package fleet

import (
	"fmt"
	"strings"
)

// Policy decides which device serves a tenant's next round. Pick runs
// in engine context and must be deterministic: same fleet state, same
// answer.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the node for the tenant's next round.
	Pick(f *Fleet, t *Tenant) *Node
}

// DefaultStickyDepth is the locality-sticky queue-depth threshold, in
// rounds: a tenant returns to its previous device while fewer rounds
// than this are in flight there.
const DefaultStickyDepth = 3

// PolicyNames lists the selectable placement policies in presentation
// order.
func PolicyNames() []string {
	return []string{"rr", "least-loaded", "sticky"}
}

// NewPolicy constructs a placement policy by name, using default
// parameters. Recognized names: "rr" ("round-robin"), "least-loaded"
// ("ll"), "sticky" ("locality-sticky"). An unknown name is an error
// listing the valid policies.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "rr", "round-robin":
		return NewRoundRobin(), nil
	case "least-loaded", "ll":
		return NewLeastLoaded(), nil
	case "sticky", "locality-sticky":
		return NewLocalitySticky(DefaultStickyDepth), nil
	default:
		return nil, fmt.Errorf("fleet: unknown placement policy %q (valid: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// RoundRobin cycles placements over the devices in index order,
// ignoring both load and locality. Every round migrates (for a fleet
// larger than one device), so warm-state tenants pay their working-set
// reconstruction on nearly every round — the baseline the locality
// policies improve on.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the round-robin placement policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(f *Fleet, t *Tenant) *Node {
	n := f.nodes[p.next%len(f.nodes)]
	p.next++
	return n
}

// LeastLoaded places each round on the device with the fewest rounds in
// flight. Ties break to the lowest device index — a deterministic rule,
// so identical fleet states always place identically.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded placement policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (*LeastLoaded) Pick(f *Fleet, t *Tenant) *Node {
	best := f.nodes[0]
	for _, n := range f.nodes[1:] {
		if n.Load() < best.Load() {
			best = n
		}
	}
	return best
}

// LocalitySticky returns a tenant to the device that holds its warm
// working set while that device's queue depth (rounds in flight) is
// below Depth; past the threshold — or for a tenant's first round — it
// spills to the least-loaded device. This is MQFQ-Sticky's placement
// rule: locality is worth queueing for, up to a point.
type LocalitySticky struct {
	// Depth is the stick-while-below queue-depth threshold, in rounds.
	Depth int

	spill LeastLoaded
}

// NewLocalitySticky returns the sticky policy with the given threshold;
// depth <= 0 takes DefaultStickyDepth.
func NewLocalitySticky(depth int) *LocalitySticky {
	if depth <= 0 {
		depth = DefaultStickyDepth
	}
	return &LocalitySticky{Depth: depth}
}

// Name implements Policy.
func (*LocalitySticky) Name() string { return "locality-sticky" }

// Pick implements Policy.
func (p *LocalitySticky) Pick(f *Fleet, t *Tenant) *Node {
	if t.last != nil && t.last.Load() < p.Depth {
		return t.last
	}
	return p.spill.Pick(f, t)
}
