package fleet

import (
	"fmt"
	"strings"
)

// Policy decides which device serves a tenant's next round. Pick runs
// in engine context and must be deterministic: same fleet state, same
// answer.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the node for the tenant's next round.
	Pick(f *Fleet, t *Tenant) *Node
}

// DefaultStickyDepth is the locality-sticky queue-depth threshold, in
// rounds: a tenant returns to its previous device while fewer rounds
// than this are in flight there.
const DefaultStickyDepth = 3

// DefaultClassSpeedup is the class-aware sticky policy's migration
// threshold: a tenant abandons its warm device only for one whose class
// is at least this much faster — the speed ratio at which halved (or
// better) service time outweighs one working-set reconstruction.
const DefaultClassSpeedup = 2.0

// PolicyNames lists the selectable placement policies in presentation
// order. The first three are class-blind; fastest-fit and class-sticky
// read node class speeds and only differ from least-loaded/sticky on a
// heterogeneous fleet.
func PolicyNames() []string {
	return []string{"rr", "least-loaded", "sticky", "fastest-fit", "class-sticky"}
}

// NewPolicy constructs a placement policy by name, using default
// parameters. Recognized names: "rr" ("round-robin"), "least-loaded"
// ("ll"), "sticky" ("locality-sticky"), "fastest-fit" ("ff"), and
// "class-sticky" ("class-aware-sticky"). An unknown name is an error
// listing the valid policies.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "rr", "round-robin":
		return NewRoundRobin(), nil
	case "least-loaded", "ll":
		return NewLeastLoaded(), nil
	case "sticky", "locality-sticky":
		return NewLocalitySticky(DefaultStickyDepth), nil
	case "fastest-fit", "ff":
		return NewFastestFit(), nil
	case "class-sticky", "class-aware-sticky":
		return NewClassAwareSticky(DefaultStickyDepth, DefaultClassSpeedup), nil
	default:
		return nil, fmt.Errorf("fleet: unknown placement policy %q (valid: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// RoundRobin cycles placements over the devices in index order,
// ignoring both load and locality. Every round migrates (for a fleet
// larger than one device), so warm-state tenants pay their working-set
// reconstruction on nearly every round — the baseline the locality
// policies improve on.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the round-robin placement policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(f *Fleet, t *Tenant) *Node {
	n := f.nodes[p.next%len(f.nodes)]
	p.next++
	return n
}

// LeastLoaded places each round on the device with the fewest rounds in
// flight. Ties break to the lowest device index — a deterministic rule,
// so identical fleet states always place identically. The pick reads
// the fleet's load index head instead of scanning nodes, so one
// placement is O(1) no matter the fleet size.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded placement policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (*LeastLoaded) Pick(f *Fleet, t *Tenant) *Node {
	return f.loads.leastLoaded()
}

// LocalitySticky returns a tenant to the device that holds its warm
// working set while that device's queue depth (rounds in flight) is
// below Depth; past the threshold — or for a tenant's first round — it
// spills to the least-loaded device. This is MQFQ-Sticky's placement
// rule: locality is worth queueing for, up to a point.
type LocalitySticky struct {
	// Depth is the stick-while-below queue-depth threshold, in rounds.
	Depth int

	spill LeastLoaded
}

// NewLocalitySticky returns the sticky policy with the given threshold;
// depth <= 0 takes DefaultStickyDepth.
func NewLocalitySticky(depth int) *LocalitySticky {
	if depth <= 0 {
		depth = DefaultStickyDepth
	}
	return &LocalitySticky{Depth: depth}
}

// Name implements Policy.
func (*LocalitySticky) Name() string { return "locality-sticky" }

// Pick implements Policy.
func (p *LocalitySticky) Pick(f *Fleet, t *Tenant) *Node {
	if t.last != nil && t.last.Load() < p.Depth {
		return t.last
	}
	return p.spill.Pick(f, t)
}

// FastestFit is the heterogeneity-aware greedy: it places each work
// unit on the node with the highest *effective throughput* — class
// speed divided by the work already queued ahead of it — the
// Gavel-style normalized-throughput objective. A fast node is worth
// queueing behind, but only up to the point where a slower, idler node
// would serve sooner. Ties break to the lowest device index, so
// identical fleet states place identically. On a homogeneous fleet it
// degenerates to least-loaded.
type FastestFit struct{}

// NewFastestFit returns the effective-throughput-greedy policy.
func NewFastestFit() *FastestFit { return &FastestFit{} }

// Name implements Policy.
func (*FastestFit) Name() string { return "fastest-fit" }

// Pick implements Policy. Within one class the effective-throughput
// score is maximized by the least-loaded node, so the pick compares one
// load-index head per class instead of scanning every node.
//
// When the round-based allocator has hinted the tenant toward target
// classes (the active policy's allocation concentrates it there), the
// pick is biased to those classes: the hint wins even when a faster
// class sits idle — steering against raw speed is exactly what cost
// and fairness policies ask for. The escape hatch is congestion, not
// speed: once the best hinted node queues at least twice as deep as
// the global best (loads compared +1, so an empty fleet never
// escapes), honoring a stale hint costs more than a round of drift
// until the policy recomputes, and the pick falls back to the greedy.
// Without hints (no allocator, or a policy with proportional rows) the
// pick is exactly the unhinted greedy.
func (*FastestFit) Pick(f *Fleet, t *Tenant) *Node {
	best := f.loads.bestEffective()
	if len(t.hintClasses) == 0 {
		return best
	}
	hinted := f.loads.bestEffectiveAmong(t.hintClasses)
	if hinted == nil || hinted.Load()+1 >= 2*(best.Load()+1) {
		return best
	}
	return hinted
}

// effectiveThroughput scores a node for FastestFit: the rate at which
// newly placed work would be retired, discounted by the queue already
// in front of it.
func effectiveThroughput(n *Node) float64 {
	return n.Speed() / float64(n.Load()+1)
}

// ClassAwareSticky extends locality-sticky placement with class
// awareness: a tenant stays on its warm device while that device's
// queue depth is under Depth, unless another node's class is at least
// Speedup times faster *and* has room under the same depth bound — the
// point where the class speedup outweighs the one-time working-set
// reconstruction the move costs. Congested or first-round tenants
// spill through fastest-fit rather than least-loaded, so spilled work
// also lands by effective throughput.
type ClassAwareSticky struct {
	// Depth is the stick-while-below queue-depth threshold.
	Depth int
	// Speedup is the minimum class speed ratio (candidate over warm)
	// that justifies abandoning warm state.
	Speedup float64

	spill FastestFit
}

// NewClassAwareSticky returns the class-aware sticky policy; depth <= 0
// takes DefaultStickyDepth, speedup <= 1 takes DefaultClassSpeedup.
func NewClassAwareSticky(depth int, speedup float64) *ClassAwareSticky {
	if depth <= 0 {
		depth = DefaultStickyDepth
	}
	if speedup <= 1 {
		speedup = DefaultClassSpeedup
	}
	return &ClassAwareSticky{Depth: depth, Speedup: speedup}
}

// Name implements Policy.
func (*ClassAwareSticky) Name() string { return "class-aware-sticky" }

// Pick implements Policy.
func (p *ClassAwareSticky) Pick(f *Fleet, t *Tenant) *Node {
	if t.last != nil && t.last.Load() < p.Depth {
		if up := p.upgrade(f, t.last); up != nil {
			return up
		}
		return t.last
	}
	return p.spill.Pick(f, t)
}

// upgrade returns the best node worth migrating warm state to: at least
// Speedup times the warm node's class speed, queue depth under the
// stick threshold, and the highest effective throughput among such
// candidates (ties to the lowest index). Nil when staying warm wins.
// The candidate set is read off the per-class load-index heads —
// Speedup above 1 means the warm node's own class never qualifies.
func (p *ClassAwareSticky) upgrade(f *Fleet, warm *Node) *Node {
	return f.loads.upgradeFor(warm, p.Depth, p.Speedup)
}
