// Package fleet scales the single-accelerator NEON stack to a placed,
// fair-shared multi-device fleet — the regime of heterogeneity-aware
// cluster schedulers and of MQFQ-Sticky's locality-sticky fair queueing
// for serverless GPU functions, and the biggest step from the paper's
// one-GPU prototype toward a production deployment.
//
// A Fleet owns N device instances. Each instance is a full per-device
// stack — its own gpu.Device (48-channel pool, engine arbitration,
// reference counters), its own neon.Kernel, and its own Disengaged Fair
// Queueing scheduler — exactly the paper's system, replicated. Two
// layers tie the instances together:
//
//   - a placement subsystem (Policy): before every tenant round, the
//     fleet asks the policy which device serves it. Round-robin,
//     least-loaded, and locality-sticky policies are class-blind; the
//     sticky policy returns tenants to their previous device while its
//     queue depth stays under a threshold, trading balance for warm
//     working-set state (MQFQ-Sticky-style). On heterogeneous fleets
//     (Config.Classes) two class-aware policies join them: fastest-fit
//     places by effective throughput (class speed over queue depth,
//     Gavel-style), and class-aware sticky migrates warm state only
//     when the class speedup outweighs the reconstruction cost.
//   - fleet-wide virtual-time reconciliation (Board): each per-device
//     DFQ instance folds the usage it charges at every engagement
//     episode into a shared board keyed by tenant name, and takes its
//     denial decisions against fleet-wide leads. A tenant consuming on
//     several devices at once is throttled everywhere, so fairness
//     holds across the fleet, not just within one device. Charges are
//     in normalized core.Work (device time x class speed), so the
//     board compares like with like across device generations.
package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Node is one device instance of the fleet: a private GPU, its kernel,
// and the per-device scheduler the kernel runs.
type Node struct {
	Index  int
	Class  cost.Class
	Device *gpu.Device
	Kernel *neon.Kernel
	Sched  neon.Scheduler

	// inflight counts placed-but-unfinished work units on this node —
	// tenant rounds for closed-loop tenants, individual requests for the
	// open-loop serving layer. It is the queue depth placement policies
	// compare and admission controllers bound. All changes go through
	// Fleet.addLoad so the placement load index stays ordered.
	inflight int

	// heapPos are the node's positions in the fleet's load-index heaps.
	heapPos [nodeHeaps]int32

	// busyAtReset snapshots the exec engine for utilization reporting.
	busyAtReset sim.Duration
}

// Load returns the node's congestion signal: work units in flight
// (placed but not completed) — the node's queue depth.
func (n *Node) Load() int { return n.inflight }

// Speed returns the node's class speed factor: the rate it retires
// nominal work relative to the reference class. Placement policies use
// it as the effective-throughput numerator.
func (n *Node) Speed() float64 { return n.Class.Speed }

// DFQ returns the node's scheduler as Disengaged Fair Queueing, or nil
// when the fleet was built with a different policy.
func (n *Node) DFQ() *core.DisengagedFairQueueing {
	d, _ := n.Sched.(*core.DisengagedFairQueueing)
	return d
}

// Config assembles a fleet.
type Config struct {
	// Devices is the number of device instances (N >= 1).
	Devices int
	// Classes names each device's generation (cost.ClassNames); device i
	// takes Classes[i%len(Classes)], so a short list tiles over a large
	// fleet. Empty means every device is the reference class — the
	// homogeneous fleets of the earlier experiments.
	Classes []string
	// Policy places tenant rounds; nil defaults to round-robin.
	Policy Policy
	// GPU configures every device instance. Unset fields (zero
	// MaxContexts, MemoryBytes, GraphicsPenalty, or Costs) are filled
	// from gpu.DefaultConfig() individually — fields the caller did set
	// are kept. The per-instance Name and Class are set by the fleet.
	GPU gpu.Config
	// Sched names the per-device scheduling policy: "dfq" (default),
	// "timeslice"/"ts", or "dts". Only DFQ participates in fleet-wide
	// virtual-time reconciliation; the timeslice policies are per-device
	// fair only, which is exactly what the serve experiment compares.
	Sched string
	// DFQ configures every per-device scheduler; zero fields take the
	// paper's defaults. The Fleet reconciliation hook is installed by
	// the fleet and must be left nil. Ignored unless Sched is "dfq".
	DFQ core.DFQConfig
	// RunLimit is each kernel's over-long request kill threshold.
	RunLimit sim.Duration
	// Seed feeds each tenant's deterministic jitter stream, forked by
	// launch index so populations are order-independent.
	Seed int64
	// AllocPolicy, when set, installs the round-based allocator: every
	// AllocEvery the policy recomputes target allocations over the
	// tenant×class matrix and the fleet translates them into effective
	// DFQ weights and placement hints (see allocator.go). Nil keeps the
	// pre-policy behavior: spec weights, unhinted placement.
	AllocPolicy policy.Policy
	// AllocEvery is the allocator round period; <= 0 takes
	// DefaultAllocEvery. Ignored unless AllocPolicy is set.
	AllocEvery sim.Duration
	// BoardShards and BoardEpoch size the fleet-wide virtual-time
	// board: principals hash over BoardShards min-VT heaps, and the
	// system-virtual-time fold runs every BoardEpoch-th episode (between
	// folds leads are conservative over-estimates; see Board). Zero
	// takes DefaultBoardShards and per-episode (epoch 1) folding — the
	// exact pre-shard semantics.
	BoardShards int
	BoardEpoch  int
}

// Fleet is a set of device instances behind one placement interface.
type Fleet struct {
	eng     *sim.Engine
	nodes   []*Node
	policy  Policy
	board   *Board
	loads   *loadIndex
	depth   int // fleet-wide in-flight total, kept incrementally
	tenants []*Tenant
	seed    int64

	allocPol  policy.Policy
	onTargets func(policy.Snapshot, policy.Targets)

	// Placements counts placement decisions; Migrations counts the
	// subset that moved a tenant off its previous device.
	Placements int64
	Migrations int64
	// AllocRounds counts allocator rounds applied (0 without a policy).
	AllocRounds int64
}

// New builds a fleet of cfg.Devices per-device stacks on the engine.
func New(eng *sim.Engine, cfg Config) (*Fleet, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.DFQ.Fleet != nil {
		return nil, fmt.Errorf("fleet: DFQ.Fleet is installed by the fleet; leave it nil")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewRoundRobin()
	}
	schedName := cfg.Sched
	if schedName == "" {
		schedName = "dfq"
	}
	classes := make([]cost.Class, 0, len(cfg.Classes))
	for _, name := range cfg.Classes {
		c, err := cost.ClassByName(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		classes = append(classes, c)
	}
	f := &Fleet{
		eng:    eng,
		policy: policy,
		board:  NewBoardWith(cfg.BoardShards, cfg.BoardEpoch),
		seed:   cfg.Seed,
	}
	for i := 0; i < cfg.Devices; i++ {
		// Default only the unset GPU fields: a caller that sets, say,
		// GraphicsPenalty but leaves MaxContexts zero must keep its
		// penalty, not have the whole config silently replaced.
		gcfg := cfg.GPU
		def := gpu.DefaultConfig()
		if gcfg.MaxContexts <= 0 {
			gcfg.MaxContexts = def.MaxContexts
		}
		if gcfg.MemoryBytes <= 0 {
			gcfg.MemoryBytes = def.MemoryBytes
		}
		if gcfg.GraphicsPenalty <= 0 {
			gcfg.GraphicsPenalty = def.GraphicsPenalty
		}
		if gcfg.Costs == (cost.Model{}) {
			gcfg.Costs = def.Costs
		}
		gcfg.Name = fmt.Sprintf("dev%d", i)
		class := cost.ReferenceClass()
		if len(classes) > 0 {
			class = classes[i%len(classes)]
		}
		gcfg.Class = class
		dev := gpu.New(eng, gcfg)
		var sched neon.Scheduler
		switch schedName {
		case "dfq", "disengaged-fair-queueing":
			dcfg := cfg.DFQ
			dcfg.Fleet = f.board
			sched = core.NewDisengagedFairQueueing(dcfg)
		default:
			s, err := core.New(schedName)
			if err != nil {
				return nil, fmt.Errorf("fleet: %w", err)
			}
			sched = s
		}
		k := neon.NewKernel(dev, sched)
		k.RequestRunLimit = cfg.RunLimit
		f.nodes = append(f.nodes, &Node{Index: i, Class: class, Device: dev, Kernel: k, Sched: sched})
	}
	f.loads = newLoadIndex(f.nodes)
	if cfg.AllocPolicy != nil {
		f.allocPol = cfg.AllocPolicy
		every := cfg.AllocEvery
		if every <= 0 {
			every = DefaultAllocEvery
		}
		(&allocator{f: f, pol: cfg.AllocPolicy, every: every}).start()
	}
	return f, nil
}

// addLoad changes a node's in-flight count, keeping the fleet-wide
// total and the placement load index current.
func (f *Fleet) addLoad(n *Node, delta int) {
	n.inflight += delta
	f.depth += delta
	f.loads.fix(n)
}

// Engine returns the simulation engine the fleet runs on.
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// Nodes returns the device instances in index order.
func (f *Fleet) Nodes() []*Node { return f.nodes }

// Board returns the fleet-wide virtual-time board.
func (f *Fleet) Board() *Board { return f.board }

// Policy returns the placement policy in use.
func (f *Fleet) Policy() Policy { return f.policy }

// Tenants returns launched tenants in launch order.
func (f *Fleet) Tenants() []*Tenant { return f.tenants }

// Place asks the placement policy for the device to run the tenant's
// next round on and accounts the round as in flight there. Tenant round
// loops call it before every round.
func (f *Fleet) Place(t *Tenant) *Node {
	n := f.policy.Pick(f, t)
	f.addLoad(n, 1)
	f.Placements++
	if t.last != nil && t.last != n {
		f.Migrations++
	}
	return n
}

// roundDone retires a placed round from the node's in-flight count.
func (f *Fleet) roundDone(n *Node) {
	if n.inflight <= 0 {
		panic(fmt.Sprintf("fleet: round retired on %s with none in flight", n.Device.Name()))
	}
	f.addLoad(n, -1)
}

// PlaceRequest asks the placement policy for the device to serve one
// open-loop request of the tenant's stream and accounts it in flight
// there. Unlike Place (whose round loop records locality itself), the
// tenant's warm-state device advances here, at placement time — the
// serving layer's dispatchers drain queues asynchronously, so placement
// order is the only coherent notion of "previous device". It reports
// whether the request moved off that previous device.
func (f *Fleet) PlaceRequest(t *Tenant) (n *Node, migrated bool) {
	n = f.policy.Pick(f, t)
	f.addLoad(n, 1)
	f.Placements++
	if t.last != nil && t.last != n {
		f.Migrations++
		migrated = true
	}
	t.last = n
	return n, migrated
}

// RequestDone retires a placed request from the node's in-flight count
// (on completion, abort, or shed-after-placement). A retire without a
// matching placement would silently corrupt the queue-depth signal that
// admission control and every placement policy read, so it panics —
// naming the node — instead.
func (f *Fleet) RequestDone(n *Node) {
	if n.inflight <= 0 {
		panic(fmt.Sprintf("fleet: request retired on %s with none in flight", n.Device.Name()))
	}
	f.addLoad(n, -1)
}

// QueueDepth returns the fleet-wide queue depth: work units placed and
// not yet finished, summed over nodes. This is the congestion signal
// front-door admission control bounds; it is maintained incrementally,
// so the admission check that runs per arriving request is O(1) rather
// than a node scan.
func (f *Fleet) QueueDepth() int { return f.depth }

// ResetStats clears tenant and fleet counters and re-baselines device
// busy time (for warmup exclusion, like workload.App.ResetStats).
func (f *Fleet) ResetStats() {
	f.Placements = 0
	f.Migrations = 0
	for _, n := range f.nodes {
		n.busyAtReset = n.Device.TotalBusy()
	}
	for _, t := range f.tenants {
		t.ResetStats()
	}
}

// BusySince returns the node's exec-engine busy time accumulated since
// the last ResetStats.
func (n *Node) BusySince() sim.Duration { return n.Device.TotalBusy() - n.busyAtReset }

// Utilization returns the node's exec-engine busy fraction of the
// measurement window since the last ResetStats — the per-node signal
// the serve and hetero experiments report. The result is clamped to
// [0, 1]: a caller passing a window shorter than the busy time
// accumulated since ResetStats gets a saturated device, not an
// impossible >100% reading.
func (n *Node) Utilization(window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(n.BusySince()) / float64(window)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// WorkSince returns the normalized work the node retired since the last
// ResetStats: busy time scaled by its class speed.
func (n *Node) WorkSince() core.Work { return core.WorkFor(n.BusySince(), n.Speed()) }
