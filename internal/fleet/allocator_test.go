package fleet

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// allocFleet builds a mixed-class fleet under the given allocation
// policy and launches three saturating tenants with weights 2, 1, 1.
func allocFleet(t *testing.T, pol policy.Policy) (*sim.Engine, *Fleet) {
	t.Helper()
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Devices:     3,
		Classes:     []string{"k20", "consumer", "nextgen"},
		Policy:      NewFastestFit(),
		Sched:       "dfq",
		RunLimit:    time.Second,
		Seed:        7,
		AllocPolicy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{2, 1, 1} {
		s := workload.Throttle(200*time.Microsecond, 0)
		s.Name = []string{"a", "b", "c"}[i]
		f.Launch(workload.TenantSpec{Spec: s, Weight: w, Jitter: 0.1})
	}
	return eng, f
}

// TestAllocatorAppliesWeights: under max-min with uniform saturating
// demands, the allocator overrides the spec's 2:1:1 weights with the
// policy's equal-share targets — live tasks re-weight, not just future
// ones — and rounds keep counting.
func TestAllocatorAppliesWeights(t *testing.T) {
	eng, f := allocFleet(t, policy.MaxMin{})
	eng.RunFor(60 * time.Millisecond)
	if f.AllocRounds == 0 {
		t.Fatal("no allocation rounds ran")
	}
	// Equal demands, weights 2:1:1, demand 2.0 each (nextgen ceiling),
	// capacity 3.5: nobody reaches demand, so shares are
	// weight-proportional and min-1 normalization gives 2:1:1 — same as
	// spec here. Check the mechanism wrote them into live tasks.
	for _, ten := range f.Tenants() {
		if ten.allocWeight == 0 {
			t.Fatalf("tenant %s has no allocator weight", ten.Spec.Name)
		}
		for _, task := range ten.tasks {
			if task.Weight != ten.EffectiveWeight() {
				t.Fatalf("tenant %s live task weight %v != effective %v",
					ten.Spec.Name, task.Weight, ten.EffectiveWeight())
			}
		}
	}
	a := f.Tenants()[0]
	if a.EffectiveWeight() != 2 {
		t.Errorf("heavy tenant effective weight = %v, want 2", a.EffectiveWeight())
	}
}

// TestAllocatorStaticIsInert: the static policy through the allocator
// must leave every effective weight exactly the spec weight and hint
// nothing — the mechanism equivalence the byte-identity golden test
// checks end-to-end.
func TestAllocatorStaticIsInert(t *testing.T) {
	eng, f := allocFleet(t, policy.Static{})
	eng.RunFor(60 * time.Millisecond)
	if f.AllocRounds == 0 {
		t.Fatal("no allocation rounds ran")
	}
	for _, ten := range f.Tenants() {
		if ten.EffectiveWeight() != ten.Spec.ShareWeight() {
			t.Errorf("tenant %s: effective %v != spec %v",
				ten.Spec.Name, ten.EffectiveWeight(), ten.Spec.ShareWeight())
		}
		if ten.hintClasses != nil {
			t.Errorf("tenant %s: static hinted classes %v", ten.Spec.Name, ten.hintClasses)
		}
	}
}

// TestSnapshotShape: classes aggregate device counts in first-seen
// order, and demand is duty cycle × fastest class speed.
func TestSnapshotShape(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 4, Classes: []string{"k20", "consumer"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sat := workload.Throttle(100*time.Microsecond, 0)
	sat.Name = "sat"
	f.NewTenant(workload.TenantSpec{Spec: sat, Weight: 3, Org: "acme", Tier: workload.TierPremium})
	half := workload.Throttle(100*time.Microsecond, 0.5)
	half.Name = "half"
	f.NewTenant(workload.TenantSpec{Spec: half})

	s := f.Snapshot()
	if len(s.Classes) != 2 || s.Classes[0].Name != "k20" || s.Classes[0].Devices != 2 ||
		s.Classes[1].Name != "consumer" || s.Classes[1].Devices != 2 {
		t.Fatalf("classes = %+v", s.Classes)
	}
	if s.Capacity() != 3.0 {
		t.Errorf("capacity = %v, want 3 (2×1.0 + 2×0.5)", s.Capacity())
	}
	a := s.Tenants[0]
	if a.Org != "acme" || a.Weight != 3 || a.Tier != workload.TierPremium {
		t.Errorf("tenant row = %+v", a)
	}
	// Saturating spec: duty = GPU/(CPU+GPU), fastest class is k20 here.
	duty := float64(sat.GPUTime()) / float64(sat.ActiveTime())
	if got := a.Demand; got != duty {
		t.Errorf("saturating demand = %v, want duty %v", got, duty)
	}
	// Half-duty spec offers about half of that.
	if b := s.Tenants[1]; b.Demand >= a.Demand*0.6 || b.Demand <= 0 {
		t.Errorf("half-duty demand = %v vs saturating %v", b.Demand, a.Demand)
	}
}

// TestOnTargetsHook: the hook observes every round with the applied
// targets.
func TestOnTargetsHook(t *testing.T) {
	eng, f := allocFleet(t, policy.MaxMin{})
	var rounds int
	f.OnTargets(func(s policy.Snapshot, tg policy.Targets) {
		rounds++
		if len(tg.Weight) != len(s.Tenants) || len(s.Tenants) != 3 {
			t.Fatalf("targets shape: %d weights, %d tenants", len(tg.Weight), len(s.Tenants))
		}
	})
	eng.RunFor(30 * time.Millisecond)
	if rounds == 0 {
		t.Fatal("OnTargets never fired")
	}
	if int64(rounds) != f.AllocRounds {
		t.Errorf("hook fired %d times, AllocRounds %d", rounds, f.AllocRounds)
	}
}

// TestFastestFitHonorsHints: a hinted tenant lands on its target class
// while the hint holds, and escapes to the global best once the hinted
// class is 2× worse by effective throughput.
func TestFastestFitHonorsHints(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 3, Classes: []string{"k20", "consumer", "nextgen"},
		Policy: NewFastestFit(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Throttle(100*time.Microsecond, 0)
	spec.Name = "hinted"
	ten := f.NewTenant(workload.TenantSpec{Spec: spec})

	// Hint to the consumer class (speed 0.5): the greedy would pick
	// nextgen (speed 2, empty), the hint overrides while within 2×.
	ten.hintClasses = []float64{0.5}
	consumer, nextgen := f.Nodes()[1], f.Nodes()[2]
	if n, _ := f.PlaceRequest(ten); n != consumer {
		t.Fatalf("hinted placement on %s, want %s", n.Device.Name(), consumer.Device.Name())
	}
	// Congest the consumer node past the escape bar: hinted load+1 at
	// least twice the idle global best's 1.
	for i := 0; i < 3; i++ {
		f.addLoad(consumer, 1)
	}
	if n, _ := f.PlaceRequest(ten); n != nextgen {
		t.Fatalf("escape placement on %s, want %s", n.Device.Name(), nextgen.Device.Name())
	}
	// No matching class in the fleet: fall back to the unhinted greedy
	// (k20 and the once-loaded nextgen tie at effective 1.0; the lower
	// index wins, exactly as without hints).
	ten.hintClasses = []float64{3.0}
	k20 := f.Nodes()[0]
	if n, _ := f.PlaceRequest(ten); n != k20 {
		t.Fatalf("unmatched-hint placement on %s, want %s", n.Device.Name(), k20.Device.Name())
	}
}

// TestNewTenantPanicsOnInvalidWeight: the fleet refuses malformed
// contract terms loudly (specs are configuration, not user input) —
// the regression for the silent PerWeight clamp.
func TestNewTenantPanicsOnInvalidWeight(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTenant accepted a negative weight")
		}
	}()
	s := workload.Throttle(100*time.Microsecond, 0)
	s.Name = "bad"
	f.NewTenant(workload.TenantSpec{Spec: s, Weight: -2})
}
