package fleet

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
)

// Board is the fleet-wide virtual-time exchange (it implements
// core.FleetVT). Per-device Disengaged Fair Queueing instances report
// the usage they charge at every engagement episode; the board folds
// the charges into one virtual time per principal (tenant name),
// advances the fleet-wide system virtual time — the oldest virtual time
// among principals active on any device — and hands back each
// principal's lead over it. The per-device schedulers deny free runs on
// fleet-wide leads, which is what makes fairness hold across devices: a
// tenant drawing service from three devices accrues virtual time three
// times as fast and is denied everywhere until the others catch up.
//
// All quantities are in weighted normalized core.Work: each device
// converts its observed device time at its own class speed and divides
// by the consuming tenant's fair-share weight before reporting, so on a
// heterogeneous fleet a ledger entry means the same amount of
// *entitlement consumed* no matter which generation of card provided
// the service or how large the tenant's contractual share is — a
// weight-4 tenant's ledger advances at a quarter rate and it is denied
// a quarter as often, fleet-wide. (Under the raw-charge ablation the
// devices report unscaled device time and the board — unknowingly —
// compares unlike units; that is the failure mode the hetero experiment
// demonstrates.)
//
// Internally the board is sharded for tenant scale: principals live in
// a flat slab, hashed over per-shard min-VT heaps that order only the
// *fleet-active* principals, so one episode costs O(charges·log
// active/shards + shards) instead of a scan over every principal the
// fleet has ever seen, and fleet-idle principals cost nothing (their
// forfeit-unused-credit clamp is applied lazily, which is observably
// identical because the system virtual time only moves forward; see
// DESIGN.md §12). The fold that advances the system virtual time can be
// batched: with Epoch e > 1 it runs every e-th episode, so the
// between-fold system virtual time is a stale *under*-estimate, leads
// are *over*-estimates, and denial stays conservative — a tenant's true
// fleet-wide lead can exceed the single-episode bound by at most the
// work charged within one epoch (TestBoardEpochLeadBound pins this).
// The default epoch of 1 reproduces per-episode reconciliation exactly.
//
// Every operation the board performs is commutative across principals
// (sums, set membership, a minimum), so results do not depend on map
// iteration order and the simulation stays deterministic.
type Board struct {
	byName map[string]uint32
	slab   []principal
	shards []boardShard
	order  []uint32
	sysVT  core.Work

	// devIdx interns reporting device names to bit positions in each
	// principal's active-device mask. A board supports at most 64
	// devices (boardMaxDevices); fleets are far smaller today and the
	// mask keeps the principal slab pointer-free per device.
	devIdx map[string]uint

	epoch     int // episodes per system-virtual-time fold
	sinceFold int

	// Episodes counts reconciliations, for tests. Folds counts the
	// system-virtual-time advances actually performed (== Episodes when
	// the epoch is 1).
	Episodes int64
	Folds    int64
}

// principal is one tenant's slot in the board slab: compact fixed-size
// state with no per-principal allocations at all — the set of devices
// the principal is active on is a bitmask over the board's interned
// device indexes.
type principal struct {
	name     string
	vt       core.Work
	activeOn uint64 // bitmask over Board.devIdx
	shard    uint32
	heapPos  int32 // position in its shard's heap, or boardIdle
}

// boardIdle marks a principal outside its shard heap (fleet-idle).
const boardIdle int32 = -1

// boardMaxDevices is the active-device mask width: the most reporting
// devices one board supports.
const boardMaxDevices = 64

// boardShard is one shard's min-VT heap over fleet-active principals,
// ordered by (vt, slab index) so the fold is reproducible.
type boardShard struct {
	heap []uint32
}

// DefaultBoardShards is the shard count NewBoard uses. Shards bound the
// per-fold cost (one heap head each) and spread heap maintenance;
// a handful suffices until populations reach the scale experiment's.
const DefaultBoardShards = 8

// NewBoard returns an empty fleet-wide virtual-time board with the
// default shard count and per-episode (epoch 1) reconciliation.
func NewBoard() *Board { return NewBoardWith(DefaultBoardShards, 1) }

// NewBoardWith returns a board with the given shard count and fold
// epoch. shards <= 0 takes DefaultBoardShards; epoch <= 0 takes 1
// (fold every episode — the exact per-episode semantics).
func NewBoardWith(shards, epoch int) *Board {
	if shards <= 0 {
		shards = DefaultBoardShards
	}
	if epoch <= 0 {
		epoch = 1
	}
	return &Board{
		byName: make(map[string]uint32),
		devIdx: make(map[string]uint),
		shards: make([]boardShard, shards),
		epoch:  epoch,
	}
}

// Grow pre-allocates principal capacity, so a known population (the
// scale experiment's) registers without a doubling cascade.
func (b *Board) Grow(n int) {
	if cap(b.slab) < n {
		slab := make([]principal, len(b.slab), n)
		copy(slab, b.slab)
		b.slab = slab
	}
}

// Epoch returns the fold epoch the board was built with.
func (b *Board) Epoch() int { return b.epoch }

// Principal implements core.FleetVT: it interns a tenant name,
// registering the principal at the fleet system virtual time if unseen,
// and returns its stable handle (the slab index).
func (b *Board) Principal(name string) core.PrincipalID {
	return core.PrincipalID(b.ensure(name))
}

// ReconcileEpisodeBatch implements core.FleetVT: one device episode as
// a slice of per-principal entries keyed by handles from Principal.
// Charges are folded first, then marked entries update the principal's
// activity on the reporting device (Active false clears it), matching
// the charge-then-(de)activate ordering the map form always had. Each
// entry's Lead is written in place after the fold. The batch is the
// caller's reusable buffer; the board does not retain it. The
// steady-state path allocates nothing.
func (b *Board) ReconcileEpisodeBatch(device string, batch []core.EpisodeEntry) {
	b.Episodes++
	dev := b.deviceBit(device)

	for i := range batch {
		if e := &batch[i]; e.Charge != 0 {
			b.charge(uint32(e.Principal), e.Charge)
		}
	}
	for i := range batch {
		e := &batch[i]
		if !e.Marked {
			continue
		}
		j := uint32(e.Principal)
		p := &b.slab[j]
		if e.Active {
			p.activeOn |= dev
			b.activate(j)
		} else {
			p.activeOn &^= dev
			if p.activeOn == 0 {
				b.deactivate(j)
			}
		}
	}

	// The fleet system virtual time is the oldest virtual time among
	// principals active anywhere; it only moves forward. With an epoch
	// above 1 the fold is batched: between folds the system virtual time
	// is a stale under-estimate, so every lead reported below is an
	// over-estimate and denial errs toward fairness.
	if b.sinceFold++; b.sinceFold >= b.epoch {
		b.sinceFold = 0
		b.fold()
	}

	for i := range batch {
		e := &batch[i]
		e.Lead = b.vtOf(uint32(e.Principal)) - b.sysVT
	}
}

// deviceBit interns a reporting device name to its mask bit.
func (b *Board) deviceBit(device string) uint64 {
	i, ok := b.devIdx[device]
	if !ok {
		i = uint(len(b.devIdx))
		if i >= boardMaxDevices {
			panic(fmt.Sprintf("fleet: board supports at most %d reporting devices", boardMaxDevices))
		}
		b.devIdx[device] = i
	}
	return 1 << i
}

// ReconcileEpisode is the map-keyed compatibility form of the exchange
// (the original core.FleetVT surface, kept for tests and ad-hoc
// callers; schedulers report through ReconcileEpisodeBatch). charges is
// the estimated normalized work attributed to each principal this
// episode; active marks the principals with work pending there (false
// explicitly clears the mark). The returned map holds, for every
// principal in either argument, its reconciled lead over the fleet-wide
// system virtual time.
func (b *Board) ReconcileEpisode(device string, charges map[string]core.Work,
	active map[string]bool) map[string]core.Work {
	batch := make([]core.EpisodeEntry, 0, len(charges)+len(active))
	idx := make(map[string]int, len(charges)+len(active))
	for name, c := range charges {
		idx[name] = len(batch)
		batch = append(batch, core.EpisodeEntry{Principal: b.Principal(name), Charge: c})
	}
	for name, a := range active {
		if j, ok := idx[name]; ok {
			batch[j].Marked = true
			batch[j].Active = a
			continue
		}
		idx[name] = len(batch)
		batch = append(batch, core.EpisodeEntry{Principal: b.Principal(name), Marked: true, Active: a})
	}
	b.ReconcileEpisodeBatch(device, batch)
	leads := make(map[string]core.Work, len(batch))
	for name, j := range idx {
		leads[name] = batch[j].Lead
	}
	return leads
}

// fold advances the system virtual time to the minimum virtual time
// among fleet-active principals: the min over shard heap heads,
// O(shards) instead of O(principals).
func (b *Board) fold() {
	b.Folds++
	first := true
	var minVT core.Work
	for s := range b.shards {
		h := b.shards[s].heap
		if len(h) == 0 {
			continue
		}
		if vt := b.slab[h[0]].vt; first || vt < minVT {
			minVT = vt
			first = false
		}
	}
	if !first && minVT > b.sysVT {
		b.sysVT = minVT
	}
}

// charge advances a principal's virtual time. A fleet-idle principal
// first forfeits unused credit up to the system virtual time — the
// moment the old per-episode scan would have caught it up.
func (b *Board) charge(i uint32, c core.Work) {
	p := &b.slab[i]
	if p.heapPos == boardIdle && p.vt < b.sysVT {
		p.vt = b.sysVT
	}
	p.vt += c
	if p.heapPos != boardIdle && c > 0 {
		b.shards[p.shard].heapDown(b, int(p.heapPos))
	}
}

// vtOf returns a principal's virtual time with the idle forfeit applied
// lazily: the system virtual time only moves forward, so clamping at
// read time yields the same value the per-episode eager clamp would
// have written.
func (b *Board) vtOf(i uint32) core.Work {
	p := &b.slab[i]
	if p.heapPos == boardIdle && p.vt < b.sysVT {
		return b.sysVT
	}
	return p.vt
}

// activate pushes a principal into its shard heap if it is not there,
// forfeiting unused credit first (an idle stretch must not bank
// service).
func (b *Board) activate(i uint32) {
	p := &b.slab[i]
	if p.heapPos != boardIdle {
		return
	}
	if p.vt < b.sysVT {
		p.vt = b.sysVT
	}
	b.shards[p.shard].push(b, i)
}

// deactivate removes a fleet-idle principal from its shard heap. A
// heap slot that does not hold the principal it claims means the
// shard's accounting has been corrupted — the fairness ledger would
// silently rot — so it panics with the tenant's name, like the
// in-flight underflow panics on Fleet.
func (b *Board) deactivate(i uint32) {
	p := &b.slab[i]
	if p.heapPos == boardIdle {
		return
	}
	sh := &b.shards[p.shard]
	if int(p.heapPos) >= len(sh.heap) || sh.heap[p.heapPos] != i {
		panic(fmt.Sprintf("fleet: board shard %d accounting underflow for tenant %q",
			p.shard, p.name))
	}
	sh.delete(b, int(p.heapPos))
}

// ensure registers a principal, starting it at the fleet system virtual
// time — the same late-joiner rule as single-device DFQ — and returns
// its slab index.
func (b *Board) ensure(name string) uint32 {
	if i, ok := b.byName[name]; ok {
		return i
	}
	i := uint32(len(b.slab))
	h := fnv.New32a()
	h.Write([]byte(name))
	b.slab = append(b.slab, principal{
		name:    name,
		vt:      b.sysVT,
		shard:   h.Sum32() % uint32(len(b.shards)),
		heapPos: boardIdle,
	})
	b.byName[name] = i
	b.order = append(b.order, i)
	return i
}

// VirtualTime returns the principal's fleet-wide virtual time in
// normalized work, for tests and reports.
func (b *Board) VirtualTime(name string) core.Work {
	i, ok := b.byName[name]
	if !ok {
		return 0
	}
	return b.vtOf(i)
}

// SystemVirtualTime returns the fleet-wide system virtual time in
// normalized work.
func (b *Board) SystemVirtualTime() core.Work { return b.sysVT }

// Principals returns every principal the board has seen, in first-
// appearance order.
func (b *Board) Principals() []string {
	out := make([]string, len(b.order))
	for j, i := range b.order {
		out[j] = b.slab[i].name
	}
	return out
}

// ActiveLen returns the number of fleet-active principals, for tests.
func (b *Board) ActiveLen() int {
	n := 0
	for s := range b.shards {
		n += len(b.shards[s].heap)
	}
	return n
}

// The shard heaps: binary min-heaps of slab indexes ordered by
// (vt, slab index), positions written back through Board.slab.

func (b *Board) boardLess(x, y uint32) bool {
	px, py := &b.slab[x], &b.slab[y]
	if px.vt != py.vt {
		return px.vt < py.vt
	}
	return x < y
}

func (s *boardShard) push(b *Board, i uint32) {
	s.heap = append(s.heap, i)
	b.slab[i].heapPos = int32(len(s.heap) - 1)
	s.heapUp(b, len(s.heap)-1)
}

func (s *boardShard) delete(b *Board, pos int) {
	last := len(s.heap) - 1
	moved := s.heap[last]
	removed := s.heap[pos]
	s.heap[pos] = moved
	s.heap = s.heap[:last]
	b.slab[removed].heapPos = boardIdle
	if pos < last {
		b.slab[moved].heapPos = int32(pos)
		s.heapDown(b, pos)
		s.heapUp(b, int(b.slab[moved].heapPos))
	}
}

func (s *boardShard) heapUp(b *Board, pos int) {
	for pos > 0 {
		parent := (pos - 1) / 2
		if !b.boardLess(s.heap[pos], s.heap[parent]) {
			return
		}
		s.swap(b, pos, parent)
		pos = parent
	}
}

func (s *boardShard) heapDown(b *Board, pos int) {
	n := len(s.heap)
	for {
		l := 2*pos + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && b.boardLess(s.heap[r], s.heap[l]) {
			min = r
		}
		if !b.boardLess(s.heap[min], s.heap[pos]) {
			return
		}
		s.swap(b, pos, min)
		pos = min
	}
}

func (s *boardShard) swap(b *Board, x, y int) {
	s.heap[x], s.heap[y] = s.heap[y], s.heap[x]
	b.slab[s.heap[x]].heapPos = int32(x)
	b.slab[s.heap[y]].heapPos = int32(y)
}
