package fleet

import (
	"repro/internal/core"
)

// Board is the fleet-wide virtual-time exchange (it implements
// core.FleetVT). Per-device Disengaged Fair Queueing instances report
// the usage they charge at every engagement episode; the board folds
// the charges into one virtual time per principal (tenant name),
// advances the fleet-wide system virtual time — the oldest virtual time
// among principals active on any device — and hands back each
// principal's lead over it. The per-device schedulers deny free runs on
// fleet-wide leads, which is what makes fairness hold across devices: a
// tenant drawing service from three devices accrues virtual time three
// times as fast and is denied everywhere until the others catch up.
//
// All quantities are in weighted normalized core.Work: each device
// converts its observed device time at its own class speed and divides
// by the consuming tenant's fair-share weight before reporting, so on a
// heterogeneous fleet a ledger entry means the same amount of
// *entitlement consumed* no matter which generation of card provided
// the service or how large the tenant's contractual share is — a
// weight-4 tenant's ledger advances at a quarter rate and it is denied
// a quarter as often, fleet-wide. (Under the raw-charge ablation the
// devices report unscaled device time and the board — unknowingly —
// compares unlike units; that is the failure mode the hetero experiment
// demonstrates.)
//
// Every operation the board performs is commutative across principals
// (sums, set membership, a minimum), so results do not depend on map
// iteration order and the simulation stays deterministic.
type Board struct {
	vt       map[string]core.Work
	activeOn map[string]map[string]bool
	order    []string
	sysVT    core.Work

	// Episodes counts reconciliations, for tests.
	Episodes int64
}

// NewBoard returns an empty fleet-wide virtual-time board.
func NewBoard() *Board {
	return &Board{
		vt:       make(map[string]core.Work),
		activeOn: make(map[string]map[string]bool),
	}
}

// ReconcileEpisode implements core.FleetVT. charges is the estimated
// normalized work the reporting device attributed to each principal
// this episode; active marks the principals with work pending there
// (false explicitly clears the mark). The returned map holds, for every
// principal in either argument, its reconciled lead over the fleet-wide
// system virtual time; the reporting scheduler compares leads against
// its own free-run horizon (converted to its work rate) to decide
// denials.
func (b *Board) ReconcileEpisode(device string, charges map[string]core.Work,
	active map[string]bool) map[string]core.Work {
	b.Episodes++

	for name, c := range charges {
		b.ensure(name)
		b.vt[name] += c
	}
	for name, a := range active {
		b.ensure(name)
		if a {
			b.activeOn[name][device] = true
		} else {
			delete(b.activeOn[name], device)
		}
	}

	// The fleet system virtual time is the oldest virtual time among
	// principals active anywhere; it only moves forward.
	first := true
	var minVT core.Work
	for _, name := range b.order {
		if len(b.activeOn[name]) == 0 {
			continue
		}
		if first || b.vt[name] < minVT {
			minVT = b.vt[name]
			first = false
		}
	}
	if !first && minVT > b.sysVT {
		b.sysVT = minVT
	}

	// Fleet-idle principals forfeit unused credit, as in single-device
	// DFQ: returning after a lull must not grant a burst of back service.
	for _, name := range b.order {
		if len(b.activeOn[name]) == 0 && b.vt[name] < b.sysVT {
			b.vt[name] = b.sysVT
		}
	}

	leads := make(map[string]core.Work, len(active)+len(charges))
	for name := range active {
		leads[name] = b.vt[name] - b.sysVT
	}
	for name := range charges {
		leads[name] = b.vt[name] - b.sysVT
	}
	return leads
}

// ensure registers a principal, starting it at the fleet system virtual
// time — the same late-joiner rule as single-device DFQ.
func (b *Board) ensure(name string) {
	if _, ok := b.vt[name]; ok {
		return
	}
	b.vt[name] = b.sysVT
	b.activeOn[name] = make(map[string]bool)
	b.order = append(b.order, name)
}

// VirtualTime returns the principal's fleet-wide virtual time in
// normalized work, for tests and reports.
func (b *Board) VirtualTime(name string) core.Work { return b.vt[name] }

// SystemVirtualTime returns the fleet-wide system virtual time in
// normalized work.
func (b *Board) SystemVirtualTime() core.Work { return b.sysVT }

// Principals returns every principal the board has seen, in first-
// appearance order.
func (b *Board) Principals() []string { return append([]string(nil), b.order...) }
