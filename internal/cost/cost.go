// Package cost centralizes the latency model of the simulated platform.
//
// Every expense the paper measures — direct register writes, syscall
// traps, page-fault interception, NEON's per-fault buffer scanning, GPU
// context switches, polling granularity — is a field here, so schedulers
// contain no magic numbers and parameter ablations are plain sweeps.
//
// The package also owns the device-class registry: production fleets mix
// accelerator generations, where a second of device time on one card is
// not a second on another. A Class names a generation and carries its
// relative speed factor; Model.ForClass derives the class's latency
// model from the calibrated reference. Everything above this layer
// (gpu execution, normalized fair-queueing accounting, placement) reads
// speed factors from here.
package cost

import (
	"fmt"
	"strings"
	"time"
)

// Model is the set of platform latencies, all in virtual time.
type Model struct {
	// DirectWrite is the cost of a store to a directly mapped device
	// register (305 cycles at 2.27 GHz in the paper's testbed).
	DirectWrite time.Duration

	// SyscallTrap is the round-trip cost of a minimal user/kernel mode
	// switch, as paid per request by a trap-per-request stack.
	SyscallTrap time.Duration

	// SyscallDriverWork is the additional per-request cost when the trap
	// performs nontrivial GPU-driver processing (the paper's 48-170%
	// comparison point).
	SyscallDriverWork time.Duration

	// FaultTrap is the cost of taking a page fault on a protected channel
	// register, delivering it to the handler, single-stepping the faulting
	// instruction and restoring protection.
	FaultTrap time.Duration

	// FaultScan is NEON's per-intercepted-request manipulation cost:
	// scanning the command queue for the reference counter location and
	// building kernel mappings (paper Section 4).
	FaultScan time.Duration

	// ReengageScan is the post-re-engagement status update: walking every
	// active channel's buffers to find the last submitted reference values
	// (paid once per re-engagement, per active channel).
	ReengageScan time.Duration

	// ContextSwitch is the GPU-side cost of switching the engine between
	// channels of different contexts.
	ContextSwitch time.Duration

	// PollInterval is the granularity of the kernel polling-thread
	// service that detects request completions via reference counters.
	PollInterval time.Duration

	// SchedulerCompute is the CPU cost of one scheduling decision in the
	// kernel (virtual time bookkeeping, token pass, etc.).
	SchedulerCompute time.Duration
}

// Default returns the calibrated latency model from DESIGN.md Section 5.
func Default() Model {
	return Model{
		DirectWrite:       140 * time.Nanosecond,
		SyscallTrap:       3500 * time.Nanosecond,
		SyscallDriverWork: 15 * time.Microsecond,
		FaultTrap:         4 * time.Microsecond,
		FaultScan:         8 * time.Microsecond,
		ReengageScan:      8 * time.Microsecond,
		ContextSwitch:     12 * time.Microsecond,
		PollInterval:      1 * time.Millisecond,
		SchedulerCompute:  2 * time.Microsecond,
	}
}

// InterceptCost is the full per-request price of fault-based capture:
// trap plus buffer-scan manipulation.
func (m Model) InterceptCost() time.Duration { return m.FaultTrap + m.FaultScan }

// Class is one device generation of a heterogeneous fleet: a name and a
// relative speed factor against the reference class. A request of
// nominal size S occupies a class-c engine for S/c.Speed of device
// time; conversely, t of observed device time on that engine is
// t*c.Speed of normalized work (reference-class device time) — the
// heterogeneity-normalized unit Gavel-style policies account in.
type Class struct {
	// Name identifies the class in configs, flags, and reports.
	Name string
	// Speed is the relative throughput factor: 1.0 is the reference
	// (K20-class) device, 0.5 half its rate, 2.0 twice.
	Speed float64
}

// ReferenceClass is the K20-class device every nominal request size and
// the calibrated latency model are stated against.
func ReferenceClass() Class { return Class{Name: "k20", Speed: 1.0} }

// Classes lists the known device classes in presentation order: the
// reference datacenter card, a consumer card at half its rate, and a
// next-generation part at twice it.
func Classes() []Class {
	return []Class{
		ReferenceClass(),
		{Name: "consumer", Speed: 0.5},
		{Name: "nextgen", Speed: 2.0},
	}
}

// ClassNames lists the selectable class names in presentation order.
func ClassNames() []string {
	cs := Classes()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// ClassByName resolves a device class by name. An unknown name is an
// error listing the valid classes.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("cost: unknown device class %q (valid: %s)",
		name, strings.Join(ClassNames(), ", "))
}

// OrReference returns the class itself, or the reference class for the
// zero value — so configs may simply leave the class unset.
func (c Class) OrReference() Class {
	if c.Name == "" && c.Speed == 0 {
		return ReferenceClass()
	}
	return c
}

// ForClass derives the class's latency model from the calibrated
// reference model: device-side latencies (the context switch the
// engine pays between contexts) scale inversely with the class speed,
// while host-side costs — register writes, traps, buffer scans, the
// polling service, scheduler compute — are properties of the CPU and
// kernel and do not change with the card.
func (m Model) ForClass(c Class) Model {
	c = c.OrReference()
	if c.Speed == 1 {
		return m
	}
	m.ContextSwitch = time.Duration(float64(m.ContextSwitch) / c.Speed)
	return m
}
