// Package cost centralizes the latency model of the simulated platform.
//
// Every expense the paper measures — direct register writes, syscall
// traps, page-fault interception, NEON's per-fault buffer scanning, GPU
// context switches, polling granularity — is a field here, so schedulers
// contain no magic numbers and parameter ablations are plain sweeps.
package cost

import "time"

// Model is the set of platform latencies, all in virtual time.
type Model struct {
	// DirectWrite is the cost of a store to a directly mapped device
	// register (305 cycles at 2.27 GHz in the paper's testbed).
	DirectWrite time.Duration

	// SyscallTrap is the round-trip cost of a minimal user/kernel mode
	// switch, as paid per request by a trap-per-request stack.
	SyscallTrap time.Duration

	// SyscallDriverWork is the additional per-request cost when the trap
	// performs nontrivial GPU-driver processing (the paper's 48-170%
	// comparison point).
	SyscallDriverWork time.Duration

	// FaultTrap is the cost of taking a page fault on a protected channel
	// register, delivering it to the handler, single-stepping the faulting
	// instruction and restoring protection.
	FaultTrap time.Duration

	// FaultScan is NEON's per-intercepted-request manipulation cost:
	// scanning the command queue for the reference counter location and
	// building kernel mappings (paper Section 4).
	FaultScan time.Duration

	// ReengageScan is the post-re-engagement status update: walking every
	// active channel's buffers to find the last submitted reference values
	// (paid once per re-engagement, per active channel).
	ReengageScan time.Duration

	// ContextSwitch is the GPU-side cost of switching the engine between
	// channels of different contexts.
	ContextSwitch time.Duration

	// PollInterval is the granularity of the kernel polling-thread
	// service that detects request completions via reference counters.
	PollInterval time.Duration

	// SchedulerCompute is the CPU cost of one scheduling decision in the
	// kernel (virtual time bookkeeping, token pass, etc.).
	SchedulerCompute time.Duration
}

// Default returns the calibrated latency model from DESIGN.md Section 5.
func Default() Model {
	return Model{
		DirectWrite:       140 * time.Nanosecond,
		SyscallTrap:       3500 * time.Nanosecond,
		SyscallDriverWork: 15 * time.Microsecond,
		FaultTrap:         4 * time.Microsecond,
		FaultScan:         8 * time.Microsecond,
		ReengageScan:      8 * time.Microsecond,
		ContextSwitch:     12 * time.Microsecond,
		PollInterval:      1 * time.Millisecond,
		SchedulerCompute:  2 * time.Microsecond,
	}
}

// InterceptCost is the full per-request price of fault-based capture:
// trap plus buffer-scan manipulation.
func (m Model) InterceptCost() time.Duration { return m.FaultTrap + m.FaultScan }
