package cost

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultAllPositive(t *testing.T) {
	m := Default()
	for name, d := range map[string]time.Duration{
		"DirectWrite":       m.DirectWrite,
		"SyscallTrap":       m.SyscallTrap,
		"SyscallDriverWork": m.SyscallDriverWork,
		"FaultTrap":         m.FaultTrap,
		"FaultScan":         m.FaultScan,
		"ReengageScan":      m.ReengageScan,
		"ContextSwitch":     m.ContextSwitch,
		"PollInterval":      m.PollInterval,
		"SchedulerCompute":  m.SchedulerCompute,
	} {
		if d <= 0 {
			t.Errorf("%s = %v, want > 0", name, d)
		}
	}
}

func TestInterceptCostIsTrapPlusScan(t *testing.T) {
	m := Default()
	if got, want := m.InterceptCost(), m.FaultTrap+m.FaultScan; got != want {
		t.Fatalf("InterceptCost() = %v, want %v", got, want)
	}
	m.FaultTrap = 7 * time.Microsecond
	m.FaultScan = 11 * time.Microsecond
	if got := m.InterceptCost(); got != 18*time.Microsecond {
		t.Fatalf("InterceptCost() = %v after override, want 18us", got)
	}
}

// The calibrated model must preserve the orderings the paper's argument
// rests on: direct stores are far cheaper than any kernel entry, fault
// interception costs more than a plain trap, and driver work dominates
// the minimal trap.
func TestDefaultOrderings(t *testing.T) {
	m := Default()
	if m.DirectWrite*10 > m.SyscallTrap {
		t.Errorf("DirectWrite %v should be well under a syscall trap %v", m.DirectWrite, m.SyscallTrap)
	}
	if m.InterceptCost() <= m.SyscallTrap {
		t.Errorf("fault interception %v should exceed a plain trap %v", m.InterceptCost(), m.SyscallTrap)
	}
	if m.SyscallDriverWork <= m.SyscallTrap {
		t.Errorf("driver work %v should exceed the minimal trap %v", m.SyscallDriverWork, m.SyscallTrap)
	}
	if m.PollInterval <= m.InterceptCost() {
		t.Errorf("polling granularity %v should dwarf per-request interception %v", m.PollInterval, m.InterceptCost())
	}
}

func TestClassRegistry(t *testing.T) {
	ref := ReferenceClass()
	if ref.Speed != 1.0 {
		t.Fatalf("reference class speed = %v, want 1.0", ref.Speed)
	}
	seen := map[string]bool{}
	for _, c := range Classes() {
		if c.Speed <= 0 {
			t.Errorf("class %s has non-positive speed %v", c.Name, c.Speed)
		}
		if seen[c.Name] {
			t.Errorf("duplicate class name %s", c.Name)
		}
		seen[c.Name] = true
		got, err := ClassByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ClassByName(%s) = %v, %v", c.Name, got, err)
		}
	}
	if !seen[ref.Name] {
		t.Errorf("registry omits the reference class %s", ref.Name)
	}
	if _, err := ClassByName("bogus"); err == nil {
		t.Fatal("ClassByName(bogus) should fail")
	} else {
		for _, name := range ClassNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q does not name valid class %q", err, name)
			}
		}
	}
	if got := (Class{}).OrReference(); got != ref {
		t.Fatalf("zero class OrReference = %v, want reference", got)
	}
	if c := (Class{Name: "consumer", Speed: 0.5}); c.OrReference() != c {
		t.Fatal("OrReference must not replace a set class")
	}
}

// ForClass scales only device-side latencies: a faster card switches
// contexts faster, but traps, scans, and polling are host costs.
func TestForClassScalesDeviceSideOnly(t *testing.T) {
	m := Default()
	fast := m.ForClass(Class{Name: "nextgen", Speed: 2.0})
	if fast.ContextSwitch != m.ContextSwitch/2 {
		t.Errorf("nextgen context switch = %v, want %v", fast.ContextSwitch, m.ContextSwitch/2)
	}
	slow := m.ForClass(Class{Name: "consumer", Speed: 0.5})
	if slow.ContextSwitch != 2*m.ContextSwitch {
		t.Errorf("consumer context switch = %v, want %v", slow.ContextSwitch, 2*m.ContextSwitch)
	}
	for _, d := range []Model{fast, slow} {
		if d.SyscallTrap != m.SyscallTrap || d.FaultScan != m.FaultScan ||
			d.PollInterval != m.PollInterval || d.SchedulerCompute != m.SchedulerCompute ||
			d.DirectWrite != m.DirectWrite {
			t.Errorf("ForClass changed a host-side cost: %+v vs %+v", d, m)
		}
	}
	if got := m.ForClass(ReferenceClass()); got != m {
		t.Fatal("reference class must derive the identical model")
	}
	if got := m.ForClass(Class{}); got != m {
		t.Fatal("zero class must derive the identical (reference) model")
	}
}

// Model is a value type: sweeping one parameter must not alias Default.
func TestModelIsValueType(t *testing.T) {
	a := Default()
	b := a
	b.PollInterval = 123 * time.Millisecond
	if a.PollInterval == b.PollInterval {
		t.Fatal("modifying a copy changed the original model")
	}
	if Default().PollInterval == 123*time.Millisecond {
		t.Fatal("Default() returns shared mutable state")
	}
}
