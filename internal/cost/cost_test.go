package cost

import (
	"testing"
	"time"
)

func TestDefaultAllPositive(t *testing.T) {
	m := Default()
	for name, d := range map[string]time.Duration{
		"DirectWrite":       m.DirectWrite,
		"SyscallTrap":       m.SyscallTrap,
		"SyscallDriverWork": m.SyscallDriverWork,
		"FaultTrap":         m.FaultTrap,
		"FaultScan":         m.FaultScan,
		"ReengageScan":      m.ReengageScan,
		"ContextSwitch":     m.ContextSwitch,
		"PollInterval":      m.PollInterval,
		"SchedulerCompute":  m.SchedulerCompute,
	} {
		if d <= 0 {
			t.Errorf("%s = %v, want > 0", name, d)
		}
	}
}

func TestInterceptCostIsTrapPlusScan(t *testing.T) {
	m := Default()
	if got, want := m.InterceptCost(), m.FaultTrap+m.FaultScan; got != want {
		t.Fatalf("InterceptCost() = %v, want %v", got, want)
	}
	m.FaultTrap = 7 * time.Microsecond
	m.FaultScan = 11 * time.Microsecond
	if got := m.InterceptCost(); got != 18*time.Microsecond {
		t.Fatalf("InterceptCost() = %v after override, want 18us", got)
	}
}

// The calibrated model must preserve the orderings the paper's argument
// rests on: direct stores are far cheaper than any kernel entry, fault
// interception costs more than a plain trap, and driver work dominates
// the minimal trap.
func TestDefaultOrderings(t *testing.T) {
	m := Default()
	if m.DirectWrite*10 > m.SyscallTrap {
		t.Errorf("DirectWrite %v should be well under a syscall trap %v", m.DirectWrite, m.SyscallTrap)
	}
	if m.InterceptCost() <= m.SyscallTrap {
		t.Errorf("fault interception %v should exceed a plain trap %v", m.InterceptCost(), m.SyscallTrap)
	}
	if m.SyscallDriverWork <= m.SyscallTrap {
		t.Errorf("driver work %v should exceed the minimal trap %v", m.SyscallDriverWork, m.SyscallTrap)
	}
	if m.PollInterval <= m.InterceptCost() {
		t.Errorf("polling granularity %v should dwarf per-request interception %v", m.PollInterval, m.InterceptCost())
	}
}

// Model is a value type: sweeping one parameter must not alias Default.
func TestModelIsValueType(t *testing.T) {
	a := Default()
	b := a
	b.PollInterval = 123 * time.Millisecond
	if a.PollInterval == b.PollInterval {
		t.Fatal("modifying a copy changed the original model")
	}
	if Default().PollInterval == 123*time.Millisecond {
		t.Fatal("Default() returns shared mutable state")
	}
}
