// Package repro is a from-scratch Go reproduction of "Disengaged
// Scheduling for Fair, Protected Access to Fast Computational
// Accelerators" (Menychtas, Shen, Scott — ASPLOS 2014).
//
// The paper's NEON prototype interposes on the memory-mapped submission
// interface of real Nvidia GPUs from a Linux kernel module. That cannot
// be done from user-space Go, so this repository reproduces the system on
// a deterministic discrete-event simulation of the full stack:
//
//   - internal/sim      — the discrete-event engine
//   - internal/mmio     — the direct-mapped register interface and its
//     page-protection interception point
//   - internal/gpu      — the accelerator (channels, reference counters,
//     round-robin arbitration, context switching, DMA overlap, limits)
//   - internal/neon     — the kernel module analog (fault handler,
//     polling service, drain barriers, sampling, kill, channel policy)
//   - internal/core     — the schedulers: Timeslice with overuse control,
//     Disengaged Timeslice, Disengaged Fair Queueing, plus the direct
//     access baseline and an oracle-statistics ablation
//   - internal/fleet    — the multi-device layer: class-aware device
//     pools, placement policies (round-robin, least-loaded,
//     locality-sticky, fastest-fit, class-aware sticky), fleet-wide
//     virtual-time reconciliation in weighted normalized work units,
//     and the round-based allocator enforcing declarative policies
//   - internal/policy   — declarative allocation policies over the
//     tenant×class throughput matrix: static, max-min fairness,
//     hierarchical organization shares, cost minimization
//   - internal/traffic  — the open-loop serving layer: arrival
//     processes, tier-aware admission control, latency stamping
//   - internal/userlib  — the user-space runtime library analog
//   - internal/workload — Table 1 application models, Throttle, and
//     adversarial workloads
//   - internal/exp      — one driver per table and figure of the paper
//
// Run the evaluation with:
//
//	go run ./cmd/neonsim -list
//	go run ./cmd/neonsim -exp all -quick
//	go run ./cmd/neonsim -exp all -quick -parallel 8   # same bytes, faster
//
// Scenarios within each experiment run on a bounded worker pool, one
// private engine per scenario, with RNG streams keyed by scenario
// identity — so serial and parallel runs emit byte-identical tables.
//
// See README.md for the quickstart and package map, DESIGN.md for the
// substitution argument, system inventory, and harness architecture,
// EXPERIMENTS.md for how to regenerate each figure (including the
// -parallel and -json flags) and what to expect versus the paper,
// SCHEDULERS.md for the full scheduling and placement policy
// reference, and PERFORMANCE.md for the benchmark methodology, the
// committed BENCH_*.json trajectory, and the CI regression gate.
package repro
