// Package repro is a from-scratch Go reproduction of "Disengaged
// Scheduling for Fair, Protected Access to Fast Computational
// Accelerators" (Menychtas, Shen, Scott — ASPLOS 2014).
//
// The paper's NEON prototype interposes on the memory-mapped submission
// interface of real Nvidia GPUs from a Linux kernel module. That cannot
// be done from user-space Go, so this repository reproduces the system on
// a deterministic discrete-event simulation of the full stack:
//
//   - internal/sim      — the discrete-event engine
//   - internal/mmio     — the direct-mapped register interface and its
//     page-protection interception point
//   - internal/gpu      — the accelerator (channels, reference counters,
//     round-robin arbitration, context switching, DMA overlap, limits)
//   - internal/neon     — the kernel module analog (fault handler,
//     polling service, drain barriers, sampling, kill, channel policy)
//   - internal/core     — the schedulers: Timeslice with overuse control,
//     Disengaged Timeslice, Disengaged Fair Queueing, plus the direct
//     access baseline and an oracle-statistics ablation
//   - internal/userlib  — the user-space runtime library analog
//   - internal/workload — Table 1 application models, Throttle, and
//     adversarial workloads
//   - internal/exp      — one driver per table and figure of the paper
//
// Run the evaluation with:
//
//	go run ./cmd/neonsim -list
//	go run ./cmd/neonsim -exp all -quick
//
// See DESIGN.md for the substitution argument and system inventory, and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
