package repro

import (
	"os"
	"regexp"
	"testing"
)

// TestDocCrossReferences pins the documentation graph: every markdown
// file that doc.go or a top-level document points at must exist, so
// onboarding links (doc.go → README.md → DESIGN.md / EXPERIMENTS.md /
// SCHEDULERS.md) never dangle.
func TestDocCrossReferences(t *testing.T) {
	sources := []string{"doc.go", "README.md", "DESIGN.md", "EXPERIMENTS.md", "SCHEDULERS.md"}
	ref := regexp.MustCompile(`[A-Za-z0-9_-]+\.md`)

	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, target := range ref.FindAllString(string(data), -1) {
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s references %s, which does not exist", src, target)
			}
		}
	}
}
