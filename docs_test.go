package repro

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// docSources is the documentation graph whose links must never dangle:
// doc.go → README.md → DESIGN.md / EXPERIMENTS.md / SCHEDULERS.md /
// PERFORMANCE.md.
var docSources = []string{
	"doc.go", "README.md", "DESIGN.md", "EXPERIMENTS.md",
	"SCHEDULERS.md", "PERFORMANCE.md",
}

// TestDocCrossReferences pins the documentation graph: every markdown
// file and every committed trajectory point (BENCH_<n>.json) that a
// doc source points at must exist.
func TestDocCrossReferences(t *testing.T) {
	ref := regexp.MustCompile(`[A-Za-z0-9_-]+\.md|BENCH_[0-9]+\.json`)

	for _, src := range docSources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, target := range ref.FindAllString(string(data), -1) {
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s references %s, which does not exist", src, target)
			}
		}
	}
}

// TestDocSectionReferences resolves in-document section pointers:
// every "DESIGN.md §N" written anywhere in the doc graph must match an
// actual "## N." heading in DESIGN.md, so renumbering or deleting a
// section without fixing its referrers fails the build.
func TestDocSectionReferences(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	heading := regexp.MustCompile(`(?m)^## ([0-9]+)\.`)
	sections := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(string(design), -1) {
		sections[m[1]] = true
	}
	if len(sections) == 0 {
		t.Fatal("DESIGN.md has no numbered '## N.' sections")
	}
	secRef := regexp.MustCompile(`DESIGN\.md §([0-9]+)`)
	for _, src := range docSources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, m := range secRef.FindAllStringSubmatch(string(data), -1) {
			if !sections[m[1]] {
				t.Errorf("%s references DESIGN.md §%s, which has no '## %s.' heading",
					src, m[1], m[1])
			}
		}
	}
}

// TestPerformanceDocCoversGateBenchmarks pins PERFORMANCE.md to the
// bench machinery it documents: the gate benchmarks, the regeneration
// tool, and the golden gate must be mentioned by name, so renaming any
// of them without updating the methodology doc fails the build.
func TestPerformanceDocCoversGateBenchmarks(t *testing.T) {
	data, err := os.ReadFile("PERFORMANCE.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"BenchmarkSimEngine", "BenchmarkRequestPath", "BenchmarkDFQCycle",
		"BenchmarkDFQCycleTenants", "BenchmarkBoardReconcile",
		"BenchmarkRequestPathAsync", "BenchmarkClosedLoopSync",
		"BenchmarkDispatcherDrain",
		"cmd/benchjson", "quick.golden", "BENCH_6.json", "BENCH_7.json",
		"BENCH_8.json", "BENCH_9.json", "DESIGN.md §11", "DESIGN.md §12",
		"DESIGN.md §13", "DESIGN.md §14",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("PERFORMANCE.md does not mention %s", want)
		}
	}
}

// TestExperimentsDocCoversRegistry keeps EXPERIMENTS.md in step with
// the CLI: every experiment ID runnable via -exp must appear in the
// regeneration guide.
func TestExperimentsDocCoversRegistry(t *testing.T) {
	data, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, id := range []string{
		"table1", "fig2", "sec3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "protect", "sec63", "ablation-stats",
		"ablation-params", "fleet", "serve", "hetero", "tiers",
		"-exp scale", "-tenants", "-exp policy", "-policy", "-deep",
	} {
		if !strings.Contains(doc, id) {
			t.Errorf("EXPERIMENTS.md does not document experiment %q", id)
		}
	}
}

// TestDesignDocCoversEngineInternals pins DESIGN.md §11's anchor
// terms: the queue seam, pool APIs, and differential tests it
// documents must keep their names, or the section silently rots.
func TestDesignDocCoversEngineInternals(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"## 11.", "NextAfterNow", "LegacyHeapQueue", "NewEngineWithQueue",
		"DefaultEventQueue", "TestDifferentialEventStorm",
		"TestDifferentialQueueTables", "TestPropertyTimerStopRecycledGeneration",
		"Request.Release", "Request.Pin",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("DESIGN.md does not mention %s", want)
		}
	}
}

// TestDesignDocCoversScaleIndex pins DESIGN.md §12's anchor terms: the
// ledger seam, the index/board types, and every test the section cites
// as evidence must keep their names.
func TestDesignDocCoversScaleIndex(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"## 12.", "core.FlowIndex", "core.FlowID", "core.DefaultDFQLedger",
		"LinearLedger", "NewDisengagedFairQueueingWithLedger",
		"fleet.NewBoardWith", "fleet.Config.BoardEpoch",
		"TestDifferentialDFQIndex", "TestDifferentialLedgerTables",
		"FuzzDFQIndexOps", "TestFlowIndexStaleHandles",
		"TestBoardShardCountInvariance", "TestBoardEpochLeadBound",
		"TestBoardShardUnderflowPanic", "BenchmarkDFQCycleTenants",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("DESIGN.md does not mention %s", want)
		}
	}
}

// TestDesignDocCoversSubmission pins DESIGN.md §14's anchor terms: the
// continuation API, the slow-path commitment rules (committed fault,
// side-effect-free peek), the batch staging surface, and every test
// and benchmark the section cites as evidence must keep their names.
func TestDesignDocCoversSubmission(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"## 14.", "userlib.SubmitAsync", "gpu.Request.OnDone",
		"mmio.StoreAsync", "SubmitSync", "SubmitEngaged",
		"mmio.Page.StoreFaulting", "userlib.Client.Engaged",
		"neon.VContext.Peek", "userlib.BeginBatch", "Batch.Flush",
		"traffic.Config.BatchDrain", "StreamStats.Flushes",
		"TestSubmitAsyncRefusesEngagedChannel",
		"TestSubmitAsyncRefusesTrapPerRequest",
		"TestSubmitEngagedCommitsFault",
		"TestBatchDrainOneDoorbellPerBacklog",
		"TestBatchDrainUnderDFQEngagement", "TestBatchDrainStampsSojourns",
		"BenchmarkRequestPathAsync", "BenchmarkClosedLoopSync",
		"BenchmarkDispatcherDrainBatched",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("DESIGN.md does not mention %s", want)
		}
	}
}

// TestDesignDocCoversMux pins DESIGN.md §13's anchor terms: the
// virtual-context table's API surface, the graceful-detach seam, the
// board batch types, and every test the section cites as evidence must
// keep their names.
func TestDesignDocCoversMux(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"## 13.", "neon.VContext", "Kernel.OpenVirtual", "MuxStats",
		"gpu.Device.ReleaseContext", "gpu.Device.CompletionObserver",
		"ContextSwitch", "ErrNoContexts",
		"core.EpisodeEntry", "Board.ReconcileEpisodeBatch",
		"TestMuxHostsStormPastContextCap", "TestMuxKillMidBacklogRecyclesSlot",
		"TestMuxTightPoolStorm", "TestBoardEagerClampDifferential",
		"BenchmarkBoardReconcile", "RunScaleFullCell",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("DESIGN.md does not mention %s", want)
		}
	}
}

// TestDesignDocCoversPolicy pins DESIGN.md §15's anchor terms: the
// policy types, the enforcement seams of the round-based allocator,
// and every test the section cites as evidence must keep their names,
// or the policy/mechanism chapter silently rots.
func TestDesignDocCoversPolicy(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"## 15.", "policy.Policy", "policy.Snapshot", "policy.Targets",
		"policy.Static", "policy.MaxMin", "policy.Hierarchical",
		"policy.CostMin", "policy.ClassPreference", "policy.TierBounds",
		"policy.DefaultPrices", "fleet.Config.AllocPolicy",
		"fleet.DefaultAllocEvery", "Tenant.EffectiveWeight",
		"fleet.OnTargets", "workload.TenantSpec.Validate",
		"core.LeadBound", "TestReweightingPreservesLeadBound",
		"TestAllocatorStaticIsInert", "TestStaticPolicyTiersByteIdentical",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("DESIGN.md does not mention %s", want)
		}
	}
}
