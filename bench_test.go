package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/neon"
	"repro/internal/sim"
	"repro/internal/userlib"
	"repro/internal/workload"
)

// benchOpts shrinks measurement windows so the full bench suite stays
// fast; the shapes reported are the same as `neonsim -exp all`.
func benchOpts() exp.Options {
	o := exp.Quick()
	o.Warmup = 30 * time.Millisecond
	o.Measure = 120 * time.Millisecond
	return o
}

// benchExperiment regenerates one paper artifact per iteration and
// reports simulated-vs-wall time.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := e.Run(opts)
		if len(table.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// One benchmark per table/figure of the paper (DESIGN.md Section 3).

func BenchmarkTable1(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkSec3Throughput(b *testing.B) { benchExperiment(b, "sec3") }
func BenchmarkFig4(b *testing.B)           { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)           { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkProtection(b *testing.B)     { benchExperiment(b, "protect") }
func BenchmarkSec63DoS(b *testing.B)       { benchExperiment(b, "sec63") }
func BenchmarkAblationStats(b *testing.B)  { benchExperiment(b, "ablation-stats") }
func BenchmarkAblationParams(b *testing.B) { benchExperiment(b, "ablation-params") }

// benchExperimentAt regenerates one artifact per iteration at a fixed
// scenario-pool width; comparing widths measures the harness speedup
// (the fig6 pair is the acceptance gate for the parallel harness).
func benchExperimentAt(b *testing.B, id string, parallel int) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := benchOpts()
	opts.Parallel = parallel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := e.Run(opts)
		if len(table.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig6Serial(b *testing.B)    { benchExperimentAt(b, "fig6", 1) }
func BenchmarkFig6Parallel4(b *testing.B) { benchExperimentAt(b, "fig6", 4) }
func BenchmarkFig4Serial(b *testing.B)    { benchExperimentAt(b, "fig4", 1) }
func BenchmarkFig4Parallel4(b *testing.B) { benchExperimentAt(b, "fig4", 4) }
func BenchmarkFig9Serial(b *testing.B)    { benchExperimentAt(b, "fig9", 1) }
func BenchmarkFig9Parallel4(b *testing.B) { benchExperimentAt(b, "fig9", 4) }
func BenchmarkServeSerial(b *testing.B)   { benchExperimentAt(b, "serve", 1) }
func BenchmarkServeParallel4(b *testing.B) {
	benchExperimentAt(b, "serve", 4)
}
func BenchmarkHeteroSerial(b *testing.B)    { benchExperimentAt(b, "hetero", 1) }
func BenchmarkHeteroParallel4(b *testing.B) { benchExperimentAt(b, "hetero", 4) }

// BenchmarkSimEngine measures raw event throughput of the simulation
// substrate: how many scheduled callbacks the engine dispatches per
// second of wall time. The engine is Reset between iterations, so the
// allocation-free reuse path is what is measured.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100000 {
				eng.After(time.Microsecond, tick)
			}
		}
		eng.After(0, tick)
		eng.Run()
		if n != 100000 {
			b.Fatalf("dispatched %d events", n)
		}
	}
}

// BenchmarkRequestPath measures the full submission path: stage, doorbell
// store, device execution, reference-counter completion, user wakeup.
func BenchmarkRequestPath(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	dev := gpu.New(eng, gpu.DefaultConfig())
	k := neon.NewKernel(dev, benchNoSched{})
	t := k.NewTask("bench")
	done := 0
	t.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, k, t, "bench", gpu.Compute)
		if err != nil {
			return
		}
		for {
			r := client.SubmitSync(p, gpu.Compute, 10*time.Microsecond)
			done++
			// The request is fully retired (sync submit waits out the
			// completion); recycle it so the steady state does not allocate.
			r.Release()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(time.Millisecond)
	}
	if done == 0 {
		b.Fatal("no requests completed")
	}
	b.ReportMetric(float64(done)/float64(b.N), "requests/ms-simulated")
}

// BenchmarkRequestPathAsync is BenchmarkRequestPath driven by the
// continuation API (DESIGN.md §14): the client is a self-rescheduling
// machine — stage, async doorbell, resubmit from the completion hook in
// engine context — so no process parks or unparks per request. The
// sync/async pair prices the per-request goroutine handoff; the async
// steady state must stay at 0 allocs/op (gated absolutely in CI once
// recorded at zero).
func BenchmarkRequestPathAsync(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	dev := gpu.New(eng, gpu.DefaultConfig())
	k := neon.NewKernel(dev, benchNoSched{})
	t := k.NewTask("bench")
	done := 0
	t.Go("main", func(p *sim.Proc) {
		client, err := userlib.Open(p, k, t, "bench", gpu.Compute)
		if err != nil {
			return
		}
		var again func(r *gpu.Request)
		again = func(r *gpu.Request) {
			done++
			r.Release()
			client.SubmitAsync(eng, gpu.Compute, 10*time.Microsecond, again)
		}
		client.SubmitAsync(eng, gpu.Compute, 10*time.Microsecond, again)
	})
	// Settle setup (task, client, first staged request) and fill the
	// request pool so the timed region is the steady state.
	eng.RunFor(time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(time.Millisecond)
	}
	if done == 0 {
		b.Fatal("no requests completed")
	}
	b.ReportMetric(float64(done)/float64(b.N), "requests/ms-simulated")
}

// benchClosedLoop measures an 8-client closed-loop population on one
// device: sync keeps one parked process per in-flight request, async
// runs the same loops as continuation machines with no process after
// setup. The pair prices the park/unpark at population, where the
// run queue churn is, not just on the single-client hot path.
func benchClosedLoop(b *testing.B, async bool) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	dev := gpu.New(eng, gpu.DefaultConfig())
	k := neon.NewKernel(dev, benchNoSched{})
	done := 0
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("cl%d", i)
		t := k.NewTask(name)
		t.Go("main", func(p *sim.Proc) {
			client, err := userlib.Open(p, k, t, name, gpu.Compute)
			if err != nil {
				return
			}
			if !async {
				for {
					r := client.SubmitSync(p, gpu.Compute, 10*time.Microsecond)
					done++
					r.Release()
				}
			}
			var again func(r *gpu.Request)
			again = func(r *gpu.Request) {
				done++
				r.Release()
				client.SubmitAsync(eng, gpu.Compute, 10*time.Microsecond, again)
			}
			client.SubmitAsync(eng, gpu.Compute, 10*time.Microsecond, again)
		})
	}
	eng.RunFor(time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(time.Millisecond)
	}
	if done == 0 {
		b.Fatal("no requests completed")
	}
	b.ReportMetric(float64(done)/float64(b.N), "requests/ms-simulated")
}

func BenchmarkClosedLoopSync(b *testing.B)  { benchClosedLoop(b, false) }
func BenchmarkClosedLoopAsync(b *testing.B) { benchClosedLoop(b, true) }

// BenchmarkDFQCycle measures the cost of whole engagement/free-run cycles
// with two saturating tasks.
func BenchmarkDFQCycle(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(64*time.Microsecond, 0)
	rig := exp.NewRig(exp.DFQ, opts, dct, thr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Engine.RunFor(30 * time.Millisecond)
	}
}

// BenchmarkDFQCycleConsumerClass is BenchmarkDFQCycle on a
// consumer-class device: the same engagement/free-run machinery with
// the class-factor conversion (Work normalization, scaled execution) on
// every hot path. Comparing the pair isolates the cost of
// heterogeneity-normalized accounting.
func BenchmarkDFQCycleConsumerClass(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	cfg := gpu.DefaultConfig()
	cfg.Class, _ = cost.ClassByName("consumer")
	dev := gpu.New(eng, cfg)
	k := neon.NewKernel(dev, core.NewDisengagedFairQueueing(core.DefaultDFQConfig()))
	k.RequestRunLimit = time.Second
	dct, _ := workload.ByName("DCT")
	thr := workload.Throttle(64*time.Microsecond, 0)
	rng := sim.NewRNG(1)
	workload.Launch(k, dct, rng.ForkNamed("app", 0))
	workload.Launch(k, thr, rng.ForkNamed("app", 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(30 * time.Millisecond)
	}
}

// benchDFQCycleTenants measures one indexed-ledger engagement cycle at
// a fixed registered population: engage a 256-flow working set, charge
// weighted shares, advance the system virtual time, expire the set.
// Only active flows live in the ledger's heap, so ns/op and allocs/op
// must stay flat while the registered population grows 10^2 -> 10^5 —
// the scale experiment's sub-linearity claim restated as a steady-state
// benchmark (allocs/op settles at 0, which CI gates absolutely).
func benchDFQCycleTenants(b *testing.B, tenants int) {
	b.ReportAllocs()
	led := core.NewDFQLedger(core.IndexedLedger)
	led.Grow(tenants)
	ids := make([]core.FlowID, tenants)
	for i := range ids {
		ids[i] = led.Add()
	}
	working := 256
	if working > tenants {
		working = tenants
	}
	rng := sim.NewRNG(1)
	picks := make([]int, working)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range picks {
			picks[k] = rng.Intn(tenants)
			led.SetActive(ids[picks[k]], true)
		}
		for _, t := range picks {
			led.Charge(ids[t], core.PerWeight(core.WorkFor(100*time.Microsecond, 1), float64(1+t%4)))
		}
		led.AdvanceSysVT()
		for _, t := range picks {
			led.SetActive(ids[t], false)
		}
	}
}

func BenchmarkDFQCycleTenants1e2(b *testing.B) { benchDFQCycleTenants(b, 100) }
func BenchmarkDFQCycleTenants1e4(b *testing.B) { benchDFQCycleTenants(b, 10_000) }
func BenchmarkDFQCycleTenants1e5(b *testing.B) { benchDFQCycleTenants(b, 100_000) }

// BenchmarkBoardReconcile measures one fleet reconciliation episode on
// a board already holding 10^4 registered, fleet-active principals: 64
// charges plus activity marks folded into the sharded ledger through
// the batch exchange (the surface the per-device schedulers use), leads
// written back in place. The episode's cost tracks its own size
// (charges, shard heads), not the registered population — and the
// reusable slice-of-struct batch makes the steady state allocation-free
// where the old map-keyed exchange allocated both maps and the lead map
// every episode.
func BenchmarkBoardReconcile(b *testing.B) {
	b.ReportAllocs()
	const principals = 10_000
	board := fleet.NewBoard()
	board.Grow(principals)
	pids := make([]core.PrincipalID, principals)
	reg := make([]core.EpisodeEntry, principals)
	for i := range pids {
		pids[i] = board.Principal(fmt.Sprintf("tenant-%06d", i))
		reg[i] = core.EpisodeEntry{Principal: pids[i], Marked: true, Active: true}
	}
	board.ReconcileEpisodeBatch("dev0", reg)
	rng := sim.NewRNG(1)
	batch := make([]core.EpisodeEntry, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch = batch[:0]
		for k := 0; k < 64; k++ {
			batch = append(batch, core.EpisodeEntry{
				Principal: pids[rng.Intn(principals)],
				Charge:    core.WorkFor(100*time.Microsecond, 1),
				Marked:    true,
				Active:    true,
			})
		}
		board.ReconcileEpisodeBatch("dev0", batch)
	}
}

// benchPlaceRequest measures the request-level placement hot path on an
// 8-node mixed-class fleet: one policy.Pick plus depth accounting per
// iteration. The fastest-fit/sticky pair shows what the class-factor
// scoring costs over the class-blind policy.
func benchPlaceRequest(b *testing.B, policyName string) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	policy, err := fleet.NewPolicy(policyName)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fleet.New(eng, fleet.Config{
		Devices: 8,
		Classes: []string{"k20", "consumer", "nextgen", "consumer"},
		Policy:  policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	tn := f.NewTenant(workload.OpenLoopTenant("bench", 100*time.Microsecond, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := f.PlaceRequest(tn)
		f.RequestDone(n)
	}
}

func BenchmarkPlaceRequestMixedSticky(b *testing.B)      { benchPlaceRequest(b, "sticky") }
func BenchmarkPlaceRequestMixedFastestFit(b *testing.B)  { benchPlaceRequest(b, "fastest-fit") }
func BenchmarkPlaceRequestMixedClassSticky(b *testing.B) { benchPlaceRequest(b, "class-sticky") }

type benchNoSched struct{}

func (benchNoSched) Name() string                                          { return "none" }
func (benchNoSched) Start(*neon.Kernel)                                    {}
func (benchNoSched) TaskAdmitted(*neon.Task)                               {}
func (benchNoSched) TaskExited(*neon.Task)                                 {}
func (benchNoSched) ChannelActivated(cs *neon.ChannelState)                { cs.Ch.Reg.SetPresent(true) }
func (benchNoSched) HandleFault(*sim.Proc, *neon.Task, *neon.ChannelState) {}
